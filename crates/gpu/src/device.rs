//! The simulated GPU device.
//!
//! A [`GpuDevice`] owns device "memory" (byte-accounted; payloads live in
//! host RAM since this is a simulator), a set of [`stream`](crate::stream)
//! timelines, and cumulative [`DeviceStats`]. Every operation:
//!
//! 1. performs the *real* numerics by calling into `gmip-linalg`,
//! 2. charges simulated time from the [`CostModel`] onto a stream, and
//! 3. updates transfer/launch counters.
//!
//! The same type serves as the "CPU backend": construct it with
//! [`CostModel::cpu_host`] and a large memory capacity, and host execution
//! is simulated under the same accounting. This mirrors the paper's framing,
//! where CPU and GPU execution differ in relative costs, not in kind.
//!
//! The kernel set is deliberately shaped around what a GPU-resident revised
//! simplex needs (Section 5.1): basis gather, LU factor/solve, eta-file
//! FTRAN/BTRAN, fused pricing, and masked argmin/ratio-test reductions that
//! return only a scalar to the host.

use crate::cost::{flops, CostModel};
use crate::memory::{DeviceMemory, OutOfMemory};
use crate::stats::DeviceStats;
use crate::stream::{Event as StreamEvent, StreamId, StreamSet};
use gmip_linalg::{
    batch as lbatch, CholeskyFactors, CsrMatrix, DenseMatrix, EtaFile, LinalgError, LuFactors,
    SparseEtaFile, SparseLu,
};
use gmip_trace::{names, Event, MetricsRegistry, Track, TrackGroup};
use std::collections::HashMap;

/// Errors surfaced by device operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Device memory exhausted.
    Oom(OutOfMemory),
    /// A handle did not refer to a live object of the expected kind.
    InvalidHandle(u64),
    /// The underlying numerical kernel failed.
    Linalg(LinalgError),
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::Oom(o) => write!(f, "{o}"),
            GpuError::InvalidHandle(h) => write!(f, "invalid device handle {h}"),
            GpuError::Linalg(e) => write!(f, "kernel failure: {e}"),
        }
    }
}

impl std::error::Error for GpuError {}

impl From<OutOfMemory> for GpuError {
    fn from(e: OutOfMemory) -> Self {
        GpuError::Oom(e)
    }
}

impl From<LinalgError> for GpuError {
    fn from(e: LinalgError) -> Self {
        GpuError::Linalg(e)
    }
}

/// Device-operation result alias.
pub type Result<T> = std::result::Result<T, GpuError>;

/// The default stream (stream 0), always present.
pub const DEFAULT_STREAM: StreamId = 0;

macro_rules! handle_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub struct $name(pub(crate) u64);
    };
}

handle_type!(
    /// Handle to a device-resident dense matrix.
    MatrixHandle
);
handle_type!(
    /// Handle to a device-resident dense vector.
    VectorHandle
);
handle_type!(
    /// Handle to device-resident dense LU factors.
    FactorHandle
);
handle_type!(
    /// Handle to device-resident Cholesky factors.
    CholeskyHandle
);
handle_type!(
    /// Handle to a device-resident CSR sparse matrix.
    SparseHandle
);
handle_type!(
    /// Handle to device-resident sparse LU factors.
    SparseFactorHandle
);
handle_type!(
    /// Handle to a device-resident eta file (PFI basis representation).
    EtaHandle
);
handle_type!(
    /// Handle to a device-resident sparse eta file (sparse LU base + eta
    /// updates — the sparse code path's basis representation).
    SparseEtaHandle
);
handle_type!(
    /// Handle to a raw byte allocation (used to account for non-matrix
    /// structures parked in device memory, e.g. the B&B tree in Strategy 1).
    RawHandle
);

#[derive(Debug)]
enum Obj {
    Matrix(DenseMatrix),
    Cholesky(CholeskyFactors),
    Vector(Vec<f64>),
    Factors(LuFactors),
    Sparse(CsrMatrix),
    SparseFactors(SparseLu),
    Eta(EtaFile),
    SparseEta(SparseEtaFile),
    Raw,
}

/// Configuration of a simulated device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Cost model charged for every operation.
    pub cost: CostModel,
    /// Device memory capacity in bytes.
    pub mem_capacity: usize,
    /// Initial number of streams.
    pub streams: usize,
}

impl DeviceConfig {
    /// A data-center GPU with `gib` GiB of memory on PCIe.
    pub fn gpu(gib: usize) -> Self {
        Self {
            cost: CostModel::gpu_pcie(),
            mem_capacity: gib << 30,
            streams: 1,
        }
    }

    /// A host CPU "device": cpu cost model, effectively unbounded memory.
    pub fn cpu() -> Self {
        Self {
            cost: CostModel::cpu_host(),
            mem_capacity: usize::MAX / 2,
            streams: 1,
        }
    }
}

/// A simulated accelerator device.
#[derive(Debug)]
pub struct GpuDevice {
    cost: CostModel,
    mem: DeviceMemory,
    streams: StreamSet,
    registry: MetricsRegistry,
    track: TrackGroup,
    objects: HashMap<u64, (Obj, usize)>,
    next_id: u64,
}

impl GpuDevice {
    /// Creates a device from a configuration.
    pub fn new(config: DeviceConfig) -> Self {
        Self {
            cost: config.cost,
            mem: DeviceMemory::new(config.mem_capacity),
            streams: StreamSet::new(config.streams),
            registry: MetricsRegistry::new(),
            track: TrackGroup::Gpu(0),
            objects: HashMap::new(),
            next_id: 1,
        }
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Memory accounting view.
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Cumulative operation counters, materialized from the metrics
    /// registry (the registry is the ledger of record; [`DeviceStats`] is
    /// the stable reporting view over it).
    pub fn stats(&self) -> DeviceStats {
        DeviceStats::from_registry(&self.registry)
    }

    /// The device's metrics registry (counters/gauges under the `gpu.*`
    /// names of [`gmip_trace::names`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Assigns the trace track group this device's spans land on (which
    /// GPU index, or the host group for a CPU executor). Defaults to
    /// `TrackGroup::Gpu(0)`.
    pub fn set_trace_group(&mut self, group: TrackGroup) {
        self.track = group;
    }

    /// The trace track group this device emits spans on.
    pub fn trace_group(&self) -> TrackGroup {
        self.track
    }

    /// Simulated time at the device completion frontier, ns.
    pub fn elapsed_ns(&self) -> f64 {
        self.streams.frontier()
    }

    /// Creates an additional stream; returns its id.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.create()
    }

    /// Records an event on `stream`.
    pub fn record_event(&self, stream: StreamId) -> StreamEvent {
        self.streams.record(stream)
    }

    /// Makes `stream` wait on `event`.
    pub fn wait_event(&mut self, stream: StreamId, event: StreamEvent) {
        self.streams.wait(stream, event)
    }

    /// Synchronizes all streams; returns the joined timestamp.
    pub fn synchronize(&mut self) -> f64 {
        let t = self.streams.sync();
        self.registry.incr(names::GPU_SYNCS, 1.0);
        let track = self.track;
        gmip_trace::record(|| {
            Event::instant(
                Track {
                    group: track,
                    lane: 0,
                },
                "sync",
                t,
            )
        });
        t
    }

    // ---- internal plumbing ----

    fn insert(&mut self, obj: Obj, bytes: usize) -> Result<u64> {
        self.mem.alloc(bytes)?;
        self.registry
            .max_gauge(names::GPU_MEM_PEAK_BYTES, self.mem.used() as f64);
        let id = self.next_id;
        self.next_id += 1;
        self.objects.insert(id, (obj, bytes));
        Ok(id)
    }

    /// Emits a span for an operation that occupied `[done - t, done)` on
    /// `stream` (`enqueue` returns the stream's new completion frontier, so
    /// the span start is recovered by subtracting the charged cost).
    fn trace_span(&self, name: &'static str, stream: StreamId, done: f64, t: f64, bytes: f64) {
        let track = Track {
            group: self.track,
            lane: stream as u32,
        };
        gmip_trace::record(|| {
            Event::complete(track, name, done - t, t).arg("bytes", bytes.max(0.0) as u64)
        });
    }

    fn charge_h2d(&mut self, bytes: usize, stream: StreamId) {
        let t = self.cost.transfer_ns(bytes);
        let done = self.streams.enqueue(stream, t);
        self.registry.incr(names::GPU_H2D_TRANSFERS, 1.0);
        self.registry.incr(names::GPU_H2D_BYTES, bytes as f64);
        self.registry.incr(names::GPU_TRANSFER_NS, t);
        self.trace_span("h2d", stream, done, t, bytes as f64);
    }

    fn charge_d2h(&mut self, bytes: usize, stream: StreamId) {
        let t = self.cost.transfer_ns(bytes);
        let done = self.streams.enqueue(stream, t);
        self.registry.incr(names::GPU_D2H_TRANSFERS, 1.0);
        self.registry.incr(names::GPU_D2H_BYTES, bytes as f64);
        self.registry.incr(names::GPU_TRANSFER_NS, t);
        self.trace_span("d2h", stream, done, t, bytes as f64);
    }

    fn charge_dense_kernel(&mut self, name: &'static str, fl: f64, bytes: f64, stream: StreamId) {
        let t = self.cost.dense_kernel_ns(fl, bytes);
        let done = self.streams.enqueue(stream, t);
        self.registry.incr(names::GPU_KERNEL_LAUNCHES, 1.0);
        self.registry.incr(names::GPU_KERNEL_FLOPS, fl);
        self.registry.incr(names::GPU_KERNEL_NS, t);
        self.trace_span(name, stream, done, t, bytes);
    }

    fn charge_sparse_kernel(&mut self, name: &'static str, fl: f64, bytes: f64, stream: StreamId) {
        let t = self.cost.sparse_kernel_ns(fl, bytes);
        let done = self.streams.enqueue(stream, t);
        self.registry.incr(names::GPU_KERNEL_LAUNCHES, 1.0);
        self.registry.incr(names::GPU_KERNEL_FLOPS, fl);
        self.registry.incr(names::GPU_KERNEL_NS, t);
        self.trace_span(name, stream, done, t, bytes);
    }

    fn matrix(&self, h: MatrixHandle) -> Result<&DenseMatrix> {
        match self.objects.get(&h.0) {
            Some((Obj::Matrix(m), _)) => Ok(m),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    fn vector(&self, h: VectorHandle) -> Result<&Vec<f64>> {
        match self.objects.get(&h.0) {
            Some((Obj::Vector(v), _)) => Ok(v),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    fn factors(&self, h: FactorHandle) -> Result<&LuFactors> {
        match self.objects.get(&h.0) {
            Some((Obj::Factors(f), _)) => Ok(f),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    fn sparse(&self, h: SparseHandle) -> Result<&CsrMatrix> {
        match self.objects.get(&h.0) {
            Some((Obj::Sparse(s), _)) => Ok(s),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    fn sparse_factors(&self, h: SparseFactorHandle) -> Result<&SparseLu> {
        match self.objects.get(&h.0) {
            Some((Obj::SparseFactors(f), _)) => Ok(f),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    fn eta(&self, h: EtaHandle) -> Result<&EtaFile> {
        match self.objects.get(&h.0) {
            Some((Obj::Eta(e), _)) => Ok(e),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    fn sparse_eta(&self, h: SparseEtaHandle) -> Result<&SparseEtaFile> {
        match self.objects.get(&h.0) {
            Some((Obj::SparseEta(e), _)) => Ok(e),
            _ => Err(GpuError::InvalidHandle(h.0)),
        }
    }

    /// Charges a host↔device transfer of `bytes` without moving payload —
    /// used to model data movement of structures the simulator does not
    /// materialize (e.g. Strategy 1 spilling tree nodes to the host when
    /// device memory fills).
    pub fn charge_transfer(&mut self, bytes: usize, h2d: bool, stream: StreamId) {
        if h2d {
            self.charge_h2d(bytes, stream);
        } else {
            self.charge_d2h(bytes, stream);
        }
    }

    /// Charges an arbitrary modeled computation to this executor without
    /// moving data — used to account for host-side work (cut generation,
    /// heuristics) whose numerics run outside the kernel set, and for
    /// modeling distributed collectives in the Big-MIP strategy.
    pub fn charge_custom(&mut self, flops: f64, bytes: f64, sparse: bool, stream: StreamId) {
        self.charge_custom_named("custom", flops, bytes, sparse, stream);
    }

    /// [`charge_custom`](Self::charge_custom) with an explicit span name,
    /// so modeled work shows up meaningfully in traces ("ipm_iteration",
    /// "cut_separation", ...) rather than as anonymous kernels.
    pub fn charge_custom_named(
        &mut self,
        name: &'static str,
        flops: f64,
        bytes: f64,
        sparse: bool,
        stream: StreamId,
    ) {
        if sparse {
            self.charge_sparse_kernel(name, flops, bytes, stream);
        } else {
            self.charge_dense_kernel(name, flops, bytes, stream);
        }
    }

    // ---- memory & transfer operations ----

    /// Uploads a dense matrix to the device (one H2D transfer).
    pub fn upload_matrix(&mut self, m: &DenseMatrix, stream: StreamId) -> Result<MatrixHandle> {
        let bytes = m.size_bytes();
        let id = self.insert(Obj::Matrix(m.clone()), bytes)?;
        self.charge_h2d(bytes, stream);
        Ok(MatrixHandle(id))
    }

    /// Uploads a dense vector (one H2D transfer).
    pub fn upload_vector(&mut self, v: &[f64], stream: StreamId) -> Result<VectorHandle> {
        let bytes = std::mem::size_of_val(v);
        let id = self.insert(Obj::Vector(v.to_vec()), bytes)?;
        self.charge_h2d(bytes, stream);
        Ok(VectorHandle(id))
    }

    /// Uploads a CSR sparse matrix (one H2D transfer of values + indices).
    pub fn upload_sparse(&mut self, m: &CsrMatrix, stream: StreamId) -> Result<SparseHandle> {
        let bytes = m.size_bytes();
        let id = self.insert(Obj::Sparse(m.clone()), bytes)?;
        self.charge_h2d(bytes, stream);
        Ok(SparseHandle(id))
    }

    /// Reserves raw device bytes without payload (accounting for structures
    /// like Strategy 1's on-device tree).
    pub fn alloc_raw(&mut self, bytes: usize) -> Result<RawHandle> {
        let id = self.insert(Obj::Raw, bytes)?;
        Ok(RawHandle(id))
    }

    /// Downloads a device matrix to the host (one D2H transfer).
    pub fn download_matrix(&mut self, h: MatrixHandle, stream: StreamId) -> Result<DenseMatrix> {
        let m = self.matrix(h)?.clone();
        self.charge_d2h(m.size_bytes(), stream);
        Ok(m)
    }

    /// Downloads a device CSR matrix to the host (one D2H transfer) — the
    /// Section 5.2 "latest copy of the matrix" leg for the sparse path.
    pub fn download_matrix_sparse(
        &mut self,
        h: SparseHandle,
        stream: StreamId,
    ) -> Result<CsrMatrix> {
        let m = self.sparse(h)?.clone();
        self.charge_d2h(m.size_bytes(), stream);
        Ok(m)
    }

    /// Downloads a device vector (one D2H transfer).
    pub fn download_vector(&mut self, h: VectorHandle, stream: StreamId) -> Result<Vec<f64>> {
        let v = self.vector(h)?.clone();
        self.charge_d2h(std::mem::size_of_val(v.as_slice()), stream);
        Ok(v)
    }

    /// Frees any device object by raw id (all handle types deref to ids).
    pub fn free(&mut self, id: u64) -> Result<()> {
        match self.objects.remove(&id) {
            Some((_, bytes)) => {
                self.mem.free(bytes);
                Ok(())
            }
            None => Err(GpuError::InvalidHandle(id)),
        }
    }

    /// Frees a matrix handle.
    pub fn free_matrix(&mut self, h: MatrixHandle) -> Result<()> {
        self.free(h.0)
    }

    /// Frees a vector handle.
    pub fn free_vector(&mut self, h: VectorHandle) -> Result<()> {
        self.free(h.0)
    }

    /// Frees a factor handle.
    pub fn free_factors(&mut self, h: FactorHandle) -> Result<()> {
        self.free(h.0)
    }

    /// Frees an eta-file handle.
    pub fn free_eta(&mut self, h: EtaHandle) -> Result<()> {
        self.free(h.0)
    }

    /// Frees a raw allocation.
    pub fn free_raw(&mut self, h: RawHandle) -> Result<()> {
        self.free(h.0)
    }

    /// Frees a sparse matrix handle.
    pub fn free_sparse(&mut self, h: SparseHandle) -> Result<()> {
        self.free(h.0)
    }

    // ---- dense kernels ----

    /// Device-side gather of columns `cols` of matrix `h` into a new device
    /// matrix (no host transfer — this is how the simplex assembles the basis
    /// matrix `B` from the constraint matrix without leaving the device).
    pub fn gather_columns(
        &mut self,
        h: MatrixHandle,
        cols: &[usize],
        stream: StreamId,
    ) -> Result<MatrixHandle> {
        let src = self.matrix(h)?;
        let rows = src.rows();
        for &c in cols {
            if c >= src.cols() {
                return Err(GpuError::Linalg(LinalgError::OutOfBounds {
                    index: c,
                    bound: src.cols(),
                }));
            }
        }
        let mut out = DenseMatrix::zeros(rows, cols.len());
        for (jj, &c) in cols.iter().enumerate() {
            for i in 0..rows {
                out.set(i, jj, src.get(i, c));
            }
        }
        let bytes = out.size_bytes();
        // Memory-bound device kernel: read + write the gathered block.
        self.charge_dense_kernel("gather_columns", 0.0, 2.0 * bytes as f64, stream);
        let id = self.insert(Obj::Matrix(out), bytes)?;
        Ok(MatrixHandle(id))
    }

    /// LU-factorizes a device matrix (cuSOLVER `getrf`-class kernel).
    pub fn lu_factor(&mut self, h: MatrixHandle, stream: StreamId) -> Result<FactorHandle> {
        let m = self.matrix(h)?;
        let n = m.rows();
        let f = LuFactors::factorize(m)?;
        let bytes = m.size_bytes() + n * std::mem::size_of::<usize>();
        self.charge_dense_kernel("lu_factor", flops::lu(n), m.size_bytes() as f64, stream);
        let id = self.insert(Obj::Factors(f), bytes)?;
        Ok(FactorHandle(id))
    }

    /// Cholesky-factorizes a device-resident SPD matrix (the cuSOLVER
    /// `potrf`-class kernel; (1/3)n³ flops — half of LU).
    pub fn cholesky_factor(&mut self, h: MatrixHandle, stream: StreamId) -> Result<CholeskyHandle> {
        let m = self.matrix(h)?;
        let n = m.rows();
        let mbytes = m.size_bytes();
        let f = CholeskyFactors::factorize(m)?;
        self.charge_dense_kernel("cholesky_factor", flops::cholesky(n), mbytes as f64, stream);
        let id = self.insert(Obj::Cholesky(f), mbytes)?;
        Ok(CholeskyHandle(id))
    }

    /// Solves an SPD system through device-resident Cholesky factors.
    pub fn cholesky_solve(
        &mut self,
        f: CholeskyHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let x = {
            let fac = match self.objects.get(&f.0) {
                Some((Obj::Cholesky(c), _)) => c,
                _ => return Err(GpuError::InvalidHandle(f.0)),
            };
            let rhs = self.vector(b)?;
            fac.solve(rhs)?
        };
        let n = x.len();
        self.charge_dense_kernel(
            "cholesky_solve",
            flops::lu_solve(n),
            (n * n * 8) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(x), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// Solves `A x = b` for a device-resident rhs; result stays on device.
    pub fn lu_solve(
        &mut self,
        f: FactorHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let x = {
            let fac = self.factors(f)?;
            let rhs = self.vector(b)?;
            fac.solve(rhs)?
        };
        let n = x.len();
        self.charge_dense_kernel("lu_solve", flops::lu_solve(n), (n * n * 8) as f64, stream);
        let bytes = n * 8;
        let id = self.insert(Obj::Vector(x), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Solves `Aᵀ x = b` (BTRAN-style) for a device-resident rhs.
    pub fn lu_solve_transposed(
        &mut self,
        f: FactorHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let x = {
            let fac = self.factors(f)?;
            let rhs = self.vector(b)?;
            fac.solve_transposed(rhs)?
        };
        let n = x.len();
        self.charge_dense_kernel(
            "lu_solve_transposed",
            flops::lu_solve(n),
            (n * n * 8) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(x), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// Dense matrix–vector product `y = A x`, all device-resident.
    pub fn gemv(
        &mut self,
        a: MatrixHandle,
        x: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let y = {
            let m = self.matrix(a)?;
            let v = self.vector(x)?;
            m.matvec(v)?
        };
        let (rows, cols) = {
            let m = self.matrix(a)?;
            (m.rows(), m.cols())
        };
        self.charge_dense_kernel(
            "gemv",
            flops::gemv(rows, cols),
            (rows * cols * 8) as f64,
            stream,
        );
        let bytes = y.len() * 8;
        let id = self.insert(Obj::Vector(y), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Transposed product `y = Aᵀ x`, all device-resident.
    pub fn gemv_transposed(
        &mut self,
        a: MatrixHandle,
        x: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let y = {
            let m = self.matrix(a)?;
            let v = self.vector(x)?;
            m.matvec_transposed(v)?
        };
        let (rows, cols) = {
            let m = self.matrix(a)?;
            (m.rows(), m.cols())
        };
        self.charge_dense_kernel(
            "gemv_transposed",
            flops::gemv(rows, cols),
            (rows * cols * 8) as f64,
            stream,
        );
        let bytes = y.len() * 8;
        let id = self.insert(Obj::Vector(y), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Fused pricing kernel: reduced costs `d = c − Aᵀ y` in one launch.
    ///
    /// This is the Section 5.1 "no transfer" iteration: the full reduced-cost
    /// vector never leaves the device; only the argmin scalar does (see
    /// [`Self::argmin_masked`]).
    pub fn pricing(
        &mut self,
        a: MatrixHandle,
        y: VectorHandle,
        c: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let d = {
            let m = self.matrix(a)?;
            let yv = self.vector(y)?;
            let cv = self.vector(c)?;
            let mut d = m.matvec_transposed(yv)?;
            if cv.len() != d.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("pricing: c {} vs AtY {}", cv.len(), d.len()),
                }));
            }
            for (di, ci) in d.iter_mut().zip(cv.iter()) {
                *di = ci - *di;
            }
            d
        };
        let (rows, cols) = {
            let m = self.matrix(a)?;
            (m.rows(), m.cols())
        };
        self.charge_dense_kernel(
            "pricing",
            flops::gemv(rows, cols) + cols as f64,
            (rows * cols * 8) as f64,
            stream,
        );
        let bytes = d.len() * 8;
        let id = self.insert(Obj::Vector(d), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Device reduction: index and value of the minimum entry of `v` among
    /// positions where `mask` is nonzero. Returns `None` if the mask is
    /// empty. Charges one kernel plus a 16-byte D2H scalar readback.
    pub fn argmin_masked(
        &mut self,
        v: VectorHandle,
        mask: VectorHandle,
        stream: StreamId,
    ) -> Result<Option<(usize, f64)>> {
        let result = {
            let vv = self.vector(v)?;
            let mm = self.vector(mask)?;
            if vv.len() != mm.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("argmin_masked: {} vs {}", vv.len(), mm.len()),
                }));
            }
            let mut best: Option<(usize, f64)> = None;
            for (i, (&x, &m)) in vv.iter().zip(mm.iter()).enumerate() {
                if m != 0.0 && best.is_none_or(|(_, b)| x < b) {
                    best = Some((i, x));
                }
            }
            best
        };
        let n = self.vector(v)?.len();
        self.charge_dense_kernel("argmin_masked", n as f64, (2 * n * 8) as f64, stream);
        self.charge_d2h(16, stream);
        Ok(result)
    }

    /// Device ratio-test reduction for the primal simplex: over rows where
    /// `alpha[i] > tol`, minimizes `xb[i] / alpha[i]`; returns the winning
    /// row and ratio. One kernel + a 16-byte scalar readback.
    pub fn ratio_argmin(
        &mut self,
        xb: VectorHandle,
        alpha: VectorHandle,
        tol: f64,
        stream: StreamId,
    ) -> Result<Option<(usize, f64)>> {
        let result = {
            let x = self.vector(xb)?;
            let a = self.vector(alpha)?;
            if x.len() != a.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("ratio_argmin: {} vs {}", x.len(), a.len()),
                }));
            }
            let mut best: Option<(usize, f64)> = None;
            for i in 0..x.len() {
                if a[i] > tol {
                    let r = x[i] / a[i];
                    // Tie-break on lower index for determinism (Bland-friendly).
                    if best.is_none_or(|(_, br)| r < br - 1e-12) {
                        best = Some((i, r));
                    }
                }
            }
            best
        };
        let n = self.vector(xb)?.len();
        self.charge_dense_kernel("ratio_argmin", (2 * n) as f64, (2 * n * 8) as f64, stream);
        self.charge_d2h(16, stream);
        Ok(result)
    }

    /// Sets one element of a device vector (tiny H2D write, as when flipping
    /// a basis-membership mask entry after a pivot).
    pub fn vec_set(
        &mut self,
        h: VectorHandle,
        idx: usize,
        value: f64,
        stream: StreamId,
    ) -> Result<()> {
        let len = self.vector(h)?.len();
        if idx >= len {
            return Err(GpuError::Linalg(LinalgError::OutOfBounds {
                index: idx,
                bound: len,
            }));
        }
        if let Some((Obj::Vector(v), _)) = self.objects.get_mut(&h.0) {
            v[idx] = value;
        }
        self.charge_h2d(8, stream);
        Ok(())
    }

    /// Reads one element of a device vector (tiny D2H readback).
    pub fn vec_get(&mut self, h: VectorHandle, idx: usize, stream: StreamId) -> Result<f64> {
        let v = self.vector(h)?;
        let val = *v
            .get(idx)
            .ok_or(GpuError::Linalg(LinalgError::OutOfBounds {
                index: idx,
                bound: v.len(),
            }))?;
        self.charge_d2h(8, stream);
        Ok(val)
    }

    /// Appends a row to a device matrix **from the host** (the Section 5.2
    /// cut-incorporation path: generated on CPU, shipped H2D, spliced in by
    /// a device kernel).
    pub fn append_row(&mut self, h: MatrixHandle, row: &[f64], stream: StreamId) -> Result<()> {
        let add_bytes = std::mem::size_of_val(row);
        // Charge the transfer and the splice kernel before mutating.
        self.charge_h2d(add_bytes, stream);
        self.charge_dense_kernel("append_row", 0.0, add_bytes as f64, stream);
        self.mem.alloc(add_bytes)?;
        match self.objects.get_mut(&h.0) {
            Some((Obj::Matrix(m), bytes)) => {
                m.push_row(row).map_err(GpuError::Linalg)?;
                *bytes += add_bytes;
                Ok(())
            }
            _ => {
                self.mem.free(add_bytes);
                Err(GpuError::InvalidHandle(h.0))
            }
        }
    }

    /// Copies column `j` of a device matrix into a new device vector
    /// (memory-bound kernel, no host transfer).
    pub fn extract_column(
        &mut self,
        h: MatrixHandle,
        j: usize,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let col = {
            let m = self.matrix(h)?;
            if j >= m.cols() {
                return Err(GpuError::Linalg(LinalgError::OutOfBounds {
                    index: j,
                    bound: m.cols(),
                }));
            }
            m.col(j)
        };
        let bytes = col.len() * 8;
        self.charge_dense_kernel("extract_column", 0.0, (2 * bytes) as f64, stream);
        let id = self.insert(Obj::Vector(col), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Appends a column to a device matrix from the host (a cut's slack
    /// column arriving with the cut row, Section 5.2).
    pub fn append_column(&mut self, h: MatrixHandle, col: &[f64], stream: StreamId) -> Result<()> {
        let add_bytes = std::mem::size_of_val(col);
        self.charge_h2d(add_bytes, stream);
        self.charge_dense_kernel("append_column", 0.0, add_bytes as f64, stream);
        self.mem.alloc(add_bytes)?;
        match self.objects.get_mut(&h.0) {
            Some((Obj::Matrix(m), bytes)) => {
                m.push_col(col).map_err(GpuError::Linalg)?;
                *bytes += add_bytes;
                Ok(())
            }
            _ => {
                self.mem.free(add_bytes);
                Err(GpuError::InvalidHandle(h.0))
            }
        }
    }

    /// Fused residual kernel `r = b − A x`, all device-resident (used to
    /// recompute basic values after a basis install without any transfer).
    pub fn residual(
        &mut self,
        b: VectorHandle,
        a: MatrixHandle,
        x: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let r = {
            let m = self.matrix(a)?;
            let xv = self.vector(x)?;
            let bv = self.vector(b)?;
            let ax = m.matvec(xv)?;
            if bv.len() != ax.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("residual: b {} vs Ax {}", bv.len(), ax.len()),
                }));
            }
            bv.iter()
                .zip(ax.iter())
                .map(|(bi, ai)| bi - ai)
                .collect::<Vec<f64>>()
        };
        let (rows, cols) = {
            let m = self.matrix(a)?;
            (m.rows(), m.cols())
        };
        self.charge_dense_kernel(
            "residual",
            flops::gemv(rows, cols) + rows as f64,
            (rows * cols * 8) as f64,
            stream,
        );
        let bytes = r.len() * 8;
        let id = self.insert(Obj::Vector(r), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Elementwise product `c = a ⊙ b` (used to score pricing candidates by
    /// status sign before the argmin reduction).
    pub fn vec_mul(
        &mut self,
        a: VectorHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let c = {
            let av = self.vector(a)?;
            let bv = self.vector(b)?;
            if av.len() != bv.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("vec_mul: {} vs {}", av.len(), bv.len()),
                }));
            }
            av.iter()
                .zip(bv.iter())
                .map(|(x, y)| x * y)
                .collect::<Vec<f64>>()
        };
        let n = c.len();
        self.charge_dense_kernel("vec_mul", n as f64, (3 * n * 8) as f64, stream);
        let id = self.insert(Obj::Vector(c), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// Creates the unit vector `e_r` of length `n` directly on the device
    /// (no host transfer — used by the dual simplex to form BTRAN rows).
    pub fn alloc_unit_vector(
        &mut self,
        n: usize,
        r: usize,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        if r >= n {
            return Err(GpuError::Linalg(LinalgError::OutOfBounds {
                index: r,
                bound: n,
            }));
        }
        let mut v = vec![0.0; n];
        v[r] = 1.0;
        self.charge_dense_kernel("alloc_unit_vector", 0.0, (n * 8) as f64, stream);
        let id = self.insert(Obj::Vector(v), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// Fused bounded-variable primal ratio-test kernel.
    ///
    /// With effective column `α_eff = dir · α`, finds over basic positions
    /// `i` the smallest step `t ≥ 0` at which a basic variable hits a bound:
    ///
    /// * `α_eff[i] >  tol`: variable falls to its lower bound at
    ///   `t = (xb[i] − lbb[i]) / α_eff[i]`;
    /// * `α_eff[i] < −tol`: variable rises to its upper bound at
    ///   `t = (xb[i] − ubb[i]) / α_eff[i]`.
    ///
    /// Returns `(row, t, leaves_at_upper)` or `None` when no basic variable
    /// limits the step (unbounded direction / bound-flip only). Negative
    /// ratios from degenerate positions are clamped to zero. One kernel plus
    /// a scalar readback.
    #[allow(clippy::too_many_arguments)]
    pub fn ratio_test_bounded(
        &mut self,
        xb: VectorHandle,
        alpha: VectorHandle,
        lbb: VectorHandle,
        ubb: VectorHandle,
        dir: f64,
        tol: f64,
        stream: StreamId,
    ) -> Result<Option<(usize, f64, bool)>> {
        let result = {
            let x = self.vector(xb)?;
            let a = self.vector(alpha)?;
            let lb = self.vector(lbb)?;
            let ub = self.vector(ubb)?;
            let m = x.len();
            if a.len() != m || lb.len() != m || ub.len() != m {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: "ratio_test_bounded: vector lengths".into(),
                }));
            }
            let mut best: Option<(usize, f64, bool)> = None;
            for i in 0..m {
                let ae = dir * a[i];
                let (t, upper) = if ae > tol {
                    if lb[i].is_infinite() {
                        continue;
                    }
                    (((x[i] - lb[i]) / ae).max(0.0), false)
                } else if ae < -tol {
                    if ub[i].is_infinite() {
                        continue;
                    }
                    (((x[i] - ub[i]) / ae).max(0.0), true)
                } else {
                    continue;
                };
                if best.is_none_or(|(_, bt, _)| t < bt - 1e-12) {
                    best = Some((i, t, upper));
                }
            }
            best
        };
        let m = self.vector(xb)?.len();
        self.charge_dense_kernel(
            "ratio_test_bounded",
            (4 * m) as f64,
            (4 * m * 8) as f64,
            stream,
        );
        self.charge_d2h(24, stream);
        Ok(result)
    }

    /// Fused basic-solution update: `xb ← xb − dir·t·α`, then optionally
    /// `xb[r] = new_val` (installing the entering variable's value in the
    /// leaving slot). One kernel, no transfer.
    pub fn basic_step(
        &mut self,
        xb: VectorHandle,
        alpha: VectorHandle,
        dir: f64,
        t: f64,
        set: Option<(usize, f64)>,
        stream: StreamId,
    ) -> Result<()> {
        {
            let alen = self.vector(alpha)?.len();
            let xlen = self.vector(xb)?.len();
            if alen != xlen {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("basic_step: {xlen} vs {alen}"),
                }));
            }
            if let Some((r, _)) = set {
                if r >= xlen {
                    return Err(GpuError::Linalg(LinalgError::OutOfBounds {
                        index: r,
                        bound: xlen,
                    }));
                }
            }
        }
        let a = self.vector(alpha)?.clone();
        let n = a.len();
        if let Some((Obj::Vector(x), _)) = self.objects.get_mut(&xb.0) {
            for (xi, ai) in x.iter_mut().zip(a.iter()) {
                *xi -= dir * t * ai;
            }
            if let Some((r, v)) = set {
                x[r] = v;
            }
        }
        self.charge_dense_kernel("basic_step", (2 * n) as f64, (2 * n * 8) as f64, stream);
        Ok(())
    }

    /// Fused primal-infeasibility reduction for the dual simplex: over basic
    /// positions, finds the largest bound violation of `xb` against
    /// `[lbb, ubb]`. Returns `(row, violation, below_lower)` or `None` when
    /// primal-feasible. One kernel plus a scalar readback.
    pub fn primal_infeas_argmax(
        &mut self,
        xb: VectorHandle,
        lbb: VectorHandle,
        ubb: VectorHandle,
        tol: f64,
        stream: StreamId,
    ) -> Result<Option<(usize, f64, bool)>> {
        let result = {
            let x = self.vector(xb)?;
            let lb = self.vector(lbb)?;
            let ub = self.vector(ubb)?;
            if lb.len() != x.len() || ub.len() != x.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: "primal_infeas_argmax: vector lengths".into(),
                }));
            }
            let mut best: Option<(usize, f64, bool)> = None;
            for i in 0..x.len() {
                let (viol, below) = if x[i] < lb[i] - tol {
                    (lb[i] - x[i], true)
                } else if x[i] > ub[i] + tol {
                    (x[i] - ub[i], false)
                } else {
                    continue;
                };
                if best.is_none_or(|(_, bv, _)| viol > bv) {
                    best = Some((i, viol, below));
                }
            }
            best
        };
        let m = self.vector(xb)?.len();
        self.charge_dense_kernel(
            "primal_infeas_argmax",
            (2 * m) as f64,
            (3 * m * 8) as f64,
            stream,
        );
        self.charge_d2h(24, stream);
        Ok(result)
    }

    /// Fused dual ratio-test kernel.
    ///
    /// `d` are reduced costs, `alpha_r` the BTRAN row, and `sigma` the status
    /// vector (−1 at lower bound, +1 at upper bound, 0 basic). When the
    /// leaving variable violates its **lower** bound (`leaving_below`),
    /// eligible entering candidates are at-lower with `alpha_r < −tol` or
    /// at-upper with `alpha_r > tol`; the signs flip otherwise. Minimizes
    /// `|d_j / alpha_r[j]|`. Returns `(col, |ratio|)` or `None` (dual
    /// unbounded ⇒ primal infeasible). One kernel plus a scalar readback.
    pub fn dual_ratio_argmin(
        &mut self,
        d: VectorHandle,
        alpha_r: VectorHandle,
        sigma: VectorHandle,
        leaving_below: bool,
        tol: f64,
        stream: StreamId,
    ) -> Result<Option<(usize, f64)>> {
        let result = {
            let dv = self.vector(d)?;
            let av = self.vector(alpha_r)?;
            let sv = self.vector(sigma)?;
            if av.len() != dv.len() || sv.len() != dv.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: "dual_ratio_argmin: vector lengths".into(),
                }));
            }
            let mut best: Option<(usize, f64)> = None;
            for j in 0..dv.len() {
                let eligible = match (sv[j], leaving_below) {
                    (s, true) if s < 0.0 => av[j] < -tol,
                    (s, true) if s > 0.0 => av[j] > tol,
                    (s, false) if s < 0.0 => av[j] > tol,
                    (s, false) if s > 0.0 => av[j] < -tol,
                    _ => false,
                };
                if !eligible {
                    continue;
                }
                let ratio = (dv[j] / av[j]).abs();
                if best.is_none_or(|(_, br)| ratio < br - 1e-12) {
                    best = Some((j, ratio));
                }
            }
            best
        };
        let n = self.vector(d)?.len();
        self.charge_dense_kernel(
            "dual_ratio_argmin",
            (3 * n) as f64,
            (3 * n * 8) as f64,
            stream,
        );
        self.charge_d2h(16, stream);
        Ok(result)
    }

    /// Fused Devex pricing kernel: over eligible columns (σ_j ≠ 0 and
    /// σ_j·d_j < −tol), maximizes the Devex merit `d_j² / γ_j`; returns the
    /// winner's index and its σ·d score (compatible with the Dantzig
    /// kernel's contract). One kernel + a 16-byte readback.
    pub fn devex_argmax(
        &mut self,
        d: VectorHandle,
        sigma: VectorHandle,
        gamma: VectorHandle,
        tol: f64,
        stream: StreamId,
    ) -> Result<Option<(usize, f64)>> {
        let result = {
            let dv = self.vector(d)?;
            let sv = self.vector(sigma)?;
            let gv = self.vector(gamma)?;
            if sv.len() != dv.len() || gv.len() != dv.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: "devex_argmax: vector lengths".into(),
                }));
            }
            let mut best: Option<(usize, f64, f64)> = None; // (j, merit, sigma_d)
            for j in 0..dv.len() {
                if sv[j] == 0.0 {
                    continue;
                }
                let sd = sv[j] * dv[j];
                if sd >= -tol {
                    continue;
                }
                let merit = dv[j] * dv[j] / gv[j].max(1e-12);
                if best.is_none_or(|(_, bm, _)| merit > bm) {
                    best = Some((j, merit, sd));
                }
            }
            best.map(|(j, _, sd)| (j, sd))
        };
        let n = self.vector(d)?.len();
        self.charge_dense_kernel("devex_argmax", (3 * n) as f64, (3 * n * 8) as f64, stream);
        self.charge_d2h(16, stream);
        Ok(result)
    }

    /// Devex reference-weight update after a pivot: for every column,
    /// `γ_j ← max(γ_j, (α_r[j]/α_rq)² · γ_q)`, then `γ_q` is re-anchored in
    /// the leaving slot: the caller sets the leaving variable's weight via
    /// [`Self::vec_set`]. One elementwise kernel, no transfer.
    pub fn devex_weight_update(
        &mut self,
        gamma: VectorHandle,
        alpha_r: VectorHandle,
        alpha_rq: f64,
        gamma_q: f64,
        stream: StreamId,
    ) -> Result<()> {
        {
            let glen = self.vector(gamma)?.len();
            let alen = self.vector(alpha_r)?.len();
            if glen != alen {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("devex_weight_update: {glen} vs {alen}"),
                }));
            }
        }
        if alpha_rq.abs() < 1e-12 {
            return Err(GpuError::Linalg(LinalgError::Singular { column: 0 }));
        }
        let ar = self.vector(alpha_r)?.clone();
        let n = ar.len();
        if let Some((Obj::Vector(g), _)) = self.objects.get_mut(&gamma.0) {
            for (gj, arj) in g.iter_mut().zip(ar.iter()) {
                let ratio = arj / alpha_rq;
                let cand = ratio * ratio * gamma_q;
                if cand > *gj {
                    *gj = cand;
                }
            }
        }
        self.charge_dense_kernel(
            "devex_weight_update",
            (3 * n) as f64,
            (2 * n * 8) as f64,
            stream,
        );
        Ok(())
    }

    // ---- eta-file (PFI) kernels: Section 5.1's rank-1 update path ----

    /// Builds an eta file over a fresh LU factorization of a device matrix.
    pub fn eta_factor(&mut self, basis: MatrixHandle, stream: StreamId) -> Result<EtaHandle> {
        let m = self.matrix(basis)?;
        let n = m.rows();
        let mbytes = m.size_bytes();
        let file = EtaFile::factorize(m)?;
        self.charge_dense_kernel("eta_factor", flops::lu(n), mbytes as f64, stream);
        // Account LU + headroom for eta growth (charged as it grows).
        let bytes = mbytes + n * 8;
        let id = self.insert(Obj::Eta(file), bytes)?;
        Ok(EtaHandle(id))
    }

    /// FTRAN through the eta file: solves `B x = b` with b device-resident.
    pub fn eta_ftran(
        &mut self,
        h: EtaHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let x = {
            let file = self.eta(h)?;
            let rhs = self.vector(b)?;
            file.ftran(rhs)?
        };
        let (n, k) = {
            let file = self.eta(h)?;
            (file.dim(), file.eta_count())
        };
        self.charge_dense_kernel(
            "eta_ftran",
            flops::lu_solve(n) + flops::eta_apply(k, n),
            ((n * n + k * n) * 8) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(x), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// BTRAN through the eta file: solves `Bᵀ y = c`.
    pub fn eta_btran(
        &mut self,
        h: EtaHandle,
        c: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let y = {
            let file = self.eta(h)?;
            let rhs = self.vector(c)?;
            file.btran(rhs)?
        };
        let (n, k) = {
            let file = self.eta(h)?;
            (file.dim(), file.eta_count())
        };
        self.charge_dense_kernel(
            "eta_btran",
            flops::lu_solve(n) + flops::eta_apply(k, n),
            ((n * n + k * n) * 8) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(y), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// Applies a basis-exchange rank-1 update: position `leaving_pos` of the
    /// basis is replaced by the column whose FTRAN image is the device vector
    /// `alpha`. No host transfer — the paper's "rank-1 updates ... with no
    /// data transfer from host to device or vice versa".
    pub fn eta_update(
        &mut self,
        h: EtaHandle,
        leaving_pos: usize,
        alpha: VectorHandle,
        stream: StreamId,
    ) -> Result<()> {
        let alpha_v = self.vector(alpha)?.clone();
        let n = alpha_v.len();
        let add_bytes = n * 8;
        self.mem.alloc(add_bytes)?;
        match self.objects.get_mut(&h.0) {
            Some((Obj::Eta(file), bytes)) => match file.update(leaving_pos, alpha_v) {
                Ok(()) => {
                    *bytes += add_bytes;
                }
                Err(e) => {
                    self.mem.free(add_bytes);
                    return Err(GpuError::Linalg(e));
                }
            },
            _ => {
                self.mem.free(add_bytes);
                return Err(GpuError::InvalidHandle(h.0));
            }
        }
        // A small device-side kernel appends the eta column.
        self.charge_dense_kernel("eta_update", n as f64, add_bytes as f64, stream);
        Ok(())
    }

    /// Number of eta factors accumulated on a device eta file.
    pub fn eta_count(&self, h: EtaHandle) -> Result<usize> {
        Ok(self.eta(h)?.eta_count())
    }

    /// Refactorizes the eta file from a device basis matrix, clearing the
    /// accumulated etas (periodic refactorization).
    pub fn eta_refactorize(
        &mut self,
        h: EtaHandle,
        basis: MatrixHandle,
        stream: StreamId,
    ) -> Result<()> {
        let m = self.matrix(basis)?.clone();
        let n = m.rows();
        match self.objects.get_mut(&h.0) {
            Some((Obj::Eta(file), bytes)) => {
                file.refactorize(&m).map_err(GpuError::Linalg)?;
                // Shrink accounting back to the base factorization size.
                let new_bytes = m.size_bytes() + n * 8;
                if *bytes > new_bytes {
                    self.mem.free(*bytes - new_bytes);
                }
                *bytes = new_bytes;
            }
            _ => return Err(GpuError::InvalidHandle(h.0)),
        }
        self.charge_dense_kernel("eta_refactorize", flops::lu(n), (n * n * 8) as f64, stream);
        Ok(())
    }

    // ---- sparse kernels (Section 5.4's second code path) ----

    /// Sparse matrix–vector product `y = A x`.
    pub fn spmv(
        &mut self,
        a: SparseHandle,
        x: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let y = {
            let m = self.sparse(a)?;
            let v = self.vector(x)?;
            m.matvec(v)?
        };
        let nnz = self.sparse(a)?.nnz();
        self.charge_sparse_kernel("spmv", flops::spmv(nnz), (nnz * 16) as f64, stream);
        let bytes = y.len() * 8;
        let id = self.insert(Obj::Vector(y), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Transposed sparse product `y = Aᵀ x`.
    pub fn spmv_transposed(
        &mut self,
        a: SparseHandle,
        x: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let y = {
            let m = self.sparse(a)?;
            let v = self.vector(x)?;
            m.matvec_transposed(v)?
        };
        let nnz = self.sparse(a)?.nnz();
        self.charge_sparse_kernel(
            "spmv_transposed",
            flops::spmv(nnz),
            (nnz * 16) as f64,
            stream,
        );
        let bytes = y.len() * 8;
        let id = self.insert(Obj::Vector(y), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Sparse LU factorization (GLU-class kernel; charged at the sparse
    /// throughput, which is what makes the dense path win at high density).
    pub fn sparse_lu_factor(
        &mut self,
        a: SparseHandle,
        stream: StreamId,
    ) -> Result<SparseFactorHandle> {
        let f = {
            let m = self.sparse(a)?;
            SparseLu::factorize(&m.to_csc())?
        };
        let fill = f.fill_nnz();
        self.charge_sparse_kernel(
            "sparse_lu_factor",
            flops::sparse_lu(fill),
            (fill * 16) as f64,
            stream,
        );
        let bytes = fill * 16;
        let id = self.insert(Obj::SparseFactors(f), bytes)?;
        Ok(SparseFactorHandle(id))
    }

    /// Solves through sparse LU factors, device-resident rhs.
    pub fn sparse_solve(
        &mut self,
        f: SparseFactorHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let x = {
            let fac = self.sparse_factors(f)?;
            let rhs = self.vector(b)?;
            fac.solve(rhs)?
        };
        let fill = self.sparse_factors(f)?.fill_nnz();
        self.charge_sparse_kernel(
            "sparse_solve",
            flops::spmv(fill),
            (fill * 16) as f64,
            stream,
        );
        let bytes = x.len() * 8;
        let id = self.insert(Obj::Vector(x), bytes)?;
        Ok(VectorHandle(id))
    }

    // ---- sparse-path kernels (Section 5.4's second code path) ----

    /// Extracts column `j` of a device CSR matrix into a dense device
    /// vector (sparse gather kernel; no host transfer).
    pub fn extract_column_sparse(
        &mut self,
        a: SparseHandle,
        j: usize,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let col = {
            let m = self.sparse(a)?;
            if j >= m.cols() {
                return Err(GpuError::Linalg(LinalgError::OutOfBounds {
                    index: j,
                    bound: m.cols(),
                }));
            }
            let mut col = vec![0.0; m.rows()];
            for (i, c) in col.iter_mut().enumerate() {
                *c = m.get(i, j);
            }
            col
        };
        let bytes = col.len() * 8;
        self.charge_sparse_kernel(
            "extract_column_sparse",
            col.len() as f64,
            (2 * bytes) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(col), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Fused sparse pricing kernel: reduced costs `d = c − Aᵀ y` with `A`
    /// in CSR — the sparse path's analogue of [`Self::pricing`], charged at
    /// sparse throughput over `nnz` instead of dense throughput over `m·n`.
    pub fn pricing_sparse(
        &mut self,
        a: SparseHandle,
        y: VectorHandle,
        c: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let d = {
            let m = self.sparse(a)?;
            let yv = self.vector(y)?;
            let cv = self.vector(c)?;
            let mut d = m.matvec_transposed(yv)?;
            if cv.len() != d.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("pricing_sparse: c {} vs AtY {}", cv.len(), d.len()),
                }));
            }
            for (di, ci) in d.iter_mut().zip(cv.iter()) {
                *di = ci - *di;
            }
            d
        };
        let nnz = self.sparse(a)?.nnz();
        self.charge_sparse_kernel(
            "pricing_sparse",
            flops::spmv(nnz) + d.len() as f64,
            (nnz * 16) as f64,
            stream,
        );
        let bytes = d.len() * 8;
        let id = self.insert(Obj::Vector(d), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Fused sparse residual kernel `r = b − A x` (CSR).
    pub fn residual_sparse(
        &mut self,
        b: VectorHandle,
        a: SparseHandle,
        x: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let r = {
            let m = self.sparse(a)?;
            let xv = self.vector(x)?;
            let bv = self.vector(b)?;
            let ax = m.matvec(xv)?;
            if bv.len() != ax.len() {
                return Err(GpuError::Linalg(LinalgError::DimensionMismatch {
                    context: format!("residual_sparse: b {} vs Ax {}", bv.len(), ax.len()),
                }));
            }
            bv.iter()
                .zip(ax.iter())
                .map(|(bi, ai)| bi - ai)
                .collect::<Vec<f64>>()
        };
        let nnz = self.sparse(a)?.nnz();
        self.charge_sparse_kernel(
            "residual_sparse",
            flops::spmv(nnz) + r.len() as f64,
            (nnz * 16) as f64,
            stream,
        );
        let bytes = r.len() * 8;
        let id = self.insert(Obj::Vector(r), bytes)?;
        Ok(VectorHandle(id))
    }

    /// Gathers basis columns from a CSR matrix and sparse-LU-factorizes
    /// them, producing a sparse eta file (the sparse path's basis install:
    /// gather + GLU-class factorization in one fused device operation).
    pub fn sparse_eta_factor(
        &mut self,
        a: SparseHandle,
        cols: &[usize],
        stream: StreamId,
    ) -> Result<SparseEtaHandle> {
        let file = {
            let m = self.sparse(a)?;
            let basis = m.to_csc().select_columns(cols)?;
            SparseEtaFile::factorize(&basis)?
        };
        let fill = file.fill_nnz();
        // Gather traffic + factorization work, all at sparse throughput.
        self.charge_sparse_kernel(
            "sparse_eta_factor",
            flops::sparse_lu(fill),
            (fill * 16) as f64,
            stream,
        );
        let bytes = fill * 16 + cols.len() * 8;
        let id = self.insert(Obj::SparseEta(file), bytes)?;
        Ok(SparseEtaHandle(id))
    }

    /// FTRAN through a sparse eta file.
    pub fn sparse_eta_ftran(
        &mut self,
        h: SparseEtaHandle,
        b: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let x = {
            let file = self.sparse_eta(h)?;
            let rhs = self.vector(b)?;
            file.ftran(rhs)?
        };
        let (n, k, fill) = {
            let file = self.sparse_eta(h)?;
            (file.dim(), file.eta_count(), file.fill_nnz())
        };
        self.charge_sparse_kernel(
            "sparse_eta_ftran",
            flops::spmv(fill) + flops::eta_apply(k, n),
            (fill * 16 + k * n * 8) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(x), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// BTRAN through a sparse eta file.
    pub fn sparse_eta_btran(
        &mut self,
        h: SparseEtaHandle,
        c: VectorHandle,
        stream: StreamId,
    ) -> Result<VectorHandle> {
        let y = {
            let file = self.sparse_eta(h)?;
            let rhs = self.vector(c)?;
            file.btran(rhs)?
        };
        let (n, k, fill) = {
            let file = self.sparse_eta(h)?;
            (file.dim(), file.eta_count(), file.fill_nnz())
        };
        self.charge_sparse_kernel(
            "sparse_eta_btran",
            flops::spmv(fill) + flops::eta_apply(k, n),
            (fill * 16 + k * n * 8) as f64,
            stream,
        );
        let id = self.insert(Obj::Vector(y), n * 8)?;
        Ok(VectorHandle(id))
    }

    /// Rank-1 basis update on a sparse eta file (no host transfer).
    pub fn sparse_eta_update(
        &mut self,
        h: SparseEtaHandle,
        leaving_pos: usize,
        alpha: VectorHandle,
        stream: StreamId,
    ) -> Result<()> {
        let alpha_v = self.vector(alpha)?.clone();
        let n = alpha_v.len();
        let add_bytes = n * 8;
        self.mem.alloc(add_bytes)?;
        match self.objects.get_mut(&h.0) {
            Some((Obj::SparseEta(file), bytes)) => match file.update(leaving_pos, alpha_v) {
                Ok(()) => {
                    *bytes += add_bytes;
                }
                Err(e) => {
                    self.mem.free(add_bytes);
                    return Err(GpuError::Linalg(e));
                }
            },
            _ => {
                self.mem.free(add_bytes);
                return Err(GpuError::InvalidHandle(h.0));
            }
        }
        self.charge_dense_kernel("sparse_eta_update", n as f64, add_bytes as f64, stream);
        Ok(())
    }

    /// Refactorizes a sparse eta file from basis columns of the CSR matrix.
    pub fn sparse_eta_refactorize(
        &mut self,
        h: SparseEtaHandle,
        a: SparseHandle,
        cols: &[usize],
        stream: StreamId,
    ) -> Result<()> {
        let basis = {
            let m = self.sparse(a)?;
            m.to_csc().select_columns(cols)?
        };
        let fill;
        match self.objects.get_mut(&h.0) {
            Some((Obj::SparseEta(file), bytes)) => {
                file.refactorize(&basis).map_err(GpuError::Linalg)?;
                fill = file.fill_nnz();
                let new_bytes = fill * 16 + cols.len() * 8;
                if *bytes > new_bytes {
                    self.mem.free(*bytes - new_bytes);
                } else {
                    self.mem.alloc(new_bytes - *bytes)?;
                }
                *bytes = new_bytes;
            }
            _ => return Err(GpuError::InvalidHandle(h.0)),
        }
        self.charge_sparse_kernel(
            "sparse_eta_refactorize",
            flops::sparse_lu(fill),
            (fill * 16) as f64,
            stream,
        );
        Ok(())
    }

    /// Eta count of a sparse eta file.
    pub fn sparse_eta_count(&self, h: SparseEtaHandle) -> Result<usize> {
        Ok(self.sparse_eta(h)?.eta_count())
    }

    /// Frees a sparse eta handle.
    pub fn free_sparse_eta(&mut self, h: SparseEtaHandle) -> Result<()> {
        self.free(h.0)
    }

    /// Appends a cut row to a device CSR matrix, growing the column count
    /// for the cut's slack (H2D transfer of the sparse row, Section 5.2).
    pub fn append_row_sparse(
        &mut self,
        h: SparseHandle,
        entries: &[(usize, f64)],
        new_cols: usize,
        stream: StreamId,
    ) -> Result<()> {
        let add_bytes = entries.len() * 16 + 8;
        self.charge_h2d(add_bytes, stream);
        self.charge_sparse_kernel("append_row_sparse", 0.0, add_bytes as f64, stream);
        self.mem.alloc(add_bytes)?;
        match self.objects.get_mut(&h.0) {
            Some((Obj::Sparse(m), bytes)) => {
                m.push_row_grow(entries, new_cols)
                    .map_err(GpuError::Linalg)?;
                *bytes += add_bytes;
                Ok(())
            }
            _ => {
                self.mem.free(add_bytes);
                Err(GpuError::InvalidHandle(h.0))
            }
        }
    }

    // ---- batched kernels (Sections 4.3, 5.5) ----

    /// One **fused** batched launch of a wave-kernel class: `per_lane`
    /// carries the `(flops, bytes)` of each active lane's instance of the
    /// kernel. The batch pays a single launch latency; execution time is
    /// the [`CostModel::batched_kernel_ns`] wave model over the worst
    /// per-lane roofline, and the flop ledger accrues the per-lane sum —
    /// the Rennich-style amortization of Section 4.3 applied to the
    /// lockstep node-LP wave of Section 5.5. Returns the charged ns.
    pub fn batched_wave_kernel(
        &mut self,
        name: &'static str,
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        let rate = self.cost.dense_flops_per_ns;
        self.batched_wave_kernel_at(name, per_lane, stream, rate)
    }

    /// Shared body of the dense/sparse fused wave launches, parameterized
    /// by the flop throughput the per-lane roofline charges against.
    fn batched_wave_kernel_at(
        &mut self,
        name: &'static str,
        per_lane: &[(f64, f64)],
        stream: StreamId,
        flops_per_ns: f64,
    ) -> f64 {
        if per_lane.is_empty() {
            return 0.0;
        }
        let per_op_ns = per_lane
            .iter()
            .map(|&(fl, by)| (fl / flops_per_ns).max(by / self.cost.mem_bw_bytes_per_ns))
            .fold(0.0, f64::max);
        let t = self.cost.batched_kernel_ns(per_lane.len(), per_op_ns);
        let done = self.streams.enqueue(stream, t);
        let batch_flops: f64 = per_lane.iter().map(|p| p.0).sum();
        let batch_bytes: f64 = per_lane.iter().map(|p| p.1).sum();
        self.registry.incr(names::GPU_KERNEL_LAUNCHES, 1.0);
        self.registry.incr(names::GPU_KERNEL_FLOPS, batch_flops);
        self.registry.incr(names::GPU_KERNEL_NS, t);
        let track = self.track;
        let batch = per_lane.len();
        gmip_trace::record(|| {
            Event::complete(
                Track {
                    group: track,
                    lane: stream as u32,
                },
                name,
                done - t,
                t,
            )
            .arg("batch", batch)
            .arg("bytes", batch_bytes.max(0.0) as u64)
        });
        t
    }

    /// One fused batched launch of a **sparse** wave-kernel class: same
    /// wave model as [`Self::batched_wave_kernel`], but per-lane flops are
    /// charged at the device's sparse throughput (irregular gather/scatter
    /// access, Section 5.4) instead of the dense rate. This is the launch
    /// shape of the first-order engine's `fo.spmv` / `fo.spmv_t` classes,
    /// whose cost is proportional to `nnz` rather than to basis size.
    /// Returns the charged ns.
    pub fn batched_wave_kernel_sparse(
        &mut self,
        name: &'static str,
        per_lane: &[(f64, f64)],
        stream: StreamId,
    ) -> f64 {
        let rate = self.cost.sparse_flops_per_ns;
        self.batched_wave_kernel_at(name, per_lane, stream, rate)
    }

    /// Batched factor-and-solve: one launch covering `systems.len()`
    /// independent small dense systems already resident on the device.
    /// Results are new device vectors, one per system.
    pub fn batched_lu_solve(
        &mut self,
        systems: &[(MatrixHandle, VectorHandle)],
        stream: StreamId,
    ) -> Result<Vec<VectorHandle>> {
        if systems.is_empty() {
            return Ok(Vec::new());
        }
        let mut mats = Vec::with_capacity(systems.len());
        let mut rhs = Vec::with_capacity(systems.len());
        for &(mh, vh) in systems {
            mats.push(self.matrix(mh)?.clone());
            rhs.push(self.vector(vh)?.clone());
        }
        let xs = lbatch::lu_factor_solve_batch(&mats, &rhs);
        // Per-problem execution time without launch latency; the batch pays
        // one launch and runs problems `concurrency` at a time.
        let per_op_ns = mats
            .iter()
            .map(|m| {
                let n = m.rows();
                (flops::lu(n) + flops::lu_solve(n)) / self.cost.dense_flops_per_ns
            })
            .fold(0.0, f64::max);
        let t = self.cost.batched_kernel_ns(mats.len(), per_op_ns);
        let done = self.streams.enqueue(stream, t);
        let batch_flops = mats
            .iter()
            .map(|m| flops::lu(m.rows()) + flops::lu_solve(m.rows()))
            .sum::<f64>();
        self.registry.incr(names::GPU_KERNEL_LAUNCHES, 1.0);
        self.registry.incr(names::GPU_KERNEL_NS, t);
        self.registry.incr(names::GPU_KERNEL_FLOPS, batch_flops);
        let track = self.track;
        let batch = mats.len();
        gmip_trace::record(|| {
            Event::complete(
                Track {
                    group: track,
                    lane: stream as u32,
                },
                "batched_lu_solve",
                done - t,
                t,
            )
            .arg("batch", batch)
        });
        let mut out = Vec::with_capacity(xs.len());
        for x in xs {
            let x = x.map_err(GpuError::Linalg)?;
            let bytes = x.len() * 8;
            let id = self.insert(Obj::Vector(x), bytes)?;
            out.push(VectorHandle(id));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gpu() -> GpuDevice {
        GpuDevice::new(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1 << 20,
            streams: 1,
        })
    }

    fn test_matrix() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            vec![2.0, 1.0, 1.0],
            vec![4.0, -6.0, 0.0],
            vec![-2.0, 7.0, 2.0],
        ])
        .unwrap()
    }

    #[test]
    fn upload_download_roundtrip_charges_transfers() {
        let mut dev = small_gpu();
        let m = test_matrix();
        let h = dev.upload_matrix(&m, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.stats().h2d_transfers, 1);
        assert_eq!(dev.stats().h2d_bytes, 72);
        let back = dev.download_matrix(h, DEFAULT_STREAM).unwrap();
        assert_eq!(back, m);
        assert_eq!(dev.stats().d2h_transfers, 1);
        assert!(dev.elapsed_ns() > 0.0);
    }

    #[test]
    fn oom_on_small_device() {
        let mut dev = GpuDevice::new(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 64,
            streams: 1,
        });
        let m = test_matrix(); // 72 bytes > 64
        assert!(matches!(
            dev.upload_matrix(&m, DEFAULT_STREAM),
            Err(GpuError::Oom(_))
        ));
    }

    #[test]
    fn free_releases_memory() {
        let mut dev = small_gpu();
        let h = dev.upload_matrix(&test_matrix(), DEFAULT_STREAM).unwrap();
        let used = dev.memory().used();
        dev.free_matrix(h).unwrap();
        assert_eq!(dev.memory().used(), used - 72);
        assert!(matches!(
            dev.download_matrix(h, DEFAULT_STREAM),
            Err(GpuError::InvalidHandle(_))
        ));
        assert!(dev.free(h.0).is_err());
    }

    #[test]
    fn device_lu_solves_system() {
        let mut dev = small_gpu();
        let a = test_matrix();
        let ah = dev.upload_matrix(&a, DEFAULT_STREAM).unwrap();
        let f = dev.lu_factor(ah, DEFAULT_STREAM).unwrap();
        let b = dev
            .upload_vector(&[5.0, -2.0, 9.0], DEFAULT_STREAM)
            .unwrap();
        let x = dev.lu_solve(f, b, DEFAULT_STREAM).unwrap();
        let xs = dev.download_vector(x, DEFAULT_STREAM).unwrap();
        let ax = a.matvec(&xs).unwrap();
        for (got, want) in ax.iter().zip(&[5.0, -2.0, 9.0]) {
            assert!((got - want).abs() < 1e-9);
        }
        assert!(dev.stats().kernel_launches >= 2);
    }

    #[test]
    fn gather_columns_builds_basis_without_transfer() {
        let mut dev = small_gpu();
        let a = test_matrix();
        let ah = dev.upload_matrix(&a, DEFAULT_STREAM).unwrap();
        let transfers_before = dev.stats().total_transfers();
        let b = dev.gather_columns(ah, &[2, 0], DEFAULT_STREAM).unwrap();
        assert_eq!(dev.stats().total_transfers(), transfers_before);
        let bm = dev.download_matrix(b, DEFAULT_STREAM).unwrap();
        assert_eq!(bm.cols(), 2);
        assert_eq!(bm.get(0, 0), 1.0); // col 2 of A
        assert_eq!(bm.get(0, 1), 2.0); // col 0 of A
        assert!(dev.gather_columns(ah, &[99], DEFAULT_STREAM).is_err());
    }

    #[test]
    fn pricing_and_argmin() {
        let mut dev = small_gpu();
        let a = DenseMatrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, 1.0]]).unwrap();
        let ah = dev.upload_matrix(&a, DEFAULT_STREAM).unwrap();
        let y = dev.upload_vector(&[1.0, 1.0], DEFAULT_STREAM).unwrap();
        let c = dev.upload_vector(&[3.0, 0.5, 4.0], DEFAULT_STREAM).unwrap();
        let d = dev.pricing(ah, y, c, DEFAULT_STREAM).unwrap();
        // d = c - At y = [3-1, 0.5-1, 4-3] = [2, -0.5, 1]
        let dv = dev.download_vector(d, DEFAULT_STREAM).unwrap();
        assert_eq!(dv, vec![2.0, -0.5, 1.0]);
        let mask = dev.upload_vector(&[1.0, 1.0, 1.0], DEFAULT_STREAM).unwrap();
        let (idx, val) = dev.argmin_masked(d, mask, DEFAULT_STREAM).unwrap().unwrap();
        assert_eq!(idx, 1);
        assert_eq!(val, -0.5);
        // Masked out: only index 0 and 2 eligible.
        let mask2 = dev.upload_vector(&[1.0, 0.0, 1.0], DEFAULT_STREAM).unwrap();
        let (idx2, _) = dev
            .argmin_masked(d, mask2, DEFAULT_STREAM)
            .unwrap()
            .unwrap();
        assert_eq!(idx2, 2);
        // Empty mask.
        let mask3 = dev.upload_vector(&[0.0, 0.0, 0.0], DEFAULT_STREAM).unwrap();
        assert!(dev
            .argmin_masked(d, mask3, DEFAULT_STREAM)
            .unwrap()
            .is_none());
    }

    #[test]
    fn ratio_test_reduction() {
        let mut dev = small_gpu();
        let xb = dev.upload_vector(&[4.0, 3.0, 8.0], DEFAULT_STREAM).unwrap();
        let alpha = dev
            .upload_vector(&[2.0, -1.0, 4.0], DEFAULT_STREAM)
            .unwrap();
        let (row, ratio) = dev
            .ratio_argmin(xb, alpha, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .unwrap();
        // Ratios: 4/2=2 (row 0), row 1 ineligible, 8/4=2 (row 2) → tie, lowest index.
        assert_eq!(row, 0);
        assert!((ratio - 2.0).abs() < 1e-12);
        // All ineligible → unbounded signal.
        let neg = dev
            .upload_vector(&[-1.0, -1.0, -1.0], DEFAULT_STREAM)
            .unwrap();
        assert!(dev
            .ratio_argmin(xb, neg, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .is_none());
    }

    #[test]
    fn eta_workflow_on_device() {
        let mut dev = small_gpu();
        let b0 = DenseMatrix::identity(3);
        let bh = dev.upload_matrix(&b0, DEFAULT_STREAM).unwrap();
        let eta = dev.eta_factor(bh, DEFAULT_STREAM).unwrap();
        let col = dev.upload_vector(&[2.0, 1.0, 0.0], DEFAULT_STREAM).unwrap();
        let alpha = dev.eta_ftran(eta, col, DEFAULT_STREAM).unwrap();
        dev.eta_update(eta, 0, alpha, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.eta_count(eta).unwrap(), 1);
        // Solve B x = [2,1,0] where B has column 0 replaced by [2,1,0]:
        // x should be e0.
        let rhs = dev.upload_vector(&[2.0, 1.0, 0.0], DEFAULT_STREAM).unwrap();
        let x = dev.eta_ftran(eta, rhs, DEFAULT_STREAM).unwrap();
        let xv = dev.download_vector(x, DEFAULT_STREAM).unwrap();
        assert!((xv[0] - 1.0).abs() < 1e-9);
        assert!(xv[1].abs() < 1e-9);
        // Refactorize clears etas.
        let mut b1 = DenseMatrix::identity(3);
        b1.set(0, 0, 2.0);
        b1.set(1, 0, 1.0);
        let b1h = dev.upload_matrix(&b1, DEFAULT_STREAM).unwrap();
        dev.eta_refactorize(eta, b1h, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.eta_count(eta).unwrap(), 0);
    }

    #[test]
    fn append_row_charges_h2d_and_grows() {
        let mut dev = small_gpu();
        let a = test_matrix();
        let ah = dev.upload_matrix(&a, DEFAULT_STREAM).unwrap();
        let h2d_before = dev.stats().h2d_transfers;
        let used_before = dev.memory().used();
        dev.append_row(ah, &[1.0, 1.0, 1.0], DEFAULT_STREAM)
            .unwrap();
        assert_eq!(dev.stats().h2d_transfers, h2d_before + 1);
        assert_eq!(dev.memory().used(), used_before + 24);
        let m = dev.download_matrix(ah, DEFAULT_STREAM).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.row(3), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn sparse_kernels() {
        let mut dev = small_gpu();
        let d = DenseMatrix::from_rows(&[
            vec![4.0, 0.0, -1.0],
            vec![0.0, 5.0, 0.0],
            vec![-1.0, 0.0, 3.0],
        ])
        .unwrap();
        let s = CsrMatrix::from_dense(&d);
        let sh = dev.upload_sparse(&s, DEFAULT_STREAM).unwrap();
        let x = dev.upload_vector(&[1.0, 1.0, 1.0], DEFAULT_STREAM).unwrap();
        let y = dev.spmv(sh, x, DEFAULT_STREAM).unwrap();
        assert_eq!(
            dev.download_vector(y, DEFAULT_STREAM).unwrap(),
            vec![3.0, 5.0, 2.0]
        );
        let f = dev.sparse_lu_factor(sh, DEFAULT_STREAM).unwrap();
        let b = dev.upload_vector(&[3.0, 5.0, 2.0], DEFAULT_STREAM).unwrap();
        let xs = dev.sparse_solve(f, b, DEFAULT_STREAM).unwrap();
        let xv = dev.download_vector(xs, DEFAULT_STREAM).unwrap();
        for v in &xv {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sparse_kernel_slower_than_dense_same_size() {
        // Same numeric problem through both paths; with launch latency zeroed
        // out, the sparse path's lower effective throughput (the Section 5.4
        // premise) must make it slower per flop.
        let mut cost = CostModel::gpu_pcie();
        cost.launch_latency_ns = 0.0;
        let cfg = DeviceConfig {
            cost,
            mem_capacity: 1 << 20,
            streams: 1,
        };
        // A 32x32 tridiagonal system: large enough that per-flop throughput,
        // not fixed overhead, decides the comparison.
        let n = 32;
        let mut d = DenseMatrix::zeros(n, n);
        for i in 0..n {
            d.set(i, i, 4.0);
            if i > 0 {
                d.set(i, i - 1, -1.0);
            }
            if i + 1 < n {
                d.set(i, i + 1, -1.0);
            }
        }
        let mut dev_dense = GpuDevice::new(cfg.clone());
        let ah = dev_dense.upload_matrix(&d, DEFAULT_STREAM).unwrap();
        dev_dense.lu_factor(ah, DEFAULT_STREAM).unwrap();
        let dense_per_flop = dev_dense.stats().kernel_ns / dev_dense.stats().flops;

        let mut dev_sparse = GpuDevice::new(cfg);
        let sh = dev_sparse
            .upload_sparse(&CsrMatrix::from_dense(&d), DEFAULT_STREAM)
            .unwrap();
        dev_sparse.sparse_lu_factor(sh, DEFAULT_STREAM).unwrap();
        let sparse_per_flop = dev_sparse.stats().kernel_ns / dev_sparse.stats().flops;
        assert!(
            sparse_per_flop > 10.0 * dense_per_flop,
            "sparse {sparse_per_flop} vs dense {dense_per_flop}"
        );
    }

    #[test]
    fn batched_solve_single_launch() {
        let mut dev = small_gpu();
        let mut systems = Vec::new();
        let mats: Vec<DenseMatrix> = (0..6)
            .map(|i| DenseMatrix::from_rows(&[vec![3.0 + i as f64, 1.0], vec![1.0, 4.0]]).unwrap())
            .collect();
        for m in &mats {
            let mh = dev.upload_matrix(m, DEFAULT_STREAM).unwrap();
            let bh = dev.upload_vector(&[1.0, 2.0], DEFAULT_STREAM).unwrap();
            systems.push((mh, bh));
        }
        let launches_before = dev.stats().kernel_launches;
        let xs = dev.batched_lu_solve(&systems, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.stats().kernel_launches, launches_before + 1);
        assert_eq!(xs.len(), 6);
        for (i, xh) in xs.iter().enumerate() {
            let x = dev.download_vector(*xh, DEFAULT_STREAM).unwrap();
            let ax = mats[i].matvec(&x).unwrap();
            assert!((ax[0] - 1.0).abs() < 1e-9);
            assert!((ax[1] - 2.0).abs() < 1e-9);
        }
        // Empty batch is a no-op.
        assert!(dev
            .batched_lu_solve(&[], DEFAULT_STREAM)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cholesky_kernel() {
        let mut dev = small_gpu();
        // SPD: L0 L0t for L0 = [[2,0],[1,3]].
        let a = DenseMatrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 10.0]]).unwrap();
        let ah = dev.upload_matrix(&a, DEFAULT_STREAM).unwrap();
        let f = dev.cholesky_factor(ah, DEFAULT_STREAM).unwrap();
        let b = dev.upload_vector(&[6.0, 12.0], DEFAULT_STREAM).unwrap();
        let x = dev.cholesky_solve(f, b, DEFAULT_STREAM).unwrap();
        let xv = dev.download_vector(x, DEFAULT_STREAM).unwrap();
        let ax = a.matvec(&xv).unwrap();
        assert!((ax[0] - 6.0).abs() < 1e-9 && (ax[1] - 12.0).abs() < 1e-9);
        // Indefinite rejected.
        let bad = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        let bh = dev.upload_matrix(&bad, DEFAULT_STREAM).unwrap();
        assert!(dev.cholesky_factor(bh, DEFAULT_STREAM).is_err());
    }

    #[test]
    fn sparse_path_kernels() {
        let mut dev = small_gpu();
        // A = [[4, 0, -1, 1], [0, 5, 0, 0], [-1, 0, 3, 0]] (3x4 CSR).
        let d = DenseMatrix::from_rows(&[
            vec![4.0, 0.0, -1.0, 1.0],
            vec![0.0, 5.0, 0.0, 0.0],
            vec![-1.0, 0.0, 3.0, 0.0],
        ])
        .unwrap();
        let a = CsrMatrix::from_dense(&d);
        let ah = dev.upload_sparse(&a, DEFAULT_STREAM).unwrap();

        // Column extraction.
        let c2 = dev.extract_column_sparse(ah, 2, DEFAULT_STREAM).unwrap();
        assert_eq!(
            dev.download_vector(c2, DEFAULT_STREAM).unwrap(),
            vec![-1.0, 0.0, 3.0]
        );
        assert!(dev.extract_column_sparse(ah, 9, DEFAULT_STREAM).is_err());

        // Sparse pricing: d = c - At y.
        let y = dev.upload_vector(&[1.0, 1.0, 1.0], DEFAULT_STREAM).unwrap();
        let c = dev
            .upload_vector(&[5.0, 6.0, 3.0, 2.0], DEFAULT_STREAM)
            .unwrap();
        let dvec = dev.pricing_sparse(ah, y, c, DEFAULT_STREAM).unwrap();
        assert_eq!(
            dev.download_vector(dvec, DEFAULT_STREAM).unwrap(),
            vec![2.0, 1.0, 1.0, 1.0]
        );

        // Sparse residual: r = b - A x with x = e0.
        let x = dev
            .upload_vector(&[1.0, 0.0, 0.0, 0.0], DEFAULT_STREAM)
            .unwrap();
        let b = dev.upload_vector(&[5.0, 5.0, 5.0], DEFAULT_STREAM).unwrap();
        let r = dev.residual_sparse(b, ah, x, DEFAULT_STREAM).unwrap();
        assert_eq!(
            dev.download_vector(r, DEFAULT_STREAM).unwrap(),
            vec![1.0, 5.0, 6.0]
        );

        // Basis gather + sparse eta factorization over cols [0,1,2].
        let eta = dev
            .sparse_eta_factor(ah, &[0, 1, 2], DEFAULT_STREAM)
            .unwrap();
        assert_eq!(dev.sparse_eta_count(eta).unwrap(), 0);
        // Solve B z = col 0 of A -> z = e0.
        let rhs = dev
            .upload_vector(&[4.0, 0.0, -1.0], DEFAULT_STREAM)
            .unwrap();
        let z = dev.sparse_eta_ftran(eta, rhs, DEFAULT_STREAM).unwrap();
        let zv = dev.download_vector(z, DEFAULT_STREAM).unwrap();
        assert!((zv[0] - 1.0).abs() < 1e-9 && zv[1].abs() < 1e-9 && zv[2].abs() < 1e-9);
        // BTRAN against e1: check Bt w = e1.
        let e1 = dev.alloc_unit_vector(3, 1, DEFAULT_STREAM).unwrap();
        let w = dev.sparse_eta_btran(eta, e1, DEFAULT_STREAM).unwrap();
        let wv = dev.download_vector(w, DEFAULT_STREAM).unwrap();
        let bt = DenseMatrix::from_rows(&[
            vec![4.0, 0.0, -1.0],
            vec![0.0, 5.0, 0.0],
            vec![-1.0, 0.0, 3.0],
        ])
        .unwrap()
        .transpose();
        let btw = bt.matvec(&wv).unwrap();
        assert!((btw[1] - 1.0).abs() < 1e-9 && btw[0].abs() < 1e-9);

        // Update: replace basis position 2 with column 3 of A (= e0).
        let col3 = dev.extract_column_sparse(ah, 3, DEFAULT_STREAM).unwrap();
        let alpha = dev.sparse_eta_ftran(eta, col3, DEFAULT_STREAM).unwrap();
        dev.sparse_eta_update(eta, 2, alpha, DEFAULT_STREAM)
            .unwrap();
        assert_eq!(dev.sparse_eta_count(eta).unwrap(), 1);
        // Refactorize from the true new basis [0, 1, 3].
        dev.sparse_eta_refactorize(eta, ah, &[0, 1, 3], DEFAULT_STREAM)
            .unwrap();
        assert_eq!(dev.sparse_eta_count(eta).unwrap(), 0);

        // Cut append: row over cols 0..4 plus new slack col 4.
        dev.append_row_sparse(ah, &[(0, 1.0), (4, 1.0)], 5, DEFAULT_STREAM)
            .unwrap();
        let m = dev.download_matrix_sparse(ah, DEFAULT_STREAM).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m.cols(), 5);
        assert_eq!(m.get(3, 4), 1.0);

        dev.free_sparse_eta(eta).unwrap();
    }

    #[test]
    fn raw_alloc_models_tree_storage() {
        let mut dev = GpuDevice::new(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1000,
            streams: 1,
        });
        let h = dev.alloc_raw(800).unwrap();
        assert!(dev.alloc_raw(300).is_err());
        dev.free_raw(h).unwrap();
        assert!(dev.alloc_raw(300).is_ok());
    }

    #[test]
    fn vec_set_get() {
        let mut dev = small_gpu();
        let v = dev.upload_vector(&[1.0, 2.0, 3.0], DEFAULT_STREAM).unwrap();
        dev.vec_set(v, 1, 9.0, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.vec_get(v, 1, DEFAULT_STREAM).unwrap(), 9.0);
        assert!(dev.vec_set(v, 5, 0.0, DEFAULT_STREAM).is_err());
        assert!(dev.vec_get(v, 5, DEFAULT_STREAM).is_err());
    }

    #[test]
    fn extract_append_residual() {
        let mut dev = small_gpu();
        let a = test_matrix();
        let ah = dev.upload_matrix(&a, DEFAULT_STREAM).unwrap();
        // Column extraction needs no transfer.
        let transfers = dev.stats().total_transfers();
        let c1 = dev.extract_column(ah, 1, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.stats().total_transfers(), transfers);
        assert_eq!(
            dev.download_vector(c1, DEFAULT_STREAM).unwrap(),
            vec![1.0, -6.0, 7.0]
        );
        assert!(dev.extract_column(ah, 9, DEFAULT_STREAM).is_err());

        dev.append_column(ah, &[1.0, 0.0, 0.0], DEFAULT_STREAM)
            .unwrap();
        let m = dev.download_matrix(ah, DEFAULT_STREAM).unwrap();
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(0, 3), 1.0);

        // r = b - A x with x = e3 (the new column): r = b - [1,0,0].
        let x = dev
            .upload_vector(&[0.0, 0.0, 0.0, 1.0], DEFAULT_STREAM)
            .unwrap();
        let b = dev.upload_vector(&[5.0, 5.0, 5.0], DEFAULT_STREAM).unwrap();
        let r = dev.residual(b, ah, x, DEFAULT_STREAM).unwrap();
        assert_eq!(
            dev.download_vector(r, DEFAULT_STREAM).unwrap(),
            vec![4.0, 5.0, 5.0]
        );
    }

    #[test]
    fn vec_mul_and_unit_vector() {
        let mut dev = small_gpu();
        let a = dev
            .upload_vector(&[1.0, -2.0, 3.0], DEFAULT_STREAM)
            .unwrap();
        let b = dev.upload_vector(&[2.0, 2.0, 0.0], DEFAULT_STREAM).unwrap();
        let c = dev.vec_mul(a, b, DEFAULT_STREAM).unwrap();
        assert_eq!(
            dev.download_vector(c, DEFAULT_STREAM).unwrap(),
            vec![2.0, -4.0, 0.0]
        );
        let short = dev.upload_vector(&[1.0], DEFAULT_STREAM).unwrap();
        assert!(dev.vec_mul(a, short, DEFAULT_STREAM).is_err());

        let transfers_before = dev.stats().h2d_transfers;
        let e = dev.alloc_unit_vector(4, 2, DEFAULT_STREAM).unwrap();
        assert_eq!(dev.stats().h2d_transfers, transfers_before);
        assert_eq!(
            dev.download_vector(e, DEFAULT_STREAM).unwrap(),
            vec![0.0, 0.0, 1.0, 0.0]
        );
        assert!(dev.alloc_unit_vector(4, 9, DEFAULT_STREAM).is_err());
    }

    #[test]
    fn bounded_ratio_test_kernel() {
        let mut dev = small_gpu();
        let xb = dev.upload_vector(&[4.0, 5.0, 1.0], DEFAULT_STREAM).unwrap();
        let alpha = dev
            .upload_vector(&[2.0, -1.0, 0.0], DEFAULT_STREAM)
            .unwrap();
        let lbb = dev.upload_vector(&[0.0, 0.0, 0.0], DEFAULT_STREAM).unwrap();
        let ubb = dev
            .upload_vector(&[10.0, 6.0, 10.0], DEFAULT_STREAM)
            .unwrap();
        // dir=+1: row 0 drops to lb at t = 4/2 = 2; row 1 rises to ub at
        // t = (5-6)/(-1) = 1 → row 1 wins, leaves at upper.
        let (row, t, upper) = dev
            .ratio_test_bounded(xb, alpha, lbb, ubb, 1.0, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .unwrap();
        assert_eq!(row, 1);
        assert!((t - 1.0).abs() < 1e-12);
        assert!(upper);
        // dir=-1 flips the roles: row 0 now rises toward ub at t=(4-10)/(-2)=3,
        // row 1 drops to lb at t=5/1=5 → row 0 wins.
        let (row2, t2, upper2) = dev
            .ratio_test_bounded(xb, alpha, lbb, ubb, -1.0, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .unwrap();
        assert_eq!(row2, 0);
        assert!((t2 - 3.0).abs() < 1e-12);
        assert!(upper2);
        // Infinite bounds in the blocking direction → no limit.
        let inf_lb = dev
            .upload_vector(&[f64::NEG_INFINITY; 3], DEFAULT_STREAM)
            .unwrap();
        let inf_ub = dev
            .upload_vector(&[f64::INFINITY; 3], DEFAULT_STREAM)
            .unwrap();
        assert!(dev
            .ratio_test_bounded(xb, alpha, inf_lb, inf_ub, 1.0, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .is_none());
    }

    #[test]
    fn basic_step_kernel() {
        let mut dev = small_gpu();
        let xb = dev.upload_vector(&[4.0, 5.0, 1.0], DEFAULT_STREAM).unwrap();
        let alpha = dev
            .upload_vector(&[2.0, -1.0, 0.5], DEFAULT_STREAM)
            .unwrap();
        dev.basic_step(xb, alpha, 1.0, 2.0, Some((0, 7.5)), DEFAULT_STREAM)
            .unwrap();
        // xb - 2*alpha = [0, 7, 0]; then xb[0] = 7.5.
        assert_eq!(
            dev.download_vector(xb, DEFAULT_STREAM).unwrap(),
            vec![7.5, 7.0, 0.0]
        );
        assert!(dev
            .basic_step(xb, alpha, 1.0, 0.0, Some((9, 0.0)), DEFAULT_STREAM)
            .is_err());
    }

    #[test]
    fn dual_simplex_reductions() {
        let mut dev = small_gpu();
        let xb = dev
            .upload_vector(&[-2.0, 0.5, 9.0], DEFAULT_STREAM)
            .unwrap();
        let lbb = dev.upload_vector(&[0.0, 0.0, 0.0], DEFAULT_STREAM).unwrap();
        let ubb = dev.upload_vector(&[5.0, 5.0, 5.0], DEFAULT_STREAM).unwrap();
        let (row, viol, below) = dev
            .primal_infeas_argmax(xb, lbb, ubb, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .unwrap();
        // Violations: row 0 below by 2, row 2 above by 4 → row 2 wins.
        assert_eq!(row, 2);
        assert!((viol - 4.0).abs() < 1e-12);
        assert!(!below);
        // Feasible xb → None.
        let ok = dev.upload_vector(&[1.0, 1.0, 1.0], DEFAULT_STREAM).unwrap();
        assert!(dev
            .primal_infeas_argmax(ok, lbb, ubb, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .is_none());

        // Dual ratio: d = [-3, 2, 0], alpha_r = [-1, 4, 1], sigma = [-1, 1, 0].
        // leaving_below=true: at-lower j0 needs alpha<-tol (yes, ratio 3);
        // at-upper j1 needs alpha>tol (yes, ratio 0.5) → j1 wins.
        let d = dev
            .upload_vector(&[-3.0, 2.0, 0.0], DEFAULT_STREAM)
            .unwrap();
        let ar = dev
            .upload_vector(&[-1.0, 4.0, 1.0], DEFAULT_STREAM)
            .unwrap();
        let sigma = dev
            .upload_vector(&[-1.0, 1.0, 0.0], DEFAULT_STREAM)
            .unwrap();
        let (col, ratio) = dev
            .dual_ratio_argmin(d, ar, sigma, true, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .unwrap();
        assert_eq!(col, 1);
        assert!((ratio - 0.5).abs() < 1e-12);
        // leaving_below=false: j0 needs alpha>tol (no), j1 needs alpha<-tol
        // (no) → dual unbounded.
        assert!(dev
            .dual_ratio_argmin(d, ar, sigma, false, 1e-9, DEFAULT_STREAM)
            .unwrap()
            .is_none());
    }

    #[test]
    fn streams_overlap_in_device_time() {
        let mut dev = GpuDevice::new(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1 << 20,
            streams: 1,
        });
        let s1 = dev.create_stream();
        let m = test_matrix();
        let h0 = dev.upload_matrix(&m, DEFAULT_STREAM).unwrap();
        let h1 = dev.upload_matrix(&m, s1).unwrap();
        dev.lu_factor(h0, DEFAULT_STREAM).unwrap();
        dev.lu_factor(h1, s1).unwrap();
        let overlapped = dev.elapsed_ns();
        // Serial on one stream would be ~2x; with two streams the frontier is
        // roughly one pipeline deep.
        let mut serial = GpuDevice::new(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1 << 20,
            streams: 1,
        });
        let a0 = serial.upload_matrix(&m, DEFAULT_STREAM).unwrap();
        let a1 = serial.upload_matrix(&m, DEFAULT_STREAM).unwrap();
        serial.lu_factor(a0, DEFAULT_STREAM).unwrap();
        serial.lu_factor(a1, DEFAULT_STREAM).unwrap();
        assert!(overlapped < serial.elapsed_ns());
    }
}
