//! # gmip-gpu
//!
//! A simulated GPU accelerator for the `gmip` MIP solver stack.
//!
//! This crate is the substitution substrate for the hardware the paper
//! targets (V100/MI100-class devices in Summit/Frontier-class systems). No
//! GPU is required: kernels perform their real numerics on the CPU via
//! `gmip-linalg`, while a [`cost::CostModel`] charges *simulated* time for
//! compute, memory traffic, host↔device transfers, and kernel launches, and
//! [`memory::DeviceMemory`] enforces device capacity exactly.
//!
//! The design intent is that every architectural claim in the paper becomes
//! a measurable quantity here:
//!
//! * dense vs. sparse efficiency (Sections 3, 5.4) — two throughput knobs;
//! * host↔device transfer minimization (Section 5) — counted and charged;
//! * kernel-launch amortization via batching (Sections 4.3, 5.5) —
//!   [`device::GpuDevice::batched_lu_solve`] pays one launch per batch;
//! * streams (Section 5.5) — per-stream logical timelines that overlap;
//! * device memory capacity as a regime boundary (Section 3) — allocation
//!   failures are real errors the solver strategies must handle.
//!
//! The "CPU backend" is the same device type under a CPU cost model
//! ([`node::Accel::cpu`]), so CPU-vs-GPU comparisons run identical code.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backend;
pub mod cost;
pub mod device;
pub mod kernels;
pub mod memory;
pub mod node;
pub mod stats;
pub mod stream;

pub use backend::{
    Accelerator, BackendKind, LaneBody, NativeAccelerator, SimAccelerator, WaveCharge,
};
pub use cost::CostModel;
pub use device::{
    CholeskyHandle, DeviceConfig, EtaHandle, FactorHandle, GpuDevice, GpuError, MatrixHandle,
    RawHandle, SparseEtaHandle, SparseFactorHandle, SparseHandle, VectorHandle, DEFAULT_STREAM,
};
pub use kernels::{AxpyLane, SpmvLane, SpmvTLane};
pub use memory::{DeviceMemory, OutOfMemory};
pub use node::{Accel, AccelKind, ComputeNode};
pub use stats::DeviceStats;
pub use stream::{Event, StreamId, StreamSet};
