//! The accelerator cost model.
//!
//! The paper's design arguments are all *relative-cost* arguments: dense
//! linear algebra is fast on GPUs, sparse is not (Sections 3, 5.4);
//! host↔device transfers are expensive enough that the matrix must be reused
//! across simplex iterations, cuts, and tree nodes (Section 5); kernel-launch
//! latency makes batched small-matrix routines the right shape for many
//! concurrent node LPs (Sections 4.3, 5.5). [`CostModel`] captures exactly
//! these knobs; the simulated device charges every operation through it.
//!
//! All times are in nanoseconds of *simulated* time; throughputs are in
//! flops (or bytes) per nanosecond, i.e. Gflop/s (or GB/s) divided by 1e0 —
//! 1 flop/ns = 1 Gflop/s.

/// Cost parameters for a simulated accelerator (or CPU) backend.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Human-readable preset name.
    pub name: &'static str,
    /// Dense floating-point throughput, flops per nanosecond (== Gflop/s).
    pub dense_flops_per_ns: f64,
    /// Effective throughput of irregular/sparse kernels, flops per ns.
    /// Far below `dense_flops_per_ns` on GPU-like presets (Section 5.4).
    pub sparse_flops_per_ns: f64,
    /// Device memory bandwidth, bytes per nanosecond (== GB/s).
    pub mem_bw_bytes_per_ns: f64,
    /// Host↔device interconnect bandwidth, bytes per ns.
    pub link_bw_bytes_per_ns: f64,
    /// Fixed latency per host↔device transfer, ns.
    pub link_latency_ns: f64,
    /// Fixed latency per kernel launch, ns.
    pub launch_latency_ns: f64,
    /// Number of small independent problems the device can execute
    /// concurrently (SM count proxy; sizes batched-kernel speedups).
    pub concurrency: usize,
    /// Board/package power draw while busy, watts — backs the paper's
    /// Section 2.2 claim that "GPUs offer more energy efficient computing
    /// compared to the CPU counterpart": energy = power × busy time, so the
    /// device wins on energy exactly where its throughput advantage
    /// outruns its power premium.
    pub power_w: f64,
}

impl CostModel {
    /// A V100/A100-class data-center GPU over PCIe Gen3.
    ///
    /// Numbers are order-of-magnitude: ~7 Tflop/s FP64 dense, ~900 GB/s HBM2,
    /// ~12 GB/s effective PCIe, ~10 µs kernel launch, O(100)-way small-kernel
    /// concurrency. Sparse effective throughput is set ~50× below dense,
    /// reflecting the irregular-access penalty the paper describes.
    pub fn gpu_pcie() -> Self {
        Self {
            name: "gpu-pcie",
            dense_flops_per_ns: 7000.0,
            sparse_flops_per_ns: 140.0,
            mem_bw_bytes_per_ns: 900.0,
            link_bw_bytes_per_ns: 12.0,
            link_latency_ns: 10_000.0,
            launch_latency_ns: 8_000.0,
            concurrency: 108,
            power_w: 300.0,
        }
    }

    /// Same device class over an NVLink-like interconnect (Summit-style).
    pub fn gpu_nvlink() -> Self {
        Self {
            name: "gpu-nvlink",
            link_bw_bytes_per_ns: 75.0,
            link_latency_ns: 2_000.0,
            ..Self::gpu_pcie()
        }
    }

    /// A many-core host CPU. Dense throughput two orders of magnitude below
    /// the GPU, but no transfer/launch overheads and a much smaller
    /// dense/sparse gap (caches tolerate irregular access better).
    pub fn cpu_host() -> Self {
        Self {
            name: "cpu-host",
            dense_flops_per_ns: 60.0,
            sparse_flops_per_ns: 20.0,
            mem_bw_bytes_per_ns: 100.0,
            link_bw_bytes_per_ns: f64::INFINITY,
            link_latency_ns: 0.0,
            launch_latency_ns: 0.0,
            concurrency: 16,
            power_w: 150.0,
        }
    }

    /// An idealized zero-copy accelerator (unified memory, no transfer cost)
    /// used in experiment E8 to isolate the interconnect's influence.
    pub fn gpu_zero_copy() -> Self {
        Self {
            name: "gpu-zero-copy",
            link_bw_bytes_per_ns: f64::INFINITY,
            link_latency_ns: 0.0,
            ..Self::gpu_pcie()
        }
    }

    /// Scales the interconnect of this model by `bw_factor` (bandwidth) while
    /// keeping everything else — the E8 transfer-cost sweep.
    pub fn with_link_scaled(&self, bw_factor: f64, latency_factor: f64) -> Self {
        Self {
            link_bw_bytes_per_ns: self.link_bw_bytes_per_ns * bw_factor,
            link_latency_ns: self.link_latency_ns * latency_factor,
            ..self.clone()
        }
    }

    /// Time to move `bytes` across the host↔device link.
    pub fn transfer_ns(&self, bytes: usize) -> f64 {
        if self.link_bw_bytes_per_ns.is_infinite() && self.link_latency_ns == 0.0 {
            return 0.0;
        }
        self.link_latency_ns + bytes as f64 / self.link_bw_bytes_per_ns
    }

    /// Time for a dense kernel doing `flops` floating-point operations over
    /// `bytes` of traffic: launch latency plus the roofline max of compute
    /// and memory time.
    pub fn dense_kernel_ns(&self, flops: f64, bytes: f64) -> f64 {
        self.launch_latency_ns
            + (flops / self.dense_flops_per_ns).max(bytes / self.mem_bw_bytes_per_ns)
    }

    /// Time for an irregular/sparse kernel (same roofline shape, lower
    /// effective compute throughput).
    pub fn sparse_kernel_ns(&self, flops: f64, bytes: f64) -> f64 {
        self.launch_latency_ns
            + (flops / self.sparse_flops_per_ns).max(bytes / self.mem_bw_bytes_per_ns)
    }

    /// Time for a *batched* kernel of `batch` independent small problems each
    /// costing `per_op_ns` of pure execution: one launch, problems spread
    /// over [`concurrency`](Self::concurrency) units in waves.
    pub fn batched_kernel_ns(&self, batch: usize, per_op_ns: f64) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let waves = batch.div_ceil(self.concurrency);
        self.launch_latency_ns + waves as f64 * per_op_ns
    }
}

/// Standard flop counts for the kernels the device offers.
pub mod flops {
    /// LU factorization of an `n × n` dense matrix: (2/3)n³.
    pub fn lu(n: usize) -> f64 {
        2.0 / 3.0 * (n as f64).powi(3)
    }

    /// Cholesky factorization of an `n × n` SPD matrix: (1/3)n³.
    pub fn cholesky(n: usize) -> f64 {
        1.0 / 3.0 * (n as f64).powi(3)
    }

    /// Triangular solve pair against an `n × n` factorization: 2n².
    pub fn lu_solve(n: usize) -> f64 {
        2.0 * (n as f64) * (n as f64)
    }

    /// Dense matrix–vector product, `m × n`: 2mn.
    pub fn gemv(m: usize, n: usize) -> f64 {
        2.0 * m as f64 * n as f64
    }

    /// Dense matrix–matrix product, `m × k` by `k × n`: 2mkn.
    pub fn gemm(m: usize, k: usize, n: usize) -> f64 {
        2.0 * m as f64 * k as f64 * n as f64
    }

    /// Sparse matrix–vector product with `nnz` nonzeros: 2·nnz.
    pub fn spmv(nnz: usize) -> f64 {
        2.0 * nnz as f64
    }

    /// Sparse LU with `fill` total stored factor nonzeros: proportional to
    /// the fill actually produced (a standard work proxy).
    pub fn sparse_lu(fill: usize) -> f64 {
        4.0 * fill as f64
    }

    /// One eta-file FTRAN/BTRAN application over `k` etas of dimension `n`.
    pub fn eta_apply(k: usize, n: usize) -> f64 {
        2.0 * k as f64 * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let gpu = CostModel::gpu_pcie();
        let cpu = CostModel::cpu_host();
        // GPU dense throughput dwarfs CPU; sparse gap is much larger on GPU.
        assert!(gpu.dense_flops_per_ns > 10.0 * cpu.dense_flops_per_ns);
        assert!(gpu.dense_flops_per_ns / gpu.sparse_flops_per_ns > 10.0);
        assert!(cpu.dense_flops_per_ns / cpu.sparse_flops_per_ns < 10.0);
        // NVLink beats PCIe.
        assert!(
            CostModel::gpu_nvlink().transfer_ns(1 << 20)
                < CostModel::gpu_pcie().transfer_ns(1 << 20)
        );
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = CostModel::gpu_pcie();
        let small = m.transfer_ns(8);
        let big = m.transfer_ns(8 << 20);
        assert!(big > small);
        // Latency dominates tiny transfers.
        assert!((small - m.link_latency_ns).abs() / m.link_latency_ns < 0.01);
        // Zero-copy preset transfers for free.
        assert_eq!(CostModel::gpu_zero_copy().transfer_ns(8 << 20), 0.0);
    }

    #[test]
    fn roofline_picks_max_of_compute_and_memory() {
        let m = CostModel::gpu_pcie();
        // Compute-bound: lots of flops, no bytes.
        let t1 = m.dense_kernel_ns(7.0e9, 0.0);
        assert!((t1 - m.launch_latency_ns - 1.0e6).abs() < 1.0);
        // Memory-bound: tiny flops, lots of bytes.
        let t2 = m.dense_kernel_ns(1.0, 900.0e6);
        assert!((t2 - m.launch_latency_ns - 1.0e6).abs() < 1.0);
    }

    #[test]
    fn sparse_kernel_slower_than_dense_for_same_flops() {
        let m = CostModel::gpu_pcie();
        assert!(m.sparse_kernel_ns(1e9, 0.0) > m.dense_kernel_ns(1e9, 0.0));
    }

    #[test]
    fn batching_amortizes_launch_latency() {
        let m = CostModel::gpu_pcie();
        let per_op = 500.0;
        let batch = 64;
        let batched = m.batched_kernel_ns(batch, per_op);
        let serial = batch as f64 * (m.launch_latency_ns + per_op);
        assert!(batched < serial / 10.0, "batched={batched} serial={serial}");
        assert_eq!(m.batched_kernel_ns(0, per_op), 0.0);
        // More problems than concurrency → multiple waves.
        let two_waves = m.batched_kernel_ns(m.concurrency + 1, per_op);
        assert!((two_waves - (m.launch_latency_ns + 2.0 * per_op)).abs() < 1e-9);
    }

    #[test]
    fn link_scaling() {
        let m = CostModel::gpu_pcie().with_link_scaled(2.0, 0.5);
        assert_eq!(m.link_bw_bytes_per_ns, 24.0);
        assert_eq!(m.link_latency_ns, 5_000.0);
    }

    #[test]
    fn flop_counts() {
        assert_eq!(flops::lu_solve(10), 200.0);
        assert_eq!(flops::gemv(3, 4), 24.0);
        assert_eq!(flops::gemm(2, 3, 4), 48.0);
        assert_eq!(flops::spmv(100), 200.0);
        assert!((flops::lu(3) - 18.0).abs() < 1e-12);
        assert!((flops::cholesky(3) - 9.0).abs() < 1e-12);
    }
}
