//! Property tests: the native executing backend is bit-identical to the
//! sequential host loops for every fused kernel class, at every thread
//! count — parallelism crosses lane boundaries only, never the math
//! inside a lane.

use gmip_gpu::{Accel, AxpyLane, BackendKind, SpmvLane, SpmvTLane, WaveCharge, DEFAULT_STREAM};
use gmip_linalg::{CsrMatrix, DenseMatrix};
use proptest::prelude::*;

/// A reproducible dense matrix + per-lane vectors from a proptest seed.
#[derive(Debug, Clone)]
struct Fixture {
    csr: CsrMatrix,
    m: usize,
    n: usize,
    lanes: usize,
    /// Per-lane `(y, x, lb, ub)` seeds.
    seeds: Vec<(Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>)>,
    c_tilde: Vec<f64>,
    b: Vec<f64>,
}

fn fixture_strategy() -> impl Strategy<Value = Fixture> {
    (1usize..8, 1usize..8, 1usize..9, any::<u64>()).prop_map(|(m, n, lanes, seed)| {
        // A cheap deterministic generator: splitmix64 over the seed. Using
        // proptest only for the shape + seed keeps the case small and
        // shrinkable while still exercising irregular values.
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            let u = (z ^ (z >> 31)) as f64 / u64::MAX as f64;
            (u - 0.5) * 4.0
        };
        let rows: Vec<Vec<f64>> = (0..m)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        let v = next();
                        // ~40% structural zeros for genuinely sparse rows.
                        if v.abs() < 0.8 {
                            0.0
                        } else {
                            v
                        }
                    })
                    .collect()
            })
            .collect();
        let dense = DenseMatrix::from_rows(&rows).expect("rectangular rows");
        let seeds = (0..lanes)
            .map(|_| {
                let y: Vec<f64> = (0..m).map(|_| next()).collect();
                let x: Vec<f64> = (0..n).map(|_| next()).collect();
                let lb: Vec<f64> = (0..n).map(|_| -next().abs()).collect();
                let ub: Vec<f64> = (0..n).map(|_| next().abs()).collect();
                (y, x, lb, ub)
            })
            .collect();
        Fixture {
            csr: CsrMatrix::from_dense(&dense),
            m,
            n,
            lanes,
            seeds,
            c_tilde: (0..n).map(|_| next()).collect(),
            b: (0..m).map(|_| next()).collect(),
        }
    })
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs the full spmv_t → axpy → spmv chain on one backend and returns
/// every lane's output buffers as raw bits.
fn run_chain(fx: &Fixture, backend: BackendKind) -> Vec<Vec<u64>> {
    let accel = Accel::gpu(1).with_backend(backend);
    let exec = accel.exec();
    let per_lane: Vec<(f64, f64)> = vec![(1.0, 1.0); fx.lanes];

    let mut state: Vec<_> = fx
        .seeds
        .iter()
        .map(|(y, x, lb, ub)| {
            (
                y.clone(),
                x.clone(),
                lb.clone(),
                ub.clone(),
                vec![0.0; fx.n], // aty
                vec![0.0; fx.n], // xhat
                vec![0.0; fx.m], // ax
                vec![0.0; fx.n], // x_sum
                vec![0.0; fx.m], // y_sum
            )
        })
        .collect();

    let mut lanes: Vec<SpmvTLane<'_>> = state
        .iter_mut()
        .map(|s| SpmvTLane {
            y: &s.0,
            aty: &mut s.4,
        })
        .collect();
    exec.fo_spmv_t(&fx.csr, &mut lanes, &per_lane, DEFAULT_STREAM);
    drop(lanes);

    let mut lanes: Vec<AxpyLane<'_>> = state
        .iter_mut()
        .map(|s| AxpyLane {
            x: &mut s.1,
            xhat: &mut s.5,
            aty: &s.4,
            lb: &s.2,
            ub: &s.3,
            tau: 0.25,
        })
        .collect();
    exec.fo_axpy(&fx.c_tilde, &mut lanes, &per_lane, DEFAULT_STREAM);
    drop(lanes);

    let mut lanes: Vec<SpmvLane<'_>> = state
        .iter_mut()
        .map(|s| SpmvLane {
            xhat: &s.5,
            ax: &mut s.6,
            x: &s.1,
            y: &mut s.0,
            x_sum: &mut s.7,
            y_sum: &mut s.8,
            sigma: 0.5,
        })
        .collect();
    exec.fo_spmv(&fx.csr, &fx.b, &mut lanes, &per_lane, DEFAULT_STREAM);
    drop(lanes);

    state
        .iter()
        .flat_map(|s| {
            [
                bits(&s.0),
                bits(&s.1),
                bits(&s.4),
                bits(&s.5),
                bits(&s.6),
                bits(&s.7),
                bits(&s.8),
            ]
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn native_fo_chain_is_bit_identical_to_sim(fx in fixture_strategy()) {
        let reference = run_chain(&fx, BackendKind::Sim);
        for threads in [1usize, 2, 4] {
            let got = run_chain(&fx, BackendKind::Native { threads });
            prop_assert_eq!(&got, &reference, "threads {}", threads);
        }
    }

    #[test]
    fn native_fused_dispatch_runs_every_body_once(
        lanes in 1usize..32,
        threads in 1usize..6,
    ) {
        let accel = Accel::gpu(1).with_backend(BackendKind::Native { threads });
        let exec = accel.exec();
        let mut hits = vec![0u32; lanes];
        let mut closures: Vec<_> = hits
            .iter_mut()
            .map(|h| move || *h += 1)
            .collect();
        let mut bodies: Vec<&mut (dyn FnMut() + Send)> = closures
            .iter_mut()
            .map(|c| c as &mut (dyn FnMut() + Send))
            .collect();
        let per_lane: Vec<(f64, f64)> = vec![(8.0, 64.0); lanes];
        let charged = exec.fused_dispatch(
            "fo.norm",
            &mut bodies,
            &[WaveCharge { name: "fo.norm", per_lane: &per_lane, sparse: false }],
            DEFAULT_STREAM,
        );
        drop(bodies);
        drop(closures);
        prop_assert!(hits.iter().all(|&h| h == 1));
        // Same charge the simulator would have made.
        let sim = Accel::gpu(1);
        let sim_ns = sim.with(|d| d.batched_wave_kernel("fo.norm", &per_lane, DEFAULT_STREAM));
        prop_assert_eq!(charged.to_bits(), sim_ns.to_bits());
        // Real wall-clock landed outside the simulated ledger.
        let wall = accel.wall_metrics();
        prop_assert!(wall.counter("wall.dispatches") >= 1.0);
    }
}
