//! The metric-name glossary and track-label conventions.
//!
//! Every counter/gauge/histogram name used across the workspace is a
//! constant here so the summary table, the docs, and the instrumentation
//! sites cannot drift apart. Names are dotted paths grouped by subsystem:
//! `gpu.*` (device ledger), `lp.*` (simplex engine), `bb.*`
//! (branch-and-bound lifecycle), `cluster.*` (parallel supervisor/workers),
//! `fault.*` (injected chaos) and `recovery.*` (the supervisor's response).

use crate::event::TrackGroup;

// --- GPU device ledger -----------------------------------------------------

/// Host-to-device transfer count.
pub const GPU_H2D_TRANSFERS: &str = "gpu.h2d.transfers";
/// Host-to-device bytes moved.
pub const GPU_H2D_BYTES: &str = "gpu.h2d.bytes";
/// Device-to-host transfer count.
pub const GPU_D2H_TRANSFERS: &str = "gpu.d2h.transfers";
/// Device-to-host bytes moved.
pub const GPU_D2H_BYTES: &str = "gpu.d2h.bytes";
/// Kernel launches (dense and sparse).
pub const GPU_KERNEL_LAUNCHES: &str = "gpu.kernel.launches";
/// Floating-point operations executed by kernels.
pub const GPU_KERNEL_FLOPS: &str = "gpu.kernel.flops";
/// Simulated nanoseconds spent in transfers.
pub const GPU_TRANSFER_NS: &str = "gpu.transfer.ns";
/// Simulated nanoseconds spent in kernels.
pub const GPU_KERNEL_NS: &str = "gpu.kernel.ns";
/// Stream synchronizations (full-device barriers).
pub const GPU_SYNCS: &str = "gpu.syncs";
/// Peak device memory in use, bytes (gauge).
pub const GPU_MEM_PEAK_BYTES: &str = "gpu.mem.peak_bytes";

// --- LP engine -------------------------------------------------------------

/// Simplex iterations (all phases).
pub const LP_ITERATIONS: &str = "lp.simplex.iterations";
/// Basis (re)factorizations.
pub const LP_REFACTORIZATIONS: &str = "lp.factor.refactorizations";
/// Cold solves (two-phase from scratch).
pub const LP_SOLVES: &str = "lp.solves";
/// Warm-started re-solves (dual/primal polish after a bound change).
pub const LP_RESOLVES: &str = "lp.resolves";
/// Iterations per solve (histogram).
pub const LP_ITERATIONS_PER_SOLVE: &str = "lp.simplex.iterations_per_solve";

// --- Branch-and-bound lifecycle --------------------------------------------

/// Nodes created (root + children of every branching).
pub const BB_NODES_CREATED: &str = "bb.nodes.created";
/// Nodes whose relaxation was evaluated.
pub const BB_NODES_EVALUATED: &str = "bb.nodes.evaluated";
/// Nodes pruned by bound.
pub const BB_NODES_PRUNED: &str = "bb.nodes.pruned";
/// Nodes fathomed infeasible.
pub const BB_NODES_INFEASIBLE: &str = "bb.nodes.infeasible";
/// Nodes that produced an integer-feasible relaxation.
pub const BB_NODES_INTEGER_FEASIBLE: &str = "bb.nodes.integer_feasible";
/// Nodes branched (two children each).
pub const BB_NODES_BRANCHED: &str = "bb.nodes.branched";
/// Incumbent improvements (from any source).
pub const BB_INCUMBENTS: &str = "bb.incumbents";
/// Incumbents found by primal heuristics.
pub const BB_HEUR_INCUMBENTS: &str = "bb.heur.incumbents";
/// Cutting planes added to the formulation.
pub const BB_CUTS_ADDED: &str = "bb.cuts.added";
/// Warm-start seed solutions accepted as the initial incumbent (a caller
/// supplied `MipConfig::warm_solution` / `ParallelConfig::seed_solution`
/// that validated feasible on this instance).
pub const BB_WARM_SEEDS: &str = "bb.warm.seeds";

// --- Parallel cluster ------------------------------------------------------

/// Messages crossing the modeled interconnect.
pub const CLUSTER_MESSAGES: &str = "cluster.messages";
/// Bytes crossing the modeled interconnect.
pub const CLUSTER_BYTES: &str = "cluster.bytes";
/// Nodes dispatched to workers.
pub const CLUSTER_NODES_DISPATCHED: &str = "cluster.nodes.dispatched";
/// Work-stealing / load-balance reassignments (node sent to a worker other
/// than the one that created it).
pub const CLUSTER_MIGRATIONS: &str = "cluster.migrations";
/// Checkpoints (stop-the-world snapshots) taken.
pub const CLUSTER_CHECKPOINTS: &str = "cluster.checkpoints";

// --- Hierarchical cluster (supervisor-of-supervisors) ----------------------

/// Sub-supervisor groups in the hierarchy (gauge).
pub const HIER_GROUPS: &str = "hier.groups";
/// Messages crossing the root ↔ sub-supervisor link (summaries, incumbent
/// traffic, steal control, subtree handoffs — *not* intra-group traffic).
pub const HIER_ROOT_MESSAGES: &str = "hier.root.messages";
/// Bytes crossing the root link.
pub const HIER_ROOT_BYTES: &str = "hier.root.bytes";
/// Periodic load summaries received by the root.
pub const HIER_SUMMARIES: &str = "hier.summaries";
/// Incumbent value broadcasts the root fanned out to groups.
pub const HIER_INCUMBENT_BROADCASTS: &str = "hier.incumbent.broadcasts";
/// Steal grants executed (victim shipped at least one subtree).
pub const HIER_STEALS: &str = "hier.steals";
/// Frontier subtrees that changed owner through a steal grant.
pub const HIER_STEAL_SUBTREES: &str = "hier.steal.subtrees";
/// Steal requests the root denied (no viable victim).
pub const HIER_STEAL_DENIED: &str = "hier.steal.denied";
/// Subtree transfers (steals + spread + reassignments) that arrived and
/// re-entered a group's dispatchable frontier.
pub const HIER_TRANSIT_ARRIVALS: &str = "hier.transit.arrivals";
/// Injected sub-supervisor crashes that landed on an alive group.
pub const FAULT_SUB_CRASHES: &str = "fault.sub_crashes";
/// Sub-supervisors brought back after their backoff.
pub const RECOVERY_SUB_RESPAWNS: &str = "recovery.sub_respawns";
/// Subtrees the root shipped off a dead or fully-retired group.
pub const RECOVERY_GROUP_REASSIGNED: &str = "recovery.group_reassigned_subtrees";

/// Span name for a load summary instant on the root lane.
pub const SPAN_HIER_SUMMARY: &str = "hier.summary";
/// Span name for a steal request reaching the root.
pub const SPAN_HIER_STEAL_REQUEST: &str = "hier.steal.request";
/// Span name for a steal grant (victim ships subtrees).
pub const SPAN_HIER_STEAL_GRANT: &str = "hier.steal.grant";
/// Span name for a denied steal request.
pub const SPAN_HIER_STEAL_DENY: &str = "hier.steal.deny";
/// Span name for a subtree handoff arriving at its new group.
pub const SPAN_HIER_HANDOFF: &str = "hier.handoff";
/// Span name for an incumbent broadcast leaving the root.
pub const SPAN_HIER_INCUMBENT: &str = "hier.incumbent.broadcast";
/// Span name for a sub-supervisor crash instant.
pub const SPAN_FAULT_SUB_CRASH: &str = "fault.sub_crash";
/// Span name for a sub-supervisor respawn instant.
pub const SPAN_RECOVERY_SUB_RESPAWN: &str = "recovery.sub_respawn";
/// Span name for the root reassigning a dead group's subtree.
pub const SPAN_RECOVERY_GROUP_REASSIGN: &str = "recovery.group_reassign";

// --- Batched wave evaluator (Sections 4.3, 5.5) ----------------------------

/// Lockstep supersteps executed by the batched wave engine (each superstep
/// advances every active lane by one recorded kernel).
pub const WAVE_SUPERSTEPS: &str = "wave.supersteps";
/// Lanes that finished their node LP and exited the wave mid-flight.
pub const WAVE_RETIRES: &str = "wave.retires";
/// Retired lanes refilled from the best-bound frontier without a barrier.
pub const WAVE_REFILLS: &str = "wave.refills";
/// Wave width actually used after the device-memory auto-sizing
/// (`batch ≈ device_mem / matrix_mem`, gauge).
pub const WAVE_WIDTH: &str = "wave.width";
/// Fused batched kernel launches (one per kernel class per superstep).
pub const WAVE_FUSED_LAUNCHES: &str = "wave.fused_launches";
/// Per-lane kernel operations replayed through fused launches.
pub const WAVE_LANE_OPS: &str = "wave.lane_ops";
/// Bytes of the shared device-resident `[A | I]` matrix (gauge; uploaded
/// once for all lanes — the Section 5.5 memory-for-concurrency trade).
pub const BATCH_MATRIX_BYTES: &str = "batch.matrix.bytes";
/// Warm-basis pool: parent basis already device-resident (no transfer).
pub const BATCH_BASIS_HITS: &str = "batch.basis_pool.hits";
/// Warm-basis pool: basis uploaded (H2D) before a lane could warm-start.
pub const BATCH_BASIS_MISSES: &str = "batch.basis_pool.misses";
/// Warm-basis pool: LRU evictions under the pool's byte budget.
pub const BATCH_BASIS_EVICTIONS: &str = "batch.basis_pool.evictions";
/// Warm-basis pool: bytes spilled to the host (D2H) by LRU eviction.
pub const BATCH_BASIS_SPILL_BYTES: &str = "batch.basis_pool.spill_bytes";

// --- First-order (restarted PDHG) wave engine -------------------------------

/// Lockstep PDHG supersteps (one primal-dual iteration across every active
/// lane, at most one fused launch per `fo.*` kernel class).
pub const FO_SUPERSTEPS: &str = "fo.supersteps";
/// PDHG iterations summed over all lanes (lane-iterations).
pub const FO_ITERATIONS: &str = "fo.iterations";
/// KKT-residual-triggered restarts to the running average.
pub const FO_RESTARTS: &str = "fo.restarts";
/// Lanes that left the wave at a superstep boundary (any outcome).
pub const FO_RETIRES: &str = "fo.retires";
/// Retired lanes refilled from the best-bound frontier without a barrier.
pub const FO_REFILLS: &str = "fo.refills";
/// Lanes retired by KKT convergence (handed to simplex cleanup).
pub const FO_CONVERGED: &str = "fo.converged";
/// Lanes retired early because their safe dual bound fell below the
/// incumbent cutoff — no cleanup needed, the node is pruned.
pub const FO_BOUND_PRUNED: &str = "fo.bound_pruned";
/// Lanes retired by the load-time activity-bound infeasibility check.
pub const FO_INFEASIBLE: &str = "fo.infeasible";
/// Lanes retired at the per-lane iteration cap (cleanup decides the node).
pub const FO_ITER_LIMIT: &str = "fo.iter_limit";
/// Fused batched launches (one per `fo.*` kernel class per superstep).
pub const FO_FUSED_LAUNCHES: &str = "fo.fused_launches";
/// Effective first-order wave width after memory auto-sizing (gauge).
pub const FO_WIDTH: &str = "fo.width";
/// Bytes of the shared device-resident CSR matrix (gauge).
pub const FO_MATRIX_BYTES: &str = "fo.matrix.bytes";
/// Host simplex cleanup solves of converged/capped lanes.
pub const FO_CLEANUPS: &str = "fo.cleanups";
/// Simplex iterations spent inside cleanup solves.
pub const FO_CLEANUP_ITERS: &str = "fo.cleanup.iterations";

// --- Domain propagation (gmip-prop) -----------------------------------------

/// Span name of the fused batched row-activity kernel: per-lane min/max row
/// activities over the shared device-resident CSR matrix (cost ∝ nnz).
pub const PROP_KERNEL_ACTIVITY: &str = "prop.activity";
/// Span name of the fused batched bound-tightening kernel: per-row residual
/// activities turned into candidate variable bounds with integral rounding
/// (cost ∝ nnz).
pub const PROP_KERNEL_TIGHTEN: &str = "prop.tighten";
/// Span name of the fused batched reduction kernel: per-lane min/changed
/// flags over the variable vector deciding fixpoint / infeasibility
/// (cost ∝ n).
pub const PROP_KERNEL_REDUCE: &str = "prop.reduce";
/// Nodes whose box went through at least one propagation round.
pub const PROP_NODES: &str = "prop.nodes";
/// Propagation rounds executed (summed over nodes/lanes; every round is
/// one activity + tighten + reduce kernel trio).
pub const PROP_ROUNDS: &str = "prop.rounds";
/// Strict bound tightenings applied by node propagation.
pub const PROP_TIGHTENINGS: &str = "prop.tightenings";
/// Nodes proven infeasible by propagation before any LP work was spent.
pub const PROP_INFEASIBLE: &str = "prop.nodes_infeasible";

// --- Fix-and-propagate primal heuristic --------------------------------------

/// Fix-and-propagate attempts (one per lane per heuristic wave).
pub const HEUR_ATTEMPTS: &str = "heur.attempts";
/// Incumbents produced by the fix-and-propagate heuristic.
pub const HEUR_INCUMBENTS: &str = "heur.incumbents";
/// Lanes that repaired a failed fixing by taking the opposite rounding.
pub const HEUR_REPAIRS: &str = "heur.repairs";
/// Lanes aborted on integer infeasibility (both roundings propagate to a
/// contradiction, or the final point fails the exact feasibility check).
pub const HEUR_ABORTS: &str = "heur.aborts";
/// Simulated time of the solve's first incumbent, ns (gauge; set once —
/// the time-to-first-incumbent headline of experiment E12).
pub const HEUR_FIRST_INCUMBENT_NS: &str = "heur.first_incumbent_ns";

// --- Executing-backend wall clock (gmip-gpu) --------------------------------
//
// Real host nanoseconds measured around the executing backend's fused lane
// dispatches. The `wall.*` family is deliberately OUTSIDE the determinism
// surface: it never feeds traces, simulated `_ns` totals, or the bench
// regression gate — sim-charged ns remain the only timing oracle.

/// Real wall ns spent in fused `fo.spmv_t` dispatches (native backend).
pub const WALL_FO_SPMV_T: &str = "wall.fo.spmv_t.ns";
/// Real wall ns spent in fused `fo.axpy` dispatches (native backend).
pub const WALL_FO_AXPY: &str = "wall.fo.axpy.ns";
/// Real wall ns spent in fused `fo.spmv` dispatches (native backend).
pub const WALL_FO_SPMV: &str = "wall.fo.spmv.ns";
/// Real wall ns spent in fused `fo.norm` check dispatches (native backend).
pub const WALL_FO_NORM: &str = "wall.fo.norm.ns";
/// Real wall ns spent in fused propagation-round dispatches (one dispatch
/// executes a full activity+tighten+reduce sweep per active lane).
pub const WALL_PROP_ROUND: &str = "wall.prop.round.ns";
/// Real wall ns spent in fused fix-and-propagate dive dispatches.
pub const WALL_HEUR_DIVE: &str = "wall.heur.dive.ns";
/// Real wall ns in fused dispatches with no dedicated class key.
pub const WALL_OTHER: &str = "wall.other.ns";
/// Fused executing dispatches issued (all classes).
pub const WALL_DISPATCHES: &str = "wall.dispatches";
/// Worker threads the executing backend fans lanes across (gauge).
pub const WALL_THREADS: &str = "wall.threads";

// --- Fault injection & recovery (gmip-chaos) -------------------------------

/// Injected worker crashes that landed on an alive rank.
pub const FAULT_CRASHES: &str = "fault.crashes";
/// Messages (assignments or reports) silently dropped on the wire.
pub const FAULT_DROPS: &str = "fault.drops";
/// Messages delayed on the wire beyond the modeled transfer time.
pub const FAULT_DELAYS: &str = "fault.delays";
/// Evaluations slowed by a straggler window.
pub const FAULT_STRAGGLES: &str = "fault.straggles";
/// Lost subproblems returned to the open set and re-dispatched (after a
/// crash was detected or an ack timeout fired).
pub const RECOVERY_REASSIGNMENTS: &str = "recovery.reassignments";
/// Crashed ranks brought back after their exponential backoff.
pub const RECOVERY_RESPAWNS: &str = "recovery.respawns";
/// Ranks permanently retired after exhausting their respawn budget (the
/// cluster degrades to fewer ranks).
pub const RECOVERY_DEGRADED_RANKS: &str = "recovery.degraded_ranks";

// --- Solve service (gmip-serve) --------------------------------------------

/// Jobs submitted to the service (before admission control).
pub const SERVE_JOBS_SUBMITTED: &str = "serve.jobs.submitted";
/// Jobs completed with an answer (cached or solved).
pub const SERVE_JOBS_COMPLETED: &str = "serve.jobs.completed";
/// Jobs shed at admission (queue over the shed threshold).
pub const SERVE_JOBS_SHED: &str = "serve.jobs.shed";
/// Jobs rejected because their tenant was over quota.
pub const SERVE_JOBS_QUOTA_REJECTS: &str = "serve.jobs.quota_rejects";
/// Jobs that failed permanently (retry budget exhausted).
pub const SERVE_JOBS_FAILED: &str = "serve.jobs.failed";
/// Solve attempts retried after an attempt timeout (chaos overlay).
pub const SERVE_RETRIES: &str = "serve.retries";
/// Solution pool: exact-fingerprint hits served straight from the cache.
pub const SERVE_CACHE_EXACT_HITS: &str = "serve.cache.exact_hits";
/// Solution pool: structural hits that warm-started a perturbed re-solve.
pub const SERVE_CACHE_WARM_HITS: &str = "serve.cache.warm_hits";
/// Solution pool: misses (cold solves).
pub const SERVE_CACHE_MISSES: &str = "serve.cache.misses";
/// Solution pool: entries evicted under the capacity bound.
pub const SERVE_CACHE_EVICTIONS: &str = "serve.cache.evictions";
/// End-to-end job latency, simulated ns (histogram).
pub const SERVE_LATENCY_NS: &str = "serve.latency.ns";
/// Time jobs waited in the admission queue, simulated ns (histogram).
pub const SERVE_QUEUE_WAIT_NS: &str = "serve.queue.wait_ns";
/// Solve execution time per attempt, simulated ns (histogram).
pub const SERVE_EXEC_NS: &str = "serve.exec.ns";
/// Peak admission-queue depth (gauge).
pub const SERVE_QUEUE_DEPTH_PEAK: &str = "serve.queue.depth_peak";
/// Completed jobs per simulated second over the run (gauge).
pub const SERVE_GOODPUT_JOBS_PER_S: &str = "serve.goodput.jobs_per_s";

// --- Track labels ----------------------------------------------------------

/// Human-readable name for a track group (the Perfetto "process" label).
pub fn group_label(group: TrackGroup) -> String {
    match group {
        TrackGroup::Host => "host cpu".to_string(),
        TrackGroup::Solver => "solver (branch & bound)".to_string(),
        TrackGroup::Lp => "lp engine".to_string(),
        TrackGroup::Cluster => "cluster".to_string(),
        TrackGroup::Serve => "serve".to_string(),
        TrackGroup::Gpu(i) => format!("gpu {i}"),
    }
}

/// Human-readable name for a lane within a group (the Perfetto "thread"
/// label): GPU lanes are streams, cluster lanes are ranks (rank 0 being the
/// supervisor), single-lane groups collapse to a fixed label.
pub fn lane_label(group: TrackGroup, lane: u32) -> String {
    match group {
        TrackGroup::Gpu(_) => format!("stream {lane}"),
        TrackGroup::Cluster if lane == 0 => "supervisor".to_string(),
        TrackGroup::Cluster => format!("rank {lane}"),
        TrackGroup::Serve if lane == 0 => "reactor".to_string(),
        TrackGroup::Serve => format!("lease {lane}"),
        TrackGroup::Host => "cpu".to_string(),
        TrackGroup::Solver => "nodes".to_string(),
        TrackGroup::Lp => "simplex".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hier_names_stay_in_their_namespaces() {
        // Metric constants keep the dotted-path convention: steal/traffic
        // counters under `hier.*`, faults and recovery under the shared
        // `fault.*` / `recovery.*` namespaces the summary table groups by.
        for name in [
            HIER_GROUPS,
            HIER_ROOT_MESSAGES,
            HIER_ROOT_BYTES,
            HIER_SUMMARIES,
            HIER_INCUMBENT_BROADCASTS,
            HIER_STEALS,
            HIER_STEAL_SUBTREES,
            HIER_STEAL_DENIED,
            HIER_TRANSIT_ARRIVALS,
        ] {
            assert!(name.starts_with("hier."), "{name}");
        }
        assert!(FAULT_SUB_CRASHES.starts_with("fault."));
        assert!(RECOVERY_SUB_RESPAWNS.starts_with("recovery."));
        assert!(RECOVERY_GROUP_REASSIGNED.starts_with("recovery."));
    }

    #[test]
    fn fo_names_stay_in_their_namespace() {
        for name in [
            FO_SUPERSTEPS,
            FO_ITERATIONS,
            FO_RESTARTS,
            FO_RETIRES,
            FO_REFILLS,
            FO_CONVERGED,
            FO_BOUND_PRUNED,
            FO_INFEASIBLE,
            FO_ITER_LIMIT,
            FO_FUSED_LAUNCHES,
            FO_WIDTH,
            FO_MATRIX_BYTES,
            FO_CLEANUPS,
            FO_CLEANUP_ITERS,
        ] {
            assert!(name.starts_with("fo."), "{name}");
        }
    }

    #[test]
    fn prop_and_heur_names_stay_in_their_namespaces() {
        for name in [
            PROP_KERNEL_ACTIVITY,
            PROP_KERNEL_TIGHTEN,
            PROP_KERNEL_REDUCE,
            PROP_NODES,
            PROP_ROUNDS,
            PROP_TIGHTENINGS,
            PROP_INFEASIBLE,
        ] {
            assert!(name.starts_with("prop."), "{name}");
        }
        for name in [
            HEUR_ATTEMPTS,
            HEUR_INCUMBENTS,
            HEUR_REPAIRS,
            HEUR_ABORTS,
            HEUR_FIRST_INCUMBENT_NS,
        ] {
            assert!(name.starts_with("heur."), "{name}");
        }
        // The report table's time-to-first-incumbent column reads this
        // exact key out of the merged registry.
        assert_eq!(HEUR_FIRST_INCUMBENT_NS, "heur.first_incumbent_ns");
    }

    #[test]
    fn wall_names_stay_in_their_namespace() {
        // Everything measured by the executing backend lives under
        // `wall.*` so determinism-sensitive consumers (trace diffs, the
        // bench gate) can exclude the whole family with one prefix check.
        for name in [
            WALL_FO_SPMV_T,
            WALL_FO_AXPY,
            WALL_FO_SPMV,
            WALL_FO_NORM,
            WALL_PROP_ROUND,
            WALL_HEUR_DIVE,
            WALL_OTHER,
            WALL_DISPATCHES,
            WALL_THREADS,
        ] {
            assert!(name.starts_with("wall."), "{name}");
        }
        // Conversely no wall key may end in the `_ns` suffix the bench
        // gate treats as simulated time.
        for name in [WALL_FO_SPMV_T, WALL_PROP_ROUND, WALL_HEUR_DIVE] {
            assert!(!name.ends_with("_ns"), "{name}");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(group_label(TrackGroup::Gpu(2)), "gpu 2");
        assert_eq!(lane_label(TrackGroup::Gpu(2), 1), "stream 1");
        assert_eq!(lane_label(TrackGroup::Cluster, 0), "supervisor");
        assert_eq!(lane_label(TrackGroup::Cluster, 3), "rank 3");
        assert_eq!(lane_label(TrackGroup::Lp, 0), "simplex");
    }
}
