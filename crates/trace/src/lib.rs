//! Logical-time observability for the gmip simulator.
//!
//! The simulator's interesting clock is not the wall clock: every subsystem
//! (the GPU device model, the LP engine, the branch-and-bound driver, the
//! DES cluster) advances a *simulated* nanosecond timeline derived from the
//! paper's cost models. This crate records what happened on those timelines
//! and exports it in two forms:
//!
//! * a **span/event stream** ([`recorder`]) timestamped in simulated
//!   nanoseconds (wall time is captured alongside for cross-checking but is
//!   excluded from exports so traces stay bit-deterministic), rendered as
//!   Chrome trace-event JSON ([`export::chrome_trace_json`]) where GPU
//!   streams, cluster ranks, and solver phases appear as parallel tracks in
//!   Perfetto / `chrome://tracing`;
//! * a **metrics registry** ([`metrics::MetricsRegistry`]) of counters,
//!   gauges, and histograms (kernel launches, transfer bytes, simplex
//!   iterations, node lifecycle counts, cluster message volume) rendered as
//!   a human-readable summary table ([`export::summary`]).
//!
//! Recording is globally gated: when no [`TraceSession`] is active the
//! per-call cost is one relaxed atomic load, and event construction is
//! deferred behind a closure so argument formatting is never paid for.
//!
//! ```
//! use gmip_trace::{Event, Track, TraceSession, record};
//!
//! let session = TraceSession::start();
//! record(|| Event::complete(Track::gpu_stream(0, 0), "gemm", 100.0, 50.0).arg("flops", 4096u64));
//! let trace = session.finish();
//! assert_eq!(trace.events.len(), 1);
//! assert!(trace.to_chrome_json().contains("\"gemm\""));
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metrics;
pub mod names;
pub mod recorder;

pub use event::{ArgValue, Event, EventKind, TraceEvent, Track, TrackGroup};
pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{enabled, record, Trace, TraceSession};
