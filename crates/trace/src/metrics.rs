//! A mergeable registry of counters, gauges, and histograms.
//!
//! Components own their registries (the GPU device ledger, the solver, each
//! cluster worker) and the session aggregates them with
//! [`MetricsRegistry::merge`]. Keys are `&'static str` drawn from the
//! glossary in [`crate::names`]; storage is `BTreeMap` so every iteration
//! order — and therefore every export — is deterministic.

use std::collections::BTreeMap;

/// Log-bucketed distribution summary.
///
/// Values are binned by magnitude (one bucket per power of two, 64 buckets)
/// which is plenty for the quantities tracked here — iteration counts per
/// node, bytes per message, span lengths — where order of magnitude is what
/// matters. Quantiles are read from the bucket upper edges.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observation (`f64::NEG_INFINITY` when empty).
    pub max: f64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; 64],
        }
    }

    /// Bucket index for a value: 0 for v ≤ 1, else ⌈log2 v⌉ clamped to 63.
    fn bucket(v: f64) -> usize {
        if v <= 1.0 {
            return 0;
        }
        (v.log2().ceil() as usize).min(63)
    }

    /// Upper edge of bucket `i` (`2^i`).
    fn edge(i: usize) -> f64 {
        (i as f64).exp2()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket(v)] += 1;
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper edge of the bucket
    /// containing the q-th observation. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

/// A deterministic registry of named counters, gauges, and histograms.
///
/// * **Counters** accumulate (`incr`) and add under [`merge`](Self::merge).
/// * **Gauges** hold a last-written value (`set_gauge`) and take the max
///   under merge (the natural combination for "frontier" quantities like
///   simulated elapsed time or peak memory).
/// * **Histograms** record distributions (`observe`) and concatenate under
///   merge.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, f64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to counter `name` (creating it at zero).
    pub fn incr(&mut self, name: &'static str, by: f64) {
        *self.counters.entry(name).or_insert(0.0) += by;
    }

    /// Reads counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Sets gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Raises gauge `name` to `value` if larger (no-op otherwise).
    pub fn max_gauge(&mut self, name: &'static str, value: f64) {
        let g = self.gauges.entry(name).or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Reads gauge `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Records `value` into histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().observe(value);
    }

    /// Reads histogram `name`, if it exists.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(k, v)| (*k, *v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(k, v)| (*k, v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the max,
    /// histograms concatenate.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k).or_insert(0.0) += v;
        }
        for (k, v) in &other.gauges {
            self.max_gauge(k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k).or_default().merge(h);
        }
    }

    /// Clears all series.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_merge_adds() {
        let mut a = MetricsRegistry::new();
        a.incr("x", 2.0);
        a.incr("x", 3.0);
        a.incr("y", 1.0);
        let mut b = MetricsRegistry::new();
        b.incr("x", 10.0);
        a.merge(&b);
        assert_eq!(a.counter("x"), 15.0);
        assert_eq!(a.counter("y"), 1.0);
        assert_eq!(a.counter("absent"), 0.0);
    }

    #[test]
    fn gauges_merge_by_max() {
        let mut a = MetricsRegistry::new();
        a.set_gauge("t", 5.0);
        let mut b = MetricsRegistry::new();
        b.set_gauge("t", 3.0);
        b.set_gauge("u", 7.0);
        a.merge(&b);
        assert_eq!(a.gauge("t"), 5.0);
        assert_eq!(a.gauge("u"), 7.0);
    }

    #[test]
    fn histogram_stats_and_quantiles() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 4.0, 8.0, 1024.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 1024.0);
        assert!((h.mean() - 1039.0 / 5.0).abs() < 1e-12);
        // Median lands in the bucket holding 4.0.
        assert_eq!(h.quantile(0.5), 4.0);
        assert_eq!(h.quantile(1.0), 1024.0);
    }

    #[test]
    fn histogram_merge_concatenates() {
        let mut reg_a = MetricsRegistry::new();
        let mut reg_b = MetricsRegistry::new();
        for v in [1.0, 2.0] {
            reg_a.observe("h", v);
        }
        for v in [100.0, 200.0] {
            reg_b.observe("h", v);
        }
        reg_a.merge(&reg_b);
        let h = reg_a.histogram("h").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 303.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 200.0);
    }

    #[test]
    fn iteration_order_is_sorted_by_name() {
        let mut r = MetricsRegistry::new();
        r.incr("z.last", 1.0);
        r.incr("a.first", 1.0);
        r.incr("m.mid", 1.0);
        let names: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }
}
