//! Exporters: Chrome trace-event JSON and the human-readable summary table.
//!
//! The JSON targets the Chrome trace-event format's stable subset —
//! complete (`ph:"X"`) and instant (`ph:"i"`) events plus `"M"` metadata
//! records naming processes and threads — which both `chrome://tracing` and
//! Perfetto's UI load directly. Timestamps are simulated microseconds (the
//! format's native unit); wall-clock capture times are deliberately not
//! serialized so identical runs export identical bytes.
//!
//! Serialization is hand-rolled: the shape is tiny and fixed, and keeping
//! this crate dependency-free matters more than a serde integration.

use crate::event::{ArgValue, EventKind, TraceEvent};
use crate::metrics::MetricsRegistry;
use crate::names;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes not included).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an f64 as a JSON number (finite guaranteed by callers clamping;
/// non-finite degrades to 0 rather than emitting invalid JSON).
fn json_num(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

fn write_args(args: &[(&'static str, ArgValue)], out: &mut String) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\":");
        match v {
            ArgValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            ArgValue::F64(x) => json_num(*x, out),
            ArgValue::Str(s) => {
                out.push('"');
                escape_json(s, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

/// Serializes an event stream as Chrome trace-event JSON.
///
/// Callers normally reach this through
/// [`Trace::to_chrome_json`](crate::recorder::Trace::to_chrome_json), which
/// hands in the deterministically sorted stream.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        } else {
            out.push('\n');
        }
    };

    // Metadata: name every (group, lane) pair that appears in the stream so
    // Perfetto shows "gpu 0 / stream 1" instead of bare pid/tid numbers.
    let mut groups = BTreeSet::new();
    let mut tracks = BTreeSet::new();
    for e in events {
        groups.insert(e.event.track.group);
        tracks.insert(e.event.track);
    }
    for g in &groups {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"",
            g.pid()
        );
        escape_json(&names::group_label(*g), &mut out);
        out.push_str("\"}}");
    }
    for t in &tracks {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\"args\":{{\"name\":\"",
            t.group.pid(),
            t.lane
        );
        escape_json(&names::lane_label(t.group, t.lane), &mut out);
        out.push_str("\"}}");
    }

    for e in events {
        sep(&mut out);
        out.push_str("{\"name\":\"");
        escape_json(e.event.name, &mut out);
        let _ = write!(
            out,
            "\",\"pid\":{},\"tid\":{},\"ts\":",
            e.event.track.group.pid(),
            e.event.track.lane
        );
        json_num(e.event.ts_ns / 1_000.0, &mut out);
        match e.event.kind {
            EventKind::Complete { dur_ns } => {
                out.push_str(",\"ph\":\"X\",\"dur\":");
                json_num(dur_ns / 1_000.0, &mut out);
            }
            EventKind::Instant => {
                // Thread-scoped instant marker.
                out.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
        }
        if !e.event.args.is_empty() {
            out.push_str(",\"args\":");
            write_args(&e.event.args, &mut out);
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Renders the registry as an aligned, human-readable summary table:
/// counters, then gauges, then histogram digests, each in name order.
pub fn summary(registry: &MetricsRegistry) -> String {
    fn fmt_value(v: f64) -> String {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{}", v as i64)
        } else {
            format!("{v:.3}")
        }
    }

    let mut rows: Vec<(String, String)> = Vec::new();
    for (name, v) in registry.counters() {
        rows.push((name.to_string(), fmt_value(v)));
    }
    for (name, v) in registry.gauges() {
        rows.push((format!("{name} (gauge)"), fmt_value(v)));
    }
    for (name, h) in registry.histograms() {
        rows.push((
            format!("{name} (hist)"),
            format!(
                "n={} mean={} p50={} max={}",
                h.count,
                fmt_value(h.mean()),
                fmt_value(h.quantile(0.5)),
                fmt_value(if h.count == 0 { 0.0 } else { h.max }),
            ),
        ));
    }

    if rows.is_empty() {
        return "  (no metrics recorded)\n".to_string();
    }
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in rows {
        let _ = writeln!(out, "  {name:<width$}  {value}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TraceEvent, Track};

    fn ev(e: Event) -> TraceEvent {
        TraceEvent {
            event: e,
            seq: 0,
            wall_ns: 42,
        }
    }

    #[test]
    fn chrome_json_has_metadata_and_events() {
        let events = vec![
            ev(
                Event::complete(Track::gpu_stream(0, 1), "gemm", 2_000.0, 500.0)
                    .arg("flops", 64u64),
            ),
            ev(Event::instant(Track::solver(), "incumbent", 3_000.0).arg("obj", 1.5)),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"gpu 0\""));
        assert!(json.contains("\"stream 1\""));
        assert!(json.contains("\"gemm\""));
        // ns → µs conversion.
        assert!(json.contains("\"ts\":2"));
        assert!(json.contains("\"dur\":0.5"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"obj\":1.5"));
        // Wall time must not leak into the export.
        assert!(!json.contains("42"));
    }

    #[test]
    fn escaping_handles_specials() {
        let mut s = String::new();
        escape_json("a\"b\\c\nd", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn summary_aligns_and_orders() {
        let mut r = MetricsRegistry::new();
        r.incr("gpu.h2d.bytes", 4096.0);
        r.incr("bb.nodes.evaluated", 7.0);
        r.set_gauge("gpu.mem.peak_bytes", 123.0);
        r.observe("lp.iters", 10.0);
        let s = summary(&r);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bb.nodes.evaluated"));
        assert!(lines[1].contains("gpu.h2d.bytes"));
        assert!(lines[1].ends_with("4096"));
        assert!(lines[2].contains("(gauge)"));
        assert!(lines[3].contains("n=1"));
        assert_eq!(
            summary(&MetricsRegistry::new()),
            "  (no metrics recorded)\n"
        );
    }
}
