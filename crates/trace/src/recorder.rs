//! The global span recorder: thread-local ring buffers behind one atomic.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** Every instrumentation site calls
//!    [`record`] with a closure; the only work done while no session is
//!    active is a relaxed [`AtomicBool`] load — the event (and any argument
//!    formatting) is never constructed.
//! 2. **No cross-thread contention when enabled.** Events land in a
//!    thread-local buffer and are flushed into the global collector only
//!    when the buffer fills or the thread exits (cluster worker threads are
//!    joined before a session finishes, so nothing is lost).
//! 3. **Deterministic output.** [`TraceSession::finish`] sorts the stream
//!    by (track, simulated time, per-thread sequence). Since each track is
//!    written by exactly one thread, two runs with identical seeds produce
//!    byte-identical exported traces regardless of thread scheduling.
//!
//! Sessions are serialized through a process-wide gate so concurrently
//! running tests that each open a session cannot interleave their events.

use crate::event::{Event, TraceEvent};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Thread-local buffer capacity before a flush into the global collector.
const FLUSH_AT: usize = 4096;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped at every session start so stale thread-local buffers from a
/// previous session self-invalidate instead of leaking into the next one.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static COLLECTOR: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
/// Held (as a guard inside [`TraceSession`]) for the session's lifetime.
static SESSION_GATE: Mutex<()> = Mutex::new(());

fn wall_epoch() -> Instant {
    static T0: OnceLock<Instant> = OnceLock::new();
    *T0.get_or_init(Instant::now)
}

struct LocalBuf {
    epoch: u64,
    seq: u64,
    buf: Vec<TraceEvent>,
}

impl LocalBuf {
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let mut collector = COLLECTOR.lock().unwrap_or_else(PoisonError::into_inner);
        collector.append(&mut self.buf);
    }
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // A worker thread exiting mid-session hands its events over; if the
        // session already ended (recording disabled) the events are from a
        // dead epoch and are discarded by `finish`'s epoch filter.
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = const {
        RefCell::new(LocalBuf { epoch: 0, seq: 0, buf: Vec::new() })
    };
}

/// Whether a trace session is currently recording.
///
/// Instrumentation that must do preparatory work before building an event
/// (e.g. snapshot a clock *before* an operation) should gate on this.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records the event built by `build` — if a session is active.
///
/// The closure is not invoked when recording is disabled, so argument
/// construction costs nothing on the common path.
#[inline]
pub fn record(build: impl FnOnce() -> Event) {
    if !enabled() {
        return;
    }
    let epoch = EPOCH.load(Ordering::Acquire);
    let wall_ns = wall_epoch().elapsed().as_nanos() as u64;
    LOCAL.with(|cell| {
        let mut local = cell.borrow_mut();
        if local.epoch != epoch {
            // Stale events from a previous session: drop them.
            local.buf.clear();
            local.epoch = epoch;
            local.seq = 0;
        }
        let seq = local.seq;
        local.seq += 1;
        local.buf.push(TraceEvent {
            event: build(),
            seq,
            wall_ns,
        });
        if local.buf.len() >= FLUSH_AT {
            local.flush();
        }
    });
}

/// The finished, deterministically ordered event stream of one session.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events sorted by (track, simulated timestamp, per-thread sequence).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the stream as Chrome trace-event JSON (see [`crate::export`]).
    pub fn to_chrome_json(&self) -> String {
        crate::export::chrome_trace_json(&self.events)
    }
}

/// An exclusive recording session. Starting one enables the global
/// recorder; [`finish`](TraceSession::finish) disables it and returns the
/// ordered stream. Only one session exists at a time (a second `start`
/// blocks until the first finishes).
#[derive(Debug)]
pub struct TraceSession {
    _gate: MutexGuard<'static, ()>,
    finished: bool,
}

impl TraceSession {
    /// Opens a session: clears the collector and enables recording.
    pub fn start() -> Self {
        let gate = SESSION_GATE.lock().unwrap_or_else(PoisonError::into_inner);
        COLLECTOR
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        EPOCH.fetch_add(1, Ordering::Release);
        ENABLED.store(true, Ordering::Release);
        TraceSession {
            _gate: gate,
            finished: false,
        }
    }

    /// Stops recording and returns the deterministic event stream.
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        ENABLED.store(false, Ordering::Release);
        // Flush the finishing thread's buffer; other threads that recorded
        // events are expected to have exited (and flushed via Drop) by now.
        // Stale buffers from earlier sessions cleared themselves on their
        // first write of this epoch, and the collector was cleared at start.
        LOCAL.with(|cell| cell.borrow_mut().flush());
        let mut events =
            std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(PoisonError::into_inner));
        events.sort_by_key(TraceEvent::sort_key);
        Trace { events }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            ENABLED.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Track;

    #[test]
    fn disabled_recorder_drops_events() {
        // No session: the closure must not even run.
        let mut ran = false;
        record(|| {
            ran = true;
            Event::instant(Track::solver(), "x", 0.0)
        });
        assert!(!ran);
    }

    #[test]
    fn session_collects_and_sorts() {
        let session = TraceSession::start();
        record(|| Event::instant(Track::solver(), "b", 20.0));
        record(|| Event::instant(Track::solver(), "a", 10.0));
        record(|| Event::complete(Track::gpu_stream(0, 0), "k", 0.0, 5.0));
        let trace = session.finish();
        assert_eq!(trace.len(), 3);
        // Solver (pid 2) precedes GPU (pid 16); within a track, time order.
        assert_eq!(trace.events[0].event.name, "a");
        assert_eq!(trace.events[1].event.name, "b");
        assert_eq!(trace.events[2].event.name, "k");
        // Recording stops at finish.
        record(|| Event::instant(Track::solver(), "late", 0.0));
        let session = TraceSession::start();
        let trace = session.finish();
        assert!(trace.is_empty());
    }

    #[test]
    fn worker_thread_events_survive_join() {
        let session = TraceSession::start();
        let handle = std::thread::spawn(|| {
            for i in 0..10 {
                record(|| Event::instant(Track::cluster_rank(1), "tick", f64::from(i)));
            }
        });
        handle.join().unwrap();
        let trace = session.finish();
        assert_eq!(trace.len(), 10);
        // Per-thread seq keeps equal-track events in emission order.
        for (i, e) in trace.events.iter().enumerate() {
            assert_eq!(e.event.ts_ns, i as f64);
        }
    }
}
