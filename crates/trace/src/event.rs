//! Trace events and the track taxonomy they land on.
//!
//! A [`Track`] is one horizontal lane in the exported timeline view. Tracks
//! are grouped into [`TrackGroup`]s that map to Perfetto "processes": each
//! simulated GPU is a group whose lanes are its hardware streams, the
//! cluster is a group whose lanes are worker ranks, and the host-side
//! subsystems (B&B driver, LP engine) get a group each.

/// The coarse grouping of tracks — exported as a Perfetto "process".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackGroup {
    /// The host CPU executor (CPU cost-model device).
    Host,
    /// The branch-and-bound driver: node lifecycle, cuts, heuristics.
    Solver,
    /// The LP engine: simplex phases, factorizations.
    Lp,
    /// A simulated GPU, identified by device tag; lanes are streams.
    Gpu(u16),
    /// The parallel cluster; lanes are worker ranks (lane 0 = supervisor).
    Cluster,
    /// The solve service front-end; lane 0 is the admission/reactor loop,
    /// lanes 1.. are rank-lease executors.
    Serve,
}

impl TrackGroup {
    /// Stable "process id" used in the Chrome trace export and in sorting.
    pub fn pid(self) -> u32 {
        match self {
            TrackGroup::Host => 1,
            TrackGroup::Solver => 2,
            TrackGroup::Lp => 3,
            TrackGroup::Cluster => 4,
            TrackGroup::Serve => 5,
            TrackGroup::Gpu(i) => 16 + u32::from(i),
        }
    }
}

/// One timeline lane: a group plus a lane index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Which group (Perfetto process) the lane belongs to.
    pub group: TrackGroup,
    /// Lane index within the group (stream id, worker rank, ...).
    pub lane: u32,
}

impl Track {
    /// Stream `stream` of GPU `device`.
    pub fn gpu_stream(device: u16, stream: u32) -> Self {
        Track {
            group: TrackGroup::Gpu(device),
            lane: stream,
        }
    }

    /// The host CPU executor's single lane.
    pub fn host() -> Self {
        Track {
            group: TrackGroup::Host,
            lane: 0,
        }
    }

    /// The branch-and-bound driver's main lane.
    pub fn solver() -> Self {
        Track {
            group: TrackGroup::Solver,
            lane: 0,
        }
    }

    /// The LP engine's lane.
    pub fn lp() -> Self {
        Track {
            group: TrackGroup::Lp,
            lane: 0,
        }
    }

    /// Worker rank `rank` of the cluster (rank 0 is the supervisor).
    pub fn cluster_rank(rank: u32) -> Self {
        Track {
            group: TrackGroup::Cluster,
            lane: rank,
        }
    }

    /// Lane `lane` of the solve service (lane 0 is the reactor, lanes 1..
    /// are rank-lease executors).
    pub fn serve(lane: u32) -> Self {
        Track {
            group: TrackGroup::Serve,
            lane,
        }
    }
}

/// A typed event argument (exported into the Chrome `args` object).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer payload (bytes, counts, ids).
    U64(u64),
    /// Signed integer payload.
    I64(i64),
    /// Floating payload (objective values, ratios).
    F64(f64),
    /// Static string payload (outcome labels, kernel variants).
    Str(&'static str),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}
impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}
impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}
impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}
impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}
impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(v)
    }
}

/// What shape of event this is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A span with a duration (Chrome `ph:"X"`).
    Complete {
        /// Span length in simulated nanoseconds.
        dur_ns: f64,
    },
    /// A point-in-time marker (Chrome `ph:"i"`).
    Instant,
}

/// An event as constructed at the instrumentation site (no bookkeeping yet).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The lane the event belongs to.
    pub track: Track,
    /// Event name; static so the hot path never allocates for it.
    pub name: &'static str,
    /// Span or instant.
    pub kind: EventKind,
    /// Start time in simulated nanoseconds.
    pub ts_ns: f64,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgValue)>,
}

impl Event {
    /// A span covering `[ts_ns, ts_ns + dur_ns)` on `track`.
    pub fn complete(track: Track, name: &'static str, ts_ns: f64, dur_ns: f64) -> Self {
        Event {
            track,
            name,
            kind: EventKind::Complete { dur_ns },
            ts_ns,
            args: Vec::new(),
        }
    }

    /// An instantaneous marker at `ts_ns` on `track`.
    pub fn instant(track: Track, name: &'static str, ts_ns: f64) -> Self {
        Event {
            track,
            name,
            kind: EventKind::Instant,
            ts_ns,
            args: Vec::new(),
        }
    }

    /// Attaches an argument (builder style).
    pub fn arg(mut self, key: &'static str, value: impl Into<ArgValue>) -> Self {
        self.args.push((key, value.into()));
        self
    }
}

/// A recorded event: an [`Event`] plus recorder bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// The event as constructed at the instrumentation site.
    pub event: Event,
    /// Per-thread monotonic sequence number; tie-breaks identical
    /// timestamps so the exported order is deterministic (each track is
    /// written by exactly one thread).
    pub seq: u64,
    /// Wall-clock nanoseconds since the process trace epoch. Captured for
    /// cross-checking simulated against real time; never exported, so the
    /// exported stream stays bit-deterministic.
    pub wall_ns: u64,
}

impl TraceEvent {
    /// Sort key giving the deterministic export order: track, then
    /// simulated time, then per-thread sequence.
    pub fn sort_key(&self) -> (u32, u32, u64, u64) {
        (
            self.event.track.group.pid(),
            self.event.track.lane,
            // total_cmp-compatible ordering for non-negative finite floats.
            self.event.ts_ns.max(0.0).to_bits(),
            self.seq,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_attaches_args() {
        let e = Event::complete(Track::gpu_stream(0, 1), "gemm", 5.0, 2.0)
            .arg("flops", 100u64)
            .arg("variant", "dense");
        assert_eq!(e.args.len(), 2);
        assert_eq!(e.args[1].1, ArgValue::Str("dense"));
        assert_eq!(e.kind, EventKind::Complete { dur_ns: 2.0 });
    }

    #[test]
    fn pids_are_distinct_across_groups() {
        let groups = [
            TrackGroup::Host,
            TrackGroup::Solver,
            TrackGroup::Lp,
            TrackGroup::Cluster,
            TrackGroup::Serve,
            TrackGroup::Gpu(0),
            TrackGroup::Gpu(3),
        ];
        let mut pids: Vec<u32> = groups.iter().map(|g| g.pid()).collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids.len(), groups.len());
    }

    #[test]
    fn sort_key_orders_by_track_then_time() {
        let mk = |track, ts, seq| TraceEvent {
            event: Event::instant(track, "x", ts),
            seq,
            wall_ns: 0,
        };
        let a = mk(Track::solver(), 10.0, 0);
        let b = mk(Track::solver(), 5.0, 1);
        let c = mk(Track::cluster_rank(1), 0.0, 2);
        assert!(b.sort_key() < a.sort_key());
        // Solver pid (2) sorts before cluster pid (4).
        assert!(a.sort_key() < c.sort_key());
    }
}
