//! # gmip-prop
//!
//! GPU domain propagation and the batched fix-and-propagate primal
//! heuristic — the two remaining "recast B&B work as wide, regular device
//! kernels" items of the reproduction's roadmap.
//!
//! **Propagation.** Iterated activity-based bound tightening is a pure
//! nnz-proportional sparse kernel (Sofranac et al., "Accelerating Domain
//! Propagation over Sparse Matrices"): per row, min/max activities under
//! the current box; per coefficient, a residual-activity candidate bound
//! with integral rounding; per round, a reduction deciding fixpoint or
//! infeasibility. [`Propagator::propagate`] runs that loop to fixpoint on
//! the host (the exact, deterministic reference), and [`charge_wave`]
//! charges the matching fused batched launches — `prop.activity` /
//! `prop.tighten` / `prop.reduce`, one trio per lockstep round across
//! every lane of a wave superstep — against the shared device-resident
//! CSR matrix, exactly like the `wave.*` / `fo.*` kernel classes.
//!
//! **Soundness.** Every tightening is the classic optimality-preserving
//! activity argument (the same formulas as gmip-core's root presolve):
//! a candidate bound is only applied when *every* feasible point of the
//! node's box satisfies it, so no integer-feasible point — in particular
//! no optimum — is ever cut off. Integral rounding uses floor/ceil with a
//! 1e-9 tolerance so a bound sitting exactly on an integer is never
//! rounded past it. Bounds are monotone non-widening; the loop terminates
//! on the first zero-tightening round.
//!
//! **Fix-and-propagate.** The diving heuristic of Çördük et al.
//! ("GPU-Accelerated Primal Heuristics for MIP") evaluated lane-parallel:
//! round the most fractional LP value, fix it, propagate; on a
//! contradiction repair with the opposite rounding; abort when both
//! roundings fail. Every surviving candidate is re-checked against the
//! instance (`is_integer_feasible`) before it is ever offered as an
//! incumbent — the heuristic can only ever *add* feasible points.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use gmip_gpu::{Accel, LaneBody, DEFAULT_STREAM};
use gmip_lp::BoundChange;
use gmip_problems::{MipInstance, Sense};
use gmip_trace::names;

/// Numeric tolerance of the activity arithmetic (matches root presolve).
const TOL: f64 = 1e-9;

/// Configuration of node propagation.
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Maximum propagation rounds per node (each round is one
    /// activity + tighten + reduce kernel trio).
    pub max_rounds: usize,
}

impl Default for PropConfig {
    fn default() -> Self {
        Self { max_rounds: 8 }
    }
}

/// Outcome of one propagation-to-fixpoint call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropOutcome {
    /// The box propagated to a contradiction: the node is infeasible and
    /// no LP work needs to be spent on it.
    pub infeasible: bool,
    /// Rounds executed, including the final zero-tightening round that
    /// proves the fixpoint (the device has to run it to observe "no
    /// change").
    pub rounds: usize,
    /// Strict bound tightenings applied.
    pub tightenings: usize,
}

/// Outcome of one fix-and-propagate dive.
#[derive(Debug, Clone)]
pub struct FixPropOutcome {
    /// A feasible `(source-sense objective, point)` candidate, re-checked
    /// with [`MipInstance::is_integer_feasible`] — `None` when the dive
    /// aborted.
    pub candidate: Option<(f64, Vec<f64>)>,
    /// Total propagation rounds spent across all fixings (device-charge
    /// input).
    pub rounds: usize,
    /// Fixings repaired by taking the opposite rounding.
    pub repairs: usize,
    /// The dive hit an integer infeasibility (both roundings propagate to
    /// a contradiction) or the final point failed the exact feasibility
    /// re-check.
    pub aborted: bool,
}

/// What one [`Propagator::propagate_round`] sweep concluded for a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RoundStep {
    /// The sweep hit a contradiction; the lane's box is infeasible.
    Infeasible,
    /// A zero-tightening sweep: the lane reached its fixpoint.
    Fixpoint,
    /// At least one bound moved; the lane stays in the next round.
    Tightened,
}

/// Per-lane mutable state of one lockstep wave round.
#[derive(Debug)]
struct RoundCell<'a> {
    idx: usize,
    bx: &'a mut (Vec<f64>, Vec<f64>),
    out: &'a mut PropOutcome,
    step: RoundStep,
}

/// One lane's starting point for a [`Propagator::dive_wave`] dispatch.
#[derive(Debug, Clone, Copy)]
pub struct DiveSeed<'a> {
    /// The fractional point to round from (typically the node LP relaxation
    /// solution).
    pub x0: &'a [f64],
    /// The lane's lower bounds.
    pub lb0: &'a [f64],
    /// The lane's upper bounds.
    pub ub0: &'a [f64],
}

/// Activity-based bound propagation over an instance's rows, reusable
/// across every node of a search (the matrix is immutable; only the box
/// changes per node).
#[derive(Debug, Clone)]
pub struct Propagator {
    instance: MipInstance,
    integral: Vec<bool>,
    nnz: usize,
}

impl Propagator {
    /// Builds a propagator over `instance`'s constraint rows.
    pub fn new(instance: &MipInstance) -> Self {
        let integral = instance.vars.iter().map(|v| v.ty.is_integral()).collect();
        let nnz = instance.cons.iter().map(|c| c.coeffs.len()).sum();
        Self {
            instance: instance.clone(),
            integral,
            nnz,
        }
    }

    /// Structural nonzeros of the constraint matrix (device-charge input).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.instance.num_vars()
    }

    /// The node's box: instance bounds overridden by the node's cumulative
    /// bound changes.
    pub fn node_box(&self, bounds: &[BoundChange]) -> (Vec<f64>, Vec<f64>) {
        let mut lb: Vec<f64> = self.instance.vars.iter().map(|v| v.lb).collect();
        let mut ub: Vec<f64> = self.instance.vars.iter().map(|v| v.ub).collect();
        for bc in bounds {
            lb[bc.var] = bc.lb;
            ub[bc.var] = bc.ub;
        }
        (lb, ub)
    }

    /// Renders a (tightened) box as a cumulative bound-change list against
    /// the instance box — the payload shape every LP backend already
    /// accepts via `apply_node_bounds`.
    pub fn bound_changes(&self, lb: &[f64], ub: &[f64]) -> Vec<BoundChange> {
        let mut out = Vec::new();
        for (j, v) in self.instance.vars.iter().enumerate() {
            if lb[j] != v.lb || ub[j] != v.ub {
                out.push(BoundChange {
                    var: j,
                    lb: lb[j],
                    ub: ub[j],
                });
            }
        }
        out
    }

    /// Iterated activity-based bound propagation of `lb`/`ub` to fixpoint
    /// (or `max_rounds`). Bounds only ever tighten — monotone
    /// non-widening — and integral bounds are rounded inward with a 1e-9
    /// tolerance, so every reduction is optimality-preserving.
    pub fn propagate(&self, lb: &mut [f64], ub: &mut [f64], max_rounds: usize) -> PropOutcome {
        let mut rounds = 0usize;
        let mut tightenings = 0usize;
        for _ in 0..max_rounds {
            rounds += 1;
            match self.propagate_round(lb, ub, &mut tightenings) {
                RoundStep::Infeasible => {
                    return PropOutcome {
                        infeasible: true,
                        rounds,
                        tightenings,
                    }
                }
                RoundStep::Fixpoint => break,
                RoundStep::Tightened => {}
            }
        }
        PropOutcome {
            infeasible: false,
            rounds,
            tightenings,
        }
    }

    /// One full activity/tighten sweep over every constraint — the unit a
    /// lockstep wave round dispatches per lane. Tightened bounds feed the
    /// activities of later rows *within* the sweep (that interleaving is
    /// part of the deterministic reference semantics, which is why the
    /// wave parallelizes across lanes per round, never across the kernel
    /// phases inside one lane's round). Returns early on a contradiction,
    /// keeping the partial tightenings applied.
    fn propagate_round(
        &self,
        lb: &mut [f64],
        ub: &mut [f64],
        tightenings: &mut usize,
    ) -> RoundStep {
        let mut changed = false;
        for con in &self.instance.cons {
            let (min_act, max_act) = activity(&con.coeffs, lb, ub);
            match con.sense {
                Sense::Le => {
                    if min_act > con.rhs + TOL {
                        return RoundStep::Infeasible;
                    }
                }
                Sense::Ge => {
                    if max_act < con.rhs - TOL {
                        return RoundStep::Infeasible;
                    }
                }
                Sense::Eq => {
                    if min_act > con.rhs + TOL || max_act < con.rhs - TOL {
                        return RoundStep::Infeasible;
                    }
                }
            }
            // Residual-activity tightening. For ≤ rows (and the ≤ side
            // of =): a_j > 0 caps x_j from above, a_j < 0 from below;
            // for ≥ rows, symmetric with the max activity.
            let le_side = con.sense != Sense::Ge;
            let ge_side = con.sense != Sense::Le;
            for &(j, a) in &con.coeffs {
                if a.abs() < TOL {
                    continue;
                }
                if le_side && min_act.is_finite() {
                    if a > 0.0 {
                        let rest = min_act - a * lb[j];
                        let mut cand = (con.rhs - rest) / a;
                        if self.integral[j] {
                            cand = (cand + TOL).floor();
                        }
                        if cand < ub[j] - TOL {
                            ub[j] = cand;
                            *tightenings += 1;
                            changed = true;
                        }
                    } else {
                        let rest = min_act - a * ub[j];
                        let mut cand = (con.rhs - rest) / a;
                        if self.integral[j] {
                            cand = (cand - TOL).ceil();
                        }
                        if cand > lb[j] + TOL {
                            lb[j] = cand;
                            *tightenings += 1;
                            changed = true;
                        }
                    }
                }
                if ge_side && max_act.is_finite() {
                    if a > 0.0 {
                        let rest = max_act - a * ub[j];
                        let mut cand = (con.rhs - rest) / a;
                        if self.integral[j] {
                            cand = (cand - TOL).ceil();
                        }
                        if cand > lb[j] + TOL {
                            lb[j] = cand;
                            *tightenings += 1;
                            changed = true;
                        }
                    } else {
                        let rest = max_act - a * lb[j];
                        let mut cand = (con.rhs - rest) / a;
                        if self.integral[j] {
                            cand = (cand + TOL).floor();
                        }
                        if cand < ub[j] - TOL {
                            ub[j] = cand;
                            *tightenings += 1;
                            changed = true;
                        }
                    }
                }
                if lb[j] > ub[j] + 1e-7 {
                    return RoundStep::Infeasible;
                }
            }
        }
        if changed {
            RoundStep::Tightened
        } else {
            RoundStep::Fixpoint
        }
    }

    /// Lockstep propagation of a whole wave of boxes through the
    /// accelerator's **executing** backend: per round, one fused dispatch
    /// runs [`Self::propagate_round`] for every still-iterating lane
    /// (lanes drop out as their fixpoints or contradictions land), then
    /// [`charge_wave`] charges the matching `prop.activity` /
    /// `prop.tighten` / `prop.reduce` kernel trios — exactly the charges
    /// the per-lane [`Self::propagate`]-then-[`charge_wave`] pattern
    /// produced, with bit-identical boxes and outcomes.
    pub fn propagate_wave(
        &self,
        accel: &Accel,
        boxes: &mut [(Vec<f64>, Vec<f64>)],
        max_rounds: usize,
    ) -> Vec<PropOutcome> {
        let width = boxes.len();
        let mut outs = vec![
            PropOutcome {
                infeasible: false,
                rounds: 0,
                tightenings: 0,
            };
            width
        ];
        if width == 0 || max_rounds == 0 {
            return outs;
        }
        let exec = accel.exec();
        let mut done = vec![false; width];
        for _ in 0..max_rounds {
            let mut cells: Vec<RoundCell<'_>> = boxes
                .iter_mut()
                .zip(outs.iter_mut())
                .enumerate()
                .filter(|(i, _)| !done[*i])
                .map(|(i, (bx, out))| RoundCell {
                    idx: i,
                    bx,
                    out,
                    step: RoundStep::Fixpoint,
                })
                .collect();
            if cells.is_empty() {
                break;
            }
            let mut closures: Vec<_> = cells
                .iter_mut()
                .map(|cell| {
                    move || {
                        cell.out.rounds += 1;
                        cell.step = self.propagate_round(
                            &mut cell.bx.0,
                            &mut cell.bx.1,
                            &mut cell.out.tightenings,
                        );
                    }
                })
                .collect();
            let mut bodies: Vec<LaneBody<'_>> = closures
                .iter_mut()
                .map(|c| c as &mut (dyn FnMut() + Send))
                .collect();
            // Execution only — the simulated trios are charged once below
            // through `charge_wave`, the single pinned charging path.
            exec.fused_dispatch("prop.round", &mut bodies, &[], DEFAULT_STREAM);
            drop(bodies);
            drop(closures);
            for cell in &mut cells {
                match cell.step {
                    RoundStep::Infeasible => {
                        cell.out.infeasible = true;
                        done[cell.idx] = true;
                    }
                    RoundStep::Fixpoint => done[cell.idx] = true,
                    RoundStep::Tightened => {}
                }
            }
        }
        let rounds: Vec<usize> = outs.iter().map(|o| o.rounds).collect();
        charge_wave(accel, self.nnz, self.num_vars(), &rounds);
        outs
    }

    /// Lane-parallel fix-and-propagate dives through the accelerator's
    /// executing backend: one fused `heur.dive` dispatch runs
    /// [`Self::fix_and_propagate`] per seed. Dives are charge-free here —
    /// callers keep charging [`charge_wave`] with the returned rounds, as
    /// they did around the sequential loop.
    pub fn dive_wave(
        &self,
        accel: &Accel,
        seeds: &[DiveSeed<'_>],
        int_tol: f64,
        max_rounds: usize,
    ) -> Vec<FixPropOutcome> {
        if seeds.is_empty() {
            return Vec::new();
        }
        let exec = accel.exec();
        let mut outs: Vec<FixPropOutcome> = seeds
            .iter()
            .map(|_| FixPropOutcome {
                candidate: None,
                rounds: 0,
                repairs: 0,
                aborted: false,
            })
            .collect();
        let mut closures: Vec<_> = seeds
            .iter()
            .zip(outs.iter_mut())
            .map(|(s, out)| {
                move || {
                    *out = self.fix_and_propagate(s.x0, s.lb0, s.ub0, int_tol, max_rounds);
                }
            })
            .collect();
        let mut bodies: Vec<LaneBody<'_>> = closures
            .iter_mut()
            .map(|c| c as &mut (dyn FnMut() + Send))
            .collect();
        exec.fused_dispatch("heur.dive", &mut bodies, &[], DEFAULT_STREAM);
        drop(bodies);
        drop(closures);
        outs
    }

    /// Fix-and-propagate dive from LP point `x0` inside box `lb0`/`ub0`:
    /// round the most fractional integral variable, fix it, propagate; on
    /// a contradiction repair with the opposite rounding; abort when both
    /// roundings fail. The surviving point is re-checked exactly before it
    /// becomes a candidate.
    pub fn fix_and_propagate(
        &self,
        x0: &[f64],
        lb0: &[f64],
        ub0: &[f64],
        int_tol: f64,
        max_rounds: usize,
    ) -> FixPropOutcome {
        let mut lb = lb0.to_vec();
        let mut ub = ub0.to_vec();
        let mut x: Vec<f64> = x0
            .iter()
            .enumerate()
            .map(|(j, &v)| v.clamp(lb[j], ub[j]))
            .collect();
        let mut rounds = 0usize;
        let mut repairs = 0usize;
        let ints: Vec<usize> = (0..x.len()).filter(|&j| self.integral[j]).collect();

        for _ in 0..=ints.len() {
            // Most fractional still-free integral variable (ties to the
            // smallest index — deterministic).
            let next = ints
                .iter()
                .copied()
                .filter(|&j| ub[j] - lb[j] > int_tol)
                .filter(|&j| (x[j] - x[j].round()).abs() > int_tol)
                .max_by(|&a, &b| {
                    let fa = (x[a] - x[a].round()).abs();
                    let fb = (x[b] - x[b].round()).abs();
                    fa.partial_cmp(&fb)
                        .expect("fractionality is never NaN")
                        .then(b.cmp(&a))
                });
            let Some(j) = next else { break };
            let primary = x[j].round().clamp(lb[j], ub[j]);
            let mut trial_lb = lb.clone();
            let mut trial_ub = ub.clone();
            trial_lb[j] = primary;
            trial_ub[j] = primary;
            let out = self.propagate(&mut trial_lb, &mut trial_ub, max_rounds);
            rounds += out.rounds;
            if out.infeasible {
                // Repair: the opposite rounding (ceil if we floored and
                // vice versa), if it is distinct and inside the box.
                let alt = if primary >= x[j] {
                    x[j].floor()
                } else {
                    x[j].ceil()
                };
                if (alt - primary).abs() < 0.5 || alt < lb[j] - TOL || alt > ub[j] + TOL {
                    return FixPropOutcome {
                        candidate: None,
                        rounds,
                        repairs,
                        aborted: true,
                    };
                }
                let mut alt_lb = lb.clone();
                let mut alt_ub = ub.clone();
                alt_lb[j] = alt;
                alt_ub[j] = alt;
                let alt_out = self.propagate(&mut alt_lb, &mut alt_ub, max_rounds);
                rounds += alt_out.rounds;
                if alt_out.infeasible {
                    return FixPropOutcome {
                        candidate: None,
                        rounds,
                        repairs,
                        aborted: true,
                    };
                }
                repairs += 1;
                lb = alt_lb;
                ub = alt_ub;
            } else {
                lb = trial_lb;
                ub = trial_ub;
            }
            for (k, v) in x.iter_mut().enumerate() {
                *v = v.clamp(lb[k], ub[k]);
            }
        }

        // Snap integral values and re-check exactly against the instance —
        // the only gate through which a candidate may leave.
        let mut p = x;
        for &j in &ints {
            p[j] = p[j].round().clamp(lb[j], ub[j]);
        }
        if self.instance.is_integer_feasible(&p, 1e-6) {
            let obj = self.instance.objective_value(&p);
            FixPropOutcome {
                candidate: Some((obj, p)),
                rounds,
                repairs,
                aborted: false,
            }
        } else {
            FixPropOutcome {
                candidate: None,
                rounds,
                repairs,
                aborted: true,
            }
        }
    }
}

/// Row activity bounds under the current box (worst-case per coefficient
/// sign — the `prop.activity` kernel's per-row work).
fn activity(coeffs: &[(usize, f64)], lb: &[f64], ub: &[f64]) -> (f64, f64) {
    let mut min = 0.0;
    let mut max = 0.0;
    for &(j, a) in coeffs {
        if a > 0.0 {
            min += a * lb[j];
            max += a * ub[j];
        } else {
            min += a * ub[j];
            max += a * lb[j];
        }
    }
    (min, max)
}

/// Charges the fused batched launches of `rounds_per_lane` lockstep
/// propagation rounds on `accel`: per round, one `prop.activity` and one
/// `prop.tighten` launch at sparse throughput (cost ∝ nnz, the shared CSR
/// matrix) plus one `prop.reduce` launch over the variable vector — the
/// same launch shape as the `fo.*` kernel classes. Lanes drop out of later
/// rounds as their fixpoints land (the batch narrows, like retiring wave
/// lanes). Returns the total charged ns.
pub fn charge_wave(accel: &Accel, nnz: usize, num_vars: usize, rounds_per_lane: &[usize]) -> f64 {
    let max_rounds = rounds_per_lane.iter().copied().max().unwrap_or(0);
    if max_rounds == 0 {
        // Fast path: an empty wave (or one whose every lane did zero
        // rounds) charges nothing — no device lock, no allocation, no
        // launches. Hot on propagation-free strategies that still call in.
        return 0.0;
    }
    // Every lane of a round carries the identical pre-reduced cost pair, so
    // one allocation at full width serves every round as a prefix slice —
    // round r's batch is the first `active` lanes (those with k > r rounds,
    // a count that only shrinks as fixpoints land).
    let width = rounds_per_lane.iter().filter(|&&k| k > 0).count();
    let sparse: Vec<(f64, f64)> = vec![(2.0 * nnz as f64, 12.0 * nnz as f64); width];
    let tighten: Vec<(f64, f64)> = vec![(4.0 * nnz as f64, 16.0 * nnz as f64); width];
    let reduce: Vec<(f64, f64)> = vec![(num_vars as f64, 16.0 * num_vars as f64); width];
    let mut total = 0.0;
    accel.with(|d| {
        for r in 0..max_rounds {
            let active = rounds_per_lane.iter().filter(|&&k| k > r).count();
            total += d.batched_wave_kernel_sparse(
                names::PROP_KERNEL_ACTIVITY,
                &sparse[..active],
                DEFAULT_STREAM,
            );
            total += d.batched_wave_kernel_sparse(
                names::PROP_KERNEL_TIGHTEN,
                &tighten[..active],
                DEFAULT_STREAM,
            );
            total +=
                d.batched_wave_kernel(names::PROP_KERNEL_REDUCE, &reduce[..active], DEFAULT_STREAM);
        }
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::infeasible_instance;
    use gmip_problems::generators::knapsack::knapsack;
    use gmip_problems::{Constraint, Objective, Variable};

    fn two_binary(con: Constraint) -> MipInstance {
        let mut m = MipInstance::new("prop-test", Objective::Maximize);
        m.add_var(Variable::binary("x", 1.0));
        m.add_var(Variable::binary("y", 1.0));
        m.add_con(con);
        m
    }

    #[test]
    fn known_infeasible_detected_within_k_rounds() {
        let m = infeasible_instance();
        let p = Propagator::new(&m);
        let (mut lb, mut ub) = p.node_box(&[]);
        let out = p.propagate(&mut lb, &mut ub, 8);
        assert!(out.infeasible, "catalog infeasible instance must be caught");
        assert!(out.rounds <= 3, "needed {} rounds", out.rounds);
    }

    #[test]
    fn branch_box_infeasibility_detected() {
        // x + y ≤ 1 with both forced to 1 by branch bounds.
        let m = two_binary(Constraint::new(
            "cap",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Le,
            1.0,
        ));
        let p = Propagator::new(&m);
        let (mut lb, mut ub) = p.node_box(&[
            BoundChange {
                var: 0,
                lb: 1.0,
                ub: 1.0,
            },
            BoundChange {
                var: 1,
                lb: 1.0,
                ub: 1.0,
            },
        ]);
        let out = p.propagate(&mut lb, &mut ub, 8);
        assert!(out.infeasible);
        assert_eq!(out.rounds, 1, "one activity sweep suffices");
    }

    #[test]
    fn bounds_are_monotone_and_idempotent() {
        let m = knapsack(14, 0.5, 3);
        let p = Propagator::new(&m);
        let (lb0, ub0) = p.node_box(&[]);
        let (mut lb, mut ub) = (lb0.clone(), ub0.clone());
        let out = p.propagate(&mut lb, &mut ub, 8);
        assert!(!out.infeasible);
        for j in 0..lb.len() {
            assert!(lb[j] >= lb0[j], "lb widened at {j}");
            assert!(ub[j] <= ub0[j], "ub widened at {j}");
            assert!(lb[j] <= ub[j] + 1e-9, "box crossed at {j}");
        }
        // A second pass from the fixpoint terminates after one
        // zero-tightening round and changes nothing.
        let (snap_lb, snap_ub) = (lb.clone(), ub.clone());
        let again = p.propagate(&mut lb, &mut ub, 8);
        assert!(!again.infeasible);
        assert_eq!(again.rounds, 1, "fixpoint must terminate in one round");
        assert_eq!(again.tightenings, 0);
        assert_eq!(lb, snap_lb);
        assert_eq!(ub, snap_ub);
    }

    #[test]
    fn zero_tightening_round_terminates_early() {
        // A redundant row tightens nothing: exactly one round runs even
        // with a large round budget.
        let m = two_binary(Constraint::new(
            "loose",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Le,
            5.0,
        ));
        let p = Propagator::new(&m);
        let (mut lb, mut ub) = p.node_box(&[]);
        let out = p.propagate(&mut lb, &mut ub, 100);
        assert!(!out.infeasible);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.tightenings, 0);
    }

    #[test]
    fn propagation_fixes_forced_binaries() {
        // 3x + y ≤ 2 forces x = 0.
        let m = two_binary(Constraint::new(
            "c",
            vec![(0, 3.0), (1, 1.0)],
            Sense::Le,
            2.0,
        ));
        let p = Propagator::new(&m);
        let (mut lb, mut ub) = p.node_box(&[]);
        let out = p.propagate(&mut lb, &mut ub, 8);
        assert!(!out.infeasible);
        assert_eq!(ub[0], 0.0);
        assert!(out.tightenings >= 1);
        let changes = p.bound_changes(&lb, &ub);
        assert!(changes.iter().any(|bc| bc.var == 0 && bc.ub == 0.0));
    }

    #[test]
    fn fix_and_propagate_aborts_on_integer_infeasibility() {
        // 2x + 2y = 1 has no integer solution: the dive must try the
        // fractional seed's rounding, fail, repair, fail again, and abort.
        let m = two_binary(Constraint::new(
            "odd",
            vec![(0, 2.0), (1, 2.0)],
            Sense::Eq,
            1.0,
        ));
        let p = Propagator::new(&m);
        let (lb, ub) = p.node_box(&[]);
        let out = p.fix_and_propagate(&[0.25, 0.25], &lb, &ub, 1e-6, 8);
        assert!(out.aborted, "no integer point exists");
        assert!(out.candidate.is_none());
        assert!(out.rounds >= 2, "both roundings must have been propagated");
    }

    #[test]
    fn fix_and_propagate_repairs_covering_rows() {
        // x + y ≥ 1: the near-zero seed rounds both down, which a ≥ row
        // rejects; the repair path rounds one up and lands feasible.
        let m = two_binary(Constraint::new(
            "cover",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Ge,
            1.0,
        ));
        let p = Propagator::new(&m);
        let (lb, ub) = p.node_box(&[]);
        let out = p.fix_and_propagate(&[0.4, 0.3], &lb, &ub, 1e-6, 8);
        let (obj, x) = out.candidate.expect("repairable cover must succeed");
        assert!(m.is_integer_feasible(&x, 1e-9));
        assert!(obj >= 1.0 - 1e-9);
        assert!(!out.aborted);
    }

    #[test]
    fn fix_and_propagate_candidates_are_exactly_feasible() {
        for seed in [1u64, 2, 9] {
            let m = knapsack(16, 0.5, seed);
            let p = Propagator::new(&m);
            let (lb, ub) = p.node_box(&[]);
            // A deliberately fractional seed point.
            let x: Vec<f64> = (0..m.num_vars())
                .map(|j| 0.3 + 0.4 * ((j * 7 + seed as usize) % 10) as f64 / 10.0)
                .collect();
            let out = p.fix_and_propagate(&x, &lb, &ub, 1e-6, 8);
            if let Some((obj, cand)) = out.candidate {
                assert!(m.is_integer_feasible(&cand, 1e-9), "seed {seed}");
                assert!((m.objective_value(&cand) - obj).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn charge_wave_issues_one_kernel_trio_per_round() {
        let accel = Accel::gpu(1);
        let ns = charge_wave(&accel, 100, 20, &[3, 1, 2]);
        assert!(ns > 0.0);
        let launches = accel.with(|d| d.metrics().counter(names::GPU_KERNEL_LAUNCHES));
        // max rounds = 3 → 3 trios = 9 fused launches, regardless of width.
        assert_eq!(launches, 9.0);
        assert_eq!(charge_wave(&accel, 100, 20, &[]), 0.0);
        assert_eq!(charge_wave(&accel, 100, 20, &[0, 0]), 0.0);
    }

    #[test]
    fn charge_wave_zero_rounds_fast_path_is_free() {
        // Empty and all-zero waves short-circuit before touching the
        // device: no simulated time, no launches, no trace events.
        let accel = Accel::gpu(1);
        assert_eq!(charge_wave(&accel, 1_000_000, 500, &[]), 0.0);
        assert_eq!(charge_wave(&accel, 1_000_000, 500, &[0, 0, 0]), 0.0);
        assert_eq!(accel.elapsed_ns(), 0.0);
        assert_eq!(
            accel.with(|d| d.metrics().counter(names::GPU_KERNEL_LAUNCHES)),
            0.0
        );
    }

    /// A small knapsack plus per-lane branch boxes that force different
    /// round counts (including an immediately-contradictory lane).
    fn wave_fixture() -> (Propagator, Vec<(Vec<f64>, Vec<f64>)>) {
        let m = knapsack(12, 0.4, 7);
        let p = Propagator::new(&m);
        let mut boxes = Vec::new();
        boxes.push(p.node_box(&[]));
        for var in 0..4 {
            boxes.push(p.node_box(&[BoundChange {
                var,
                lb: 1.0,
                ub: 1.0,
            }]));
        }
        // A box that is already crossed: lb > ub on variable 0.
        let (mut lb, mut ub) = p.node_box(&[]);
        lb[0] = 1.0;
        ub[0] = 0.0;
        boxes.push((lb, ub));
        (p, boxes)
    }

    #[test]
    fn propagate_wave_is_bit_identical_to_sequential_propagate() {
        use gmip_gpu::BackendKind;
        let (p, reference_boxes) = wave_fixture();
        // Reference: per-lane host propagation + one explicit charge_wave,
        // the pattern the wave entry point replaces.
        let ref_accel = Accel::gpu(1);
        let mut ref_boxes = reference_boxes.clone();
        let mut ref_outs = Vec::new();
        for (lb, ub) in ref_boxes.iter_mut() {
            ref_outs.push(p.propagate(lb, ub, 8));
        }
        let rounds: Vec<usize> = ref_outs.iter().map(|o| o.rounds).collect();
        charge_wave(&ref_accel, p.nnz(), p.num_vars(), &rounds);
        for backend in [
            BackendKind::Sim,
            BackendKind::Native { threads: 1 },
            BackendKind::Native { threads: 2 },
            BackendKind::Native { threads: 4 },
        ] {
            let accel = Accel::gpu(1).with_backend(backend);
            let mut boxes = reference_boxes.clone();
            let outs = p.propagate_wave(&accel, &mut boxes, 8);
            assert_eq!(outs, ref_outs, "{}", backend.label());
            for (got, want) in boxes.iter().zip(ref_boxes.iter()) {
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&got.0), bits(&want.0), "{}", backend.label());
                assert_eq!(bits(&got.1), bits(&want.1), "{}", backend.label());
            }
            // Identical simulated ledger: same elapsed time, same launches.
            assert_eq!(
                accel.elapsed_ns().to_bits(),
                ref_accel.elapsed_ns().to_bits(),
                "{}",
                backend.label()
            );
            assert_eq!(
                accel.with(|d| d.metrics().counter(names::GPU_KERNEL_LAUNCHES)),
                ref_accel.with(|d| d.metrics().counter(names::GPU_KERNEL_LAUNCHES)),
                "{}",
                backend.label()
            );
        }
    }

    #[test]
    fn propagate_wave_empty_inputs_charge_nothing() {
        let (p, mut boxes) = wave_fixture();
        let accel = Accel::gpu(1);
        assert!(p.propagate_wave(&accel, &mut [], 8).is_empty());
        let outs = p.propagate_wave(&accel, &mut boxes, 0);
        assert!(outs.iter().all(|o| o.rounds == 0 && !o.infeasible));
        assert_eq!(accel.elapsed_ns(), 0.0);
    }

    #[test]
    fn dive_wave_matches_sequential_dives_on_all_backends() {
        use gmip_gpu::BackendKind;
        let m = knapsack(16, 0.5, 3);
        let p = Propagator::new(&m);
        let (lb, ub) = p.node_box(&[]);
        let points: Vec<Vec<f64>> = (0..6)
            .map(|lane| {
                (0..m.num_vars())
                    .map(|j| 0.2 + 0.6 * ((j * 5 + lane) % 10) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let reference: Vec<FixPropOutcome> = points
            .iter()
            .map(|x| p.fix_and_propagate(x, &lb, &ub, 1e-6, 8))
            .collect();
        for backend in [
            BackendKind::Sim,
            BackendKind::Native { threads: 1 },
            BackendKind::Native { threads: 3 },
        ] {
            let accel = Accel::gpu(1).with_backend(backend);
            let seeds: Vec<DiveSeed<'_>> = points
                .iter()
                .map(|x| DiveSeed {
                    x0: x,
                    lb0: &lb,
                    ub0: &ub,
                })
                .collect();
            let outs = p.dive_wave(&accel, &seeds, 1e-6, 8);
            assert_eq!(outs.len(), reference.len());
            for (got, want) in outs.iter().zip(reference.iter()) {
                assert_eq!(got.rounds, want.rounds, "{}", backend.label());
                assert_eq!(got.repairs, want.repairs, "{}", backend.label());
                assert_eq!(got.aborted, want.aborted, "{}", backend.label());
                match (&got.candidate, &want.candidate) {
                    (Some((go, gx)), Some((wo, wx))) => {
                        assert_eq!(go.to_bits(), wo.to_bits(), "{}", backend.label());
                        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                        assert_eq!(bits(gx), bits(wx), "{}", backend.label());
                    }
                    (None, None) => {}
                    _ => panic!("candidate mismatch under {}", backend.label()),
                }
            }
            // Dives are charge-free; callers own the charge_wave call.
            assert_eq!(accel.elapsed_ns(), 0.0, "{}", backend.label());
        }
    }
}
