//! The solution pool: a bounded warm-start cache keyed by canonical
//! fingerprints.
//!
//! Entries are stored in **canonical** coordinates — the incumbent point in
//! canonical variable order and the objective divided by the producer's
//! objective scale — so a hit can be re-expressed exactly in the
//! requester's own row/column order and objective scaling. Two lookup
//! paths:
//!
//! * [`SolutionPool::exact`] — same canonical model bit-for-bit: the
//!   cached answer *is* the answer (served without touching the cluster);
//! * [`SolutionPool::warm`] — same structure, different numbers (a
//!   perturbed re-submission): the cached incumbent and root basis seed
//!   the new solve, which still runs to proven optimality.
//!
//! Eviction is FIFO over insertion order; only proven-optimal answers are
//! pooled. Everything is `BTreeMap`-backed so iteration order — and hence
//! the serve trace — is deterministic.

use std::collections::{BTreeMap, VecDeque};

use gmip_lp::Basis;

use crate::fingerprint::Canonical;

/// One pooled answer, in canonical coordinates.
#[derive(Debug, Clone)]
pub struct PoolEntry {
    /// Optimal objective of the canonical model (source sense, divided by
    /// the producer's objective scale).
    pub objective_canon: f64,
    /// Incumbent point in canonical variable order.
    pub x_canon: Vec<f64>,
    /// The producer's `var_of_canon` permutation (for deciding whether a
    /// requester shares the producer's original variable order).
    pub var_of_canon: Vec<usize>,
    /// Branch-and-bound nodes the producing solve spent.
    pub nodes: usize,
    /// Root LP basis captured from the producing solve, if any.
    pub root_basis: Option<Basis>,
    /// Structural fingerprint (for the warm index).
    pub structural: u64,
}

/// A warm-start hit: the pooled incumbent mapped into the requester's
/// variable order, plus the root basis when it is safe to reuse.
#[derive(Debug, Clone)]
pub struct WarmHint {
    /// Candidate incumbent in the requester's original variable order.
    pub seed_x: Vec<f64>,
    /// Root basis, present only when producer and requester share the
    /// same original variable order (a basis indexes original columns, so
    /// reusing it across a permutation would warm-start the wrong LP).
    pub root_basis: Option<Basis>,
    /// Nodes the producing solve spent (for speedup accounting).
    pub producer_nodes: usize,
}

/// Bounded FIFO pool with exact and structural indices.
#[derive(Debug)]
pub struct SolutionPool {
    capacity: usize,
    by_exact: BTreeMap<u64, PoolEntry>,
    /// structural fp -> exact fp of the most recent entry with that shape.
    by_structure: BTreeMap<u64, u64>,
    fifo: VecDeque<u64>,
    evictions: u64,
}

impl SolutionPool {
    /// Creates a pool holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            by_exact: BTreeMap::new(),
            by_structure: BTreeMap::new(),
            fifo: VecDeque::new(),
            evictions: 0,
        }
    }

    /// Number of pooled entries.
    pub fn len(&self) -> usize {
        self.by_exact.len()
    }

    /// True when nothing is pooled.
    pub fn is_empty(&self) -> bool {
        self.by_exact.is_empty()
    }

    /// Entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Exact lookup. Returns the objective in the **requester's** scaling
    /// and the incumbent in the requester's original variable order.
    pub fn exact(&self, canon: &Canonical) -> Option<(f64, Vec<f64>, usize)> {
        let e = self.by_exact.get(&canon.exact)?;
        let obj = e.objective_canon * canon.obj_scale;
        Some((obj, canon.to_original_order(&e.x_canon), e.nodes))
    }

    /// Structural lookup for warm-starting a perturbed re-submission.
    /// Never returns an entry whose canonical variable count differs.
    pub fn warm(&self, canon: &Canonical) -> Option<WarmHint> {
        let exact_fp = self.by_structure.get(&canon.structural)?;
        let e = self.by_exact.get(exact_fp)?;
        if e.x_canon.len() != canon.var_of_canon.len() {
            return None;
        }
        let root_basis = if e.var_of_canon == canon.var_of_canon {
            e.root_basis.clone()
        } else {
            None
        };
        Some(WarmHint {
            seed_x: canon.to_original_order(&e.x_canon),
            root_basis,
            producer_nodes: e.nodes,
        })
    }

    /// Pools a proven-optimal answer. `objective` and `x` are in the
    /// producer's original coordinates; they are canonicalized here.
    /// Re-inserting an existing fingerprint refreshes the entry in place.
    pub fn insert(
        &mut self,
        canon: &Canonical,
        objective: f64,
        x: &[f64],
        nodes: usize,
        root_basis: Option<Basis>,
    ) {
        let entry = PoolEntry {
            objective_canon: objective / canon.obj_scale,
            x_canon: canon.to_canon_order(x),
            var_of_canon: canon.var_of_canon.clone(),
            nodes,
            root_basis,
            structural: canon.structural,
        };
        if self.by_exact.insert(canon.exact, entry).is_none() {
            self.fifo.push_back(canon.exact);
            if self.by_exact.len() > self.capacity {
                self.evict_oldest();
            }
        }
        self.by_structure.insert(canon.structural, canon.exact);
    }

    fn evict_oldest(&mut self) {
        while let Some(fp) = self.fifo.pop_front() {
            if let Some(old) = self.by_exact.remove(&fp) {
                if self.by_structure.get(&old.structural) == Some(&fp) {
                    self.by_structure.remove(&old.structural);
                }
                self.evictions += 1;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::canonicalize;
    use gmip_problems::generators::knapsack;

    #[test]
    fn exact_hit_rescales_objective_and_permutes_x() {
        let m = knapsack(6, 0.5, 1);
        let canon = canonicalize(&m);
        let mut pool = SolutionPool::new(8);
        let x: Vec<f64> = (0..m.num_vars())
            .map(|j| f64::from((j % 2) as u8))
            .collect();
        pool.insert(&canon, 120.0, &x, 9, None);

        // Same model, objective doubled: fingerprint matches, served
        // objective must be doubled too.
        let mut scaled = m.clone();
        for v in &mut scaled.vars {
            v.obj *= 2.0;
        }
        let canon2 = canonicalize(&scaled);
        let (obj, x2, nodes) = pool.exact(&canon2).expect("exact hit");
        // One rescale (divide by the producer scale, multiply by the
        // requester's) costs at most an ulp per operation.
        assert!((obj - 240.0).abs() < 1e-9 * 240.0, "got {obj}");
        assert_eq!(x2, x);
        assert_eq!(nodes, 9);
    }

    #[test]
    fn warm_hit_on_perturbed_rhs_carries_basis() {
        let m = knapsack(6, 0.5, 2);
        let canon = canonicalize(&m);
        let mut pool = SolutionPool::new(8);
        let x = vec![1.0; m.num_vars()];
        pool.insert(&canon, 50.0, &x, 4, None);

        let mut p = m.clone();
        for c in &mut p.cons {
            c.rhs *= 1.05;
        }
        let canon_p = canonicalize(&p);
        assert!(pool.exact(&canon_p).is_none(), "perturbed must miss exact");
        let hint = pool.warm(&canon_p).expect("structural warm hit");
        assert_eq!(hint.seed_x, x);
        assert_eq!(hint.producer_nodes, 4);
    }

    #[test]
    fn fifo_eviction_drops_oldest() {
        let mut pool = SolutionPool::new(2);
        for seed in 0..3u64 {
            let m = knapsack(5, 0.5, seed);
            let canon = canonicalize(&m);
            pool.insert(&canon, 1.0, &vec![0.0; m.num_vars()], 1, None);
        }
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.evictions(), 1);
        let first = canonicalize(&knapsack(5, 0.5, 0));
        assert!(pool.exact(&first).is_none(), "oldest entry was evicted");
    }
}
