//! Oracle spot-checks: sample answered jobs and re-solve them with the
//! exact rational oracle from `gmip-verify`. A serving stack that sheds,
//! retries, and serves from cache has many more ways to return a *wrong*
//! answer than a bare solver; this is the independent audit.

use gmip_verify::{solve_oracle, OracleStatus};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::service::{JobSpec, ServeReport};

/// Re-solves up to `sample` answered proven-optimal jobs with the exact
/// oracle and compares objectives. `jobs` must be the same tape (same
/// order) that produced `report`. Returns the number of jobs audited, or
/// a description of the first mismatch.
pub fn spot_check(
    jobs: &[JobSpec],
    report: &ServeReport,
    sample: usize,
    seed: u64,
) -> Result<usize, String> {
    assert_eq!(
        jobs.len(),
        report.records.len(),
        "job tape and report are misaligned"
    );
    let mut candidates: Vec<usize> = report
        .records
        .iter()
        .enumerate()
        .filter(|(_, r)| r.answered() && r.status == Some(gmip_core::MipStatus::Optimal))
        .map(|(i, _)| i)
        .collect();
    // Seeded Fisher–Yates; audit a random subset when over the budget.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in (1..candidates.len()).rev() {
        candidates.swap(i, rng.gen_range(0..=i));
    }
    candidates.truncate(sample);
    candidates.sort_unstable();

    for &i in &candidates {
        let rec = &report.records[i];
        assert_eq!(jobs[i].id, rec.id, "job tape and report are misaligned");
        let oracle = solve_oracle(&jobs[i].instance)
            .map_err(|e| format!("job {}: oracle failed: {e}", rec.id))?;
        match oracle.status {
            OracleStatus::Optimal => {
                let want = oracle
                    .objective
                    .as_ref()
                    .map(gmip_verify::Rat::approx)
                    .unwrap_or(f64::NAN);
                let tol = 1e-6 * want.abs().max(1.0);
                let diff = (rec.objective - want).abs();
                // NaN-safe: a NaN served objective must fail the audit.
                if !matches!(
                    diff.partial_cmp(&tol),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                ) {
                    return Err(format!(
                        "job {} ({:?}): served objective {} but oracle optimum is {}",
                        rec.id, rec.disposition, rec.objective, want
                    ));
                }
            }
            other => {
                return Err(format!(
                    "job {}: served Optimal but oracle says {other:?}",
                    rec.id
                ));
            }
        }
    }
    Ok(candidates.len())
}
