//! Seeded open-loop traffic generation.
//!
//! Models a serving day the way the SLO literature does: Poisson arrivals
//! (exponential inter-arrival gaps) carrying heavy-tailed job sizes (a
//! Pareto-ish tail over knapsack item counts — most jobs are small, a few
//! are much larger and request wider rank shards). A fraction of
//! submissions are *exact duplicates* of earlier jobs (dashboards
//! re-asking the same question → exact cache hits) and a fraction are
//! *perturbed re-submissions* — the same model with relaxed capacities,
//! the rolling re-solve pattern of unit-commitment shops → structural
//! warm-start hits.
//!
//! Everything derives from one `ChaCha8Rng` seed, so a traffic tape is
//! reproducible byte-for-byte.

use gmip_problems::generators::knapsack;
use gmip_problems::{MipInstance, Sense};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::service::{JobSpec, TenantSpec};

/// Traffic-tape parameters.
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Number of jobs to emit.
    pub jobs: usize,
    /// Master seed for the whole tape.
    pub seed: u64,
    /// Mean inter-arrival gap, simulated ns (exponential).
    pub mean_interarrival_ns: f64,
    /// Number of tenants (priorities cycle 0,1,2,...).
    pub tenants: usize,
    /// Upper clamp on knapsack item count (controls solve cost).
    pub max_items: usize,
    /// Probability a job is an exact duplicate of an earlier one.
    pub dup_prob: f64,
    /// Probability a job is a perturbed re-submission of an earlier one.
    pub perturb_prob: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            jobs: 200,
            seed: 42,
            mean_interarrival_ns: 2.0e6,
            tenants: 3,
            max_items: 14,
            dup_prob: 0.15,
            perturb_prob: 0.15,
        }
    }
}

/// Rank width requested for a job of `n` items: small jobs run on one
/// rank, the heavy tail asks for wider shards.
pub fn width_for(n: usize) -> usize {
    match n {
        0..=7 => 1,
        8..=10 => 2,
        11..=13 => 3,
        _ => 4,
    }
}

/// Relaxes the capacities of `m` in place: `Le` right-hand sides grow and
/// `Ge` right-hand sides shrink by up to 10%, so every previously feasible
/// point stays feasible — exactly the perturbation a pooled incumbent can
/// warm-start.
fn relax_capacities(m: &mut MipInstance, rng: &mut ChaCha8Rng) {
    for c in &mut m.cons {
        let bump = 1.0 + 0.05 * (1.0 + rng.gen::<f64>());
        match c.sense {
            Sense::Le => c.rhs *= bump,
            Sense::Ge => c.rhs /= bump,
            Sense::Eq => {}
        }
    }
}

/// Generates the tenant table and the job tape for `cfg`.
pub fn generate(cfg: &TrafficConfig) -> (Vec<TenantSpec>, Vec<JobSpec>) {
    assert!(cfg.jobs > 0 && cfg.tenants > 0, "need jobs and tenants");
    let tenants: Vec<TenantSpec> = (0..cfg.tenants)
        .map(|i| TenantSpec::new(format!("tenant{i}"), (i % 3) as u8))
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut history: Vec<MipInstance> = Vec::new();
    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut t = 0.0f64;

    for id in 0..cfg.jobs {
        let gap: f64 = rng.gen();
        t += -cfg.mean_interarrival_ns * (1.0 - gap).max(f64::MIN_POSITIVE).ln();
        let tenant = rng.gen_range(0..cfg.tenants);
        let kind: f64 = rng.gen();
        let instance = if kind < cfg.dup_prob && !history.is_empty() {
            history[rng.gen_range(0..history.len())].clone()
        } else if kind < cfg.dup_prob + cfg.perturb_prob && !history.is_empty() {
            let mut m = history[rng.gen_range(0..history.len())].clone();
            relax_capacities(&mut m, &mut rng);
            m
        } else {
            // Heavy-tailed size: n ~ 4/u^0.7 gives a mostly-small, sometimes
            // large item count, clamped to the configured ceiling.
            let u: f64 = rng.gen::<f64>().max(1e-9);
            let n = ((4.0 / u.powf(0.7)).ceil() as usize).clamp(3, cfg.max_items.max(3));
            let fresh = knapsack(n, 0.5, rng.gen());
            history.push(fresh.clone());
            fresh
        };
        jobs.push(JobSpec {
            id: id as u64,
            tenant,
            arrival_ns: t,
            width: width_for(instance.num_vars()),
            instance,
        });
    }
    (tenants, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_is_deterministic() {
        let cfg = TrafficConfig {
            jobs: 40,
            ..TrafficConfig::default()
        };
        let (_, a) = generate(&cfg);
        let (_, b) = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ns.to_bits(), y.arrival_ns.to_bits());
            assert_eq!(x.tenant, y.tenant);
            assert_eq!(x.width, y.width);
            assert_eq!(x.instance.name, y.instance.name);
            assert_eq!(x.instance.num_vars(), y.instance.num_vars());
        }
    }

    #[test]
    fn tape_contains_duplicates_and_perturbations() {
        let cfg = TrafficConfig {
            jobs: 120,
            ..TrafficConfig::default()
        };
        let (_, jobs) = generate(&cfg);
        use crate::fingerprint::canonicalize;
        use std::collections::BTreeMap;
        let mut exact: BTreeMap<u64, usize> = BTreeMap::new();
        let mut structural: BTreeMap<u64, usize> = BTreeMap::new();
        for j in &jobs {
            let c = canonicalize(&j.instance);
            *exact.entry(c.exact).or_insert(0) += 1;
            *structural.entry(c.structural).or_insert(0) += 1;
        }
        assert!(
            exact.values().any(|&n| n > 1),
            "expected exact duplicates in the tape"
        );
        let exact_dups: usize = exact.values().map(|&n| n - 1).sum();
        let struct_dups: usize = structural.values().map(|&n| n - 1).sum();
        assert!(
            struct_dups > exact_dups,
            "expected perturbed re-submissions beyond exact duplicates"
        );
    }

    #[test]
    fn arrivals_are_monotone() {
        let (_, jobs) = generate(&TrafficConfig::default());
        for w in jobs.windows(2) {
            assert!(w[0].arrival_ns <= w[1].arrival_ns);
        }
    }
}
