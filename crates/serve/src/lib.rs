//! # gmip-serve
//!
//! A deterministic multi-tenant **solve service** over the simulated
//! cluster: the serving tier the paper's batch experiments stop short of.
//! MIP shops rarely solve one instance once — they field streams of
//! related solves (rolling-horizon re-solves, what-if perturbations,
//! repeated dashboard queries) from many users against one accelerator
//! pool. This crate reproduces that tier without any OS async runtime:
//!
//! * [`service`] — a hand-rolled reactor/job queue on the simulated-ns
//!   clock: admission control (per-tenant quotas, priority load
//!   shedding), strict priority/FIFO dispatch, and sharding of concurrent
//!   jobs across cluster ranks via [`gmip_parallel::RankPool`]. Each
//!   dispatched job runs [`gmip_parallel::solve_parallel`] on its leased
//!   shard; the solve's simulated makespan is its service time. Under the
//!   chaos overlay each attempt derives its own fault plan and is retried
//!   with exponential backoff past a per-attempt deadline.
//! * [`fingerprint`] — canonical instance fingerprints: row/column order
//!   and objective scaling are normalized away and the result is rendered
//!   through the MPS writer and hashed, so semantically identical models
//!   share a cache key (metamorphically tested against `gmip-verify`'s
//!   transforms).
//! * [`pool`] — the solution pool: exact-fingerprint hits are answered
//!   straight from cache; structural hits warm-start perturbed
//!   re-submissions from the pooled incumbent and root basis.
//! * [`traffic`] — a seeded open-loop generator (Poisson arrivals,
//!   heavy-tailed job sizes, duplicate and perturbed re-submissions).
//! * [`check`] — oracle spot-checks of served answers against the exact
//!   rational oracle.
//!
//! The whole stack is byte-deterministic: one seed fixes the traffic
//! tape, every fault plan, every schedule decision, and therefore every
//! trace byte and served answer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod fingerprint;
pub mod pool;
pub mod service;
pub mod traffic;

pub use check::spot_check;
pub use fingerprint::{canonicalize, Canonical};
pub use pool::{PoolEntry, SolutionPool, WarmHint};
pub use service::{Disposition, JobRecord, JobSpec, ServeConfig, ServeReport, Service, TenantSpec};
pub use traffic::{generate, TrafficConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_trace::names;

    fn small_traffic(jobs: usize, seed: u64) -> TrafficConfig {
        TrafficConfig {
            jobs,
            seed,
            max_items: 9,
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn serves_a_small_tape_with_cache_hits() {
        let (tenants, jobs) = traffic::generate(&small_traffic(60, 7));
        let svc = Service::new(
            ServeConfig {
                ranks: 4,
                ..ServeConfig::default()
            },
            tenants,
        );
        let report = svc.run(jobs.clone());
        assert_eq!(report.records.len(), 60);
        assert!(report.completed() > 0, "no job completed");
        assert!(
            report.metrics.counter(names::SERVE_CACHE_EXACT_HITS) > 0.0,
            "duplicate submissions should hit the exact cache"
        );
        assert!(
            report.metrics.counter(names::SERVE_CACHE_WARM_HITS) > 0.0,
            "perturbed re-submissions should warm-start"
        );
        // Every served answer in the sample agrees with the exact oracle.
        let audited = spot_check(&jobs, &report, 10, 1).expect("spot check");
        assert!(audited > 0);
    }

    #[test]
    fn warm_start_resolve_spends_fewer_nodes_than_cold() {
        // Satellite: a perturbed re-submission must ride the pooled
        // incumbent to a cheaper proof than solving cold, with the same
        // oracle-verified optimum. Bin packing is the family where
        // incumbent timing moves the node count (symmetric, late first
        // incumbents); the perturbation grows each bin's capacity
        // coefficient by 5%, so the pooled packing stays feasible.
        use gmip_problems::generators::bin_packing;
        let base = bin_packing(6, 10.0, 1);
        let mut perturbed = base.clone();
        for c in &mut perturbed.cons {
            for (_, v) in &mut c.coeffs {
                if *v < 0.0 {
                    *v *= 1.05;
                }
            }
        }

        let tenants = vec![TenantSpec::new("t0", 1)];
        let cfg = ServeConfig {
            ranks: 2,
            ..ServeConfig::default()
        };
        let job = |id: u64, m: &gmip_problems::MipInstance, at: f64| JobSpec {
            id,
            tenant: 0,
            arrival_ns: at,
            width: 2,
            instance: m.clone(),
        };

        // Cold: the perturbed model alone.
        let cold = Service::new(cfg.clone(), tenants.clone()).run(vec![job(0, &perturbed, 0.0)]);
        let cold_rec = &cold.records[0];
        assert_eq!(cold_rec.disposition, Disposition::SolvedCold);

        // Warm: base first (pools its answer), then the perturbation.
        let warm =
            Service::new(cfg, tenants).run(vec![job(0, &base, 0.0), job(1, &perturbed, 1.0e9)]);
        let warm_rec = &warm.records[1];
        assert_eq!(
            warm_rec.disposition,
            Disposition::SolvedWarm,
            "second submission should warm-start from the pool"
        );
        assert!(
            warm_rec.nodes < cold_rec.nodes,
            "warm re-solve should spend fewer nodes ({} vs cold {})",
            warm_rec.nodes,
            cold_rec.nodes
        );

        // Same proven optimum either way, and the oracle agrees.
        let oracle = gmip_verify::solve_oracle(&perturbed).expect("oracle");
        let want = oracle.objective.expect("optimal").approx();
        for got in [cold_rec.objective, warm_rec.objective] {
            assert!(
                (got - want).abs() <= 1e-6 * want.abs().max(1.0),
                "objective {got} disagrees with oracle {want}"
            );
        }
    }

    #[test]
    fn quota_and_shedding_enforce_admission() {
        // One tenant with a tiny quota and a burst of simultaneous
        // arrivals: beyond max_queued everything quota-rejects.
        use gmip_problems::generators::knapsack;
        let tenants = vec![TenantSpec {
            name: "burst".into(),
            priority: 1,
            max_queued: 2,
        }];
        let jobs: Vec<JobSpec> = (0..8)
            .map(|i| JobSpec {
                id: i,
                tenant: 0,
                arrival_ns: 0.0,
                width: 1,
                instance: knapsack(8, 0.5, 100 + i),
            })
            .collect();
        let report = Service::new(
            ServeConfig {
                ranks: 1,
                ..ServeConfig::default()
            },
            tenants,
        )
        .run(jobs);
        let rejected = report
            .records
            .iter()
            .filter(|r| r.disposition == Disposition::QuotaRejected)
            .count();
        assert!(rejected > 0, "burst should trip the tenant quota");
        assert!(report.completed() > 0, "admitted jobs still complete");
    }

    #[test]
    fn blown_attempt_deadline_retries_with_backoff_then_fails() {
        // An attempt timeout far below any real makespan forces the
        // Abort -> backoff -> Requeue path on every attempt; after
        // max_retries the job is declared Failed, not left pending.
        use gmip_problems::generators::knapsack;
        let report = Service::new(
            ServeConfig {
                ranks: 1,
                attempt_timeout_ns: 10.0,
                max_retries: 2,
                ..ServeConfig::default()
            },
            vec![TenantSpec::new("t0", 1)],
        )
        .run(vec![JobSpec {
            id: 0,
            tenant: 0,
            arrival_ns: 0.0,
            width: 1,
            instance: knapsack(8, 0.5, 5),
        }]);
        let rec = &report.records[0];
        assert_eq!(rec.disposition, Disposition::Failed);
        assert_eq!(rec.retries, 2, "both retry budget slots spent");
        assert_eq!(report.metrics.counter(names::SERVE_RETRIES), 2.0);
        assert_eq!(report.metrics.counter(names::SERVE_JOBS_FAILED), 1.0);
        // Each retry waits out an exponentially growing backoff on top of
        // the attempt timeouts: exactly 3 timeouts + backoff * (1 + 2).
        assert_eq!(rec.finish_ns, 3.0 * 10.0 + 3.0 * 1.0e6);
    }

    #[test]
    fn two_runs_are_bit_identical() {
        let (tenants, jobs) = traffic::generate(&small_traffic(40, 23));
        let run = || {
            Service::new(
                ServeConfig {
                    ranks: 4,
                    ..ServeConfig::default()
                },
                tenants.clone(),
            )
            .run(jobs.clone())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outcome_digest(), b.outcome_digest());
        assert_eq!(a.makespan_ns.to_bits(), b.makespan_ns.to_bits());
    }
}
