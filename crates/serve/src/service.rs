//! The solve service: a deterministic reactor over the simulated cluster.
//!
//! `gmip-serve` multiplexes many tenants' solve jobs onto one pool of
//! cluster ranks. There is no OS async runtime anywhere: the front-end is
//! a discrete-event reactor on the same simulated-ns logical clock the
//! cluster itself runs on, so a whole serving day — arrivals, queueing,
//! admission, sharded solves, retries, cache hits — replays byte-for-byte
//! under a fixed seed.
//!
//! Lifecycle of a job:
//!
//! 1. **Arrival** — the instance is canonicalized (one fingerprint pass).
//!    An exact pool hit is answered immediately at cache cost, never
//!    touching the cluster. Otherwise admission control runs: per-tenant
//!    queue quotas first, then global load shedding (over `queue_cap`
//!    everything sheds; over `shed_depth` only priority-0 tenants shed —
//!    the graceful-degradation mode).
//! 2. **Dispatch** — a strict priority/FIFO head-of-line policy: the
//!    highest-priority oldest job leases its requested rank width from the
//!    shared [`RankPool`] and runs through [`solve_parallel`] as its own
//!    miniature supervisor–worker cluster. A structural pool hit seeds the
//!    solve with the pooled incumbent (and root basis when the column
//!    order matches) — the warm-start path.
//! 3. **Finish / Abort** — the solve's simulated makespan is its service
//!    time. Under the chaos overlay each attempt derives its own fault
//!    plan; an attempt whose makespan blows through `attempt_timeout_ns`
//!    is aborted and retried with exponential backoff until the retry
//!    budget runs out. Proven-optimal answers enter the pool.

use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::Mutex;

use gmip_core::MipStatus;
use gmip_lp::Basis;
use gmip_parallel::{solve_parallel, ChaosConfig, ParallelConfig, RankLease, RankPool};
use gmip_problems::MipInstance;
use gmip_trace::{names, record, Event, MetricsRegistry, Track};

use crate::fingerprint::{canonicalize, Canonical};
use crate::pool::SolutionPool;

/// One tenant's identity and admission limits.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant name (appears in per-tenant metric keys).
    pub name: String,
    /// Scheduling priority; higher dispatches first. Priority-0 tenants
    /// are the first shed under load.
    pub priority: u8,
    /// Max jobs this tenant may have waiting in the queue.
    pub max_queued: usize,
}

impl TenantSpec {
    /// A tenant with the default queue quota.
    pub fn new(name: impl Into<String>, priority: u8) -> Self {
        TenantSpec {
            name: name.into(),
            priority,
            max_queued: 32,
        }
    }
}

/// One submitted solve job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job id (unique, monotone in submission order).
    pub id: u64,
    /// Index into the tenant table.
    pub tenant: usize,
    /// Arrival time on the service clock, simulated ns.
    pub arrival_ns: f64,
    /// Rank width the job requests (clamped to the pool size).
    pub width: usize,
    /// The model to solve.
    pub instance: MipInstance,
}

/// What finally happened to a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Answered straight from the solution pool (exact fingerprint hit).
    CacheHit,
    /// Solved on the cluster from scratch.
    SolvedCold,
    /// Solved on the cluster seeded by a pooled incumbent/basis.
    SolvedWarm,
    /// Dropped by load shedding at admission.
    Shed,
    /// Rejected because the tenant was over its queue quota.
    QuotaRejected,
    /// Retry budget exhausted (every attempt timed out or errored).
    Failed,
}

/// Per-job outcome record (one per submitted job, in submission order).
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Tenant index.
    pub tenant: usize,
    /// Final disposition.
    pub disposition: Disposition,
    /// Terminal solver status, for jobs that ran or hit the cache.
    pub status: Option<MipStatus>,
    /// Objective in the submitter's own scaling (NaN if no answer).
    pub objective: f64,
    /// Branch-and-bound nodes spent answering (0 for cache hits).
    pub nodes: usize,
    /// Attempts beyond the first.
    pub retries: u32,
    /// Arrival time, simulated ns.
    pub arrival_ns: f64,
    /// Completion time, simulated ns.
    pub finish_ns: f64,
}

impl JobRecord {
    /// End-to-end latency, simulated ns.
    pub fn latency_ns(&self) -> f64 {
        self.finish_ns - self.arrival_ns
    }

    /// True when the submitter got an answer (cached or solved).
    pub fn answered(&self) -> bool {
        matches!(
            self.disposition,
            Disposition::CacheHit | Disposition::SolvedCold | Disposition::SolvedWarm
        )
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Total cluster ranks shared by all in-flight jobs.
    pub ranks: usize,
    /// Node budget handed to each solve.
    pub node_limit: usize,
    /// Hard queue bound: arrivals beyond this shed regardless of tenant.
    pub queue_cap: usize,
    /// Soft queue bound: beyond this, priority-0 tenants shed.
    pub shed_depth: usize,
    /// Per-attempt simulated deadline; a solve whose makespan exceeds it
    /// is aborted and retried.
    pub attempt_timeout_ns: f64,
    /// Attempts beyond the first before a job fails permanently.
    pub max_retries: u32,
    /// Backoff before retry k is `retry_backoff_ns * 2^k`.
    pub retry_backoff_ns: f64,
    /// Solution-pool capacity (entries).
    pub pool_capacity: usize,
    /// Simulated cost of serving an exact cache hit.
    pub cache_hit_ns: f64,
    /// Simulated admission-control overhead per arrival.
    pub admission_ns: f64,
    /// Device memory per rank (bytes), passed through to the cluster.
    pub gpu_mem: usize,
    /// Fault overlay; each attempt derives its own plan from this.
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            ranks: 8,
            node_limit: 200_000,
            queue_cap: 64,
            shed_depth: 48,
            attempt_timeout_ns: 5.0e9,
            max_retries: 2,
            retry_backoff_ns: 1.0e6,
            pool_capacity: 256,
            cache_hit_ns: 20_000.0,
            admission_ns: 5_000.0,
            gpu_mem: 1 << 24,
            chaos: None,
        }
    }
}

/// Everything a finished run reports.
#[derive(Debug)]
pub struct ServeReport {
    /// One record per submitted job, submission order.
    pub records: Vec<JobRecord>,
    /// Aggregated service + per-job solver metrics.
    pub metrics: MetricsRegistry,
    /// Time of the last event on the service clock, simulated ns.
    pub makespan_ns: f64,
}

impl ServeReport {
    /// Jobs that got an answer.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.answered()).count()
    }

    /// Jobs dropped at admission (shed + quota rejects).
    pub fn dropped(&self) -> usize {
        self.records
            .iter()
            .filter(|r| {
                matches!(
                    r.disposition,
                    Disposition::Shed | Disposition::QuotaRejected
                )
            })
            .count()
    }

    /// Jobs that failed permanently.
    pub fn failed(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.disposition == Disposition::Failed)
            .count()
    }

    /// Fraction of submissions dropped at admission.
    pub fn shed_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.dropped() as f64 / self.records.len() as f64
        }
    }

    /// Exact latency quantile over answered jobs (sorted order, nearest
    /// rank) — unlike the log-bucketed trace histograms this is suitable
    /// for regression-gated SLO numbers.
    pub fn latency_quantile_ns(&self, q: f64) -> f64 {
        let mut lat: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.answered())
            .map(JobRecord::latency_ns)
            .collect();
        if lat.is_empty() {
            return 0.0;
        }
        lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
        let rank = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).max(1);
        lat[rank - 1]
    }

    /// Answered jobs per simulated second.
    pub fn goodput_jobs_per_s(&self) -> f64 {
        if self.makespan_ns <= 0.0 {
            0.0
        } else {
            self.completed() as f64 / (self.makespan_ns * 1e-9)
        }
    }

    /// A deterministic digest of every job outcome (bit-exact objectives
    /// and times); two replays of the same seed must produce identical
    /// digests.
    pub fn outcome_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for r in &self.records {
            let _ = writeln!(
                s,
                "job={} tenant={} disp={:?} status={:?} obj={:016x} nodes={} retries={} finish={:016x}",
                r.id,
                r.tenant,
                r.disposition,
                r.status,
                r.objective.to_bits(),
                r.nodes,
                r.retries,
                r.finish_ns.to_bits(),
            );
        }
        s
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.metrics;
        let mut s = String::new();
        let _ = writeln!(s, "jobs submitted     {}", self.records.len());
        let _ = writeln!(s, "  answered         {}", self.completed());
        let _ = writeln!(
            s,
            "  shed / quota     {} / {}",
            m.counter(names::SERVE_JOBS_SHED),
            m.counter(names::SERVE_JOBS_QUOTA_REJECTS)
        );
        let _ = writeln!(s, "  failed           {}", self.failed());
        let _ = writeln!(
            s,
            "cache exact/warm   {} / {}  (misses {})",
            m.counter(names::SERVE_CACHE_EXACT_HITS),
            m.counter(names::SERVE_CACHE_WARM_HITS),
            m.counter(names::SERVE_CACHE_MISSES)
        );
        let _ = writeln!(s, "retries            {}", m.counter(names::SERVE_RETRIES));
        let _ = writeln!(
            s,
            "latency p50/p99    {:.0} / {:.0} us",
            self.latency_quantile_ns(0.50) / 1e3,
            self.latency_quantile_ns(0.99) / 1e3
        );
        let _ = writeln!(
            s,
            "goodput            {:.1} jobs/s over {:.3} ms simulated",
            self.goodput_jobs_per_s(),
            self.makespan_ns / 1e6
        );
        s
    }
}

/// Interns a string for use as a registry key or trace arg (both demand
/// `&'static str`); the leak is bounded by tenants × metric suffixes.
fn intern(key: String) -> &'static str {
    static INTERN: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut g = INTERN.lock().unwrap();
    if let Some(&s) = g.get(key.as_str()) {
        return s;
    }
    let leaked: &'static str = Box::leak(key.into_boxed_str());
    g.insert(leaked);
    leaked
}

/// Per-tenant metric key, e.g. `serve.tenant.acme.latency_ns`.
fn tenant_metric(tenant: &str, suffix: &str) -> &'static str {
    intern(format!("serve.tenant.{tenant}.{suffix}"))
}

struct AttemptOutcome {
    status: MipStatus,
    objective: f64,
    x: Vec<f64>,
    nodes: usize,
    root_basis: Option<Basis>,
    warm: bool,
    makespan_ns: f64,
    metrics: MetricsRegistry,
}

enum Ev {
    Arrive {
        job: usize,
    },
    Requeue {
        job: usize,
    },
    Finish {
        job: usize,
        lease: RankLease,
        outcome: Box<AttemptOutcome>,
    },
    Abort {
        job: usize,
        lease: RankLease,
    },
}

struct HeapEv {
    time: f64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapEv {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .partial_cmp(&other.time)
            .unwrap_or(Ordering::Equal)
            .then(self.seq.cmp(&other.seq))
    }
}

struct JobState {
    spec: JobSpec,
    canon: Canonical,
    attempts: u32,
    queued_seq: u64,
    last_start_ns: f64,
}

/// The reactor. Build with [`Service::new`], drive with [`Service::run`].
#[derive(Debug)]
pub struct Service {
    cfg: ServeConfig,
    tenants: Vec<TenantSpec>,
}

impl Service {
    /// A service over `tenants` with configuration `cfg`.
    pub fn new(cfg: ServeConfig, tenants: Vec<TenantSpec>) -> Self {
        assert!(cfg.ranks >= 1, "service needs at least one rank");
        assert!(!tenants.is_empty(), "service needs at least one tenant");
        Service { cfg, tenants }
    }

    /// Replays `jobs` through the service and reports every outcome.
    /// Jobs must reference valid tenant indices; arrival times may be in
    /// any order (the event queue sorts them).
    pub fn run(&self, jobs: Vec<JobSpec>) -> ServeReport {
        let cfg = &self.cfg;
        let mut pool = SolutionPool::new(cfg.pool_capacity);
        let mut ranks = RankPool::new(cfg.ranks);
        let mut events: BinaryHeap<Reverse<HeapEv>> = BinaryHeap::new();
        let mut seq: u64 = 0;
        let mut states: Vec<JobState> = Vec::with_capacity(jobs.len());
        let mut records: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
        let mut metrics = MetricsRegistry::new();
        let mut queue: Vec<usize> = Vec::new();
        let mut queued_per_tenant = vec![0usize; self.tenants.len()];
        let mut now = 0.0f64;

        for (idx, spec) in jobs.into_iter().enumerate() {
            assert!(
                spec.tenant < self.tenants.len(),
                "job references unknown tenant"
            );
            events.push(Reverse(HeapEv {
                time: spec.arrival_ns,
                seq,
                ev: Ev::Arrive { job: idx },
            }));
            seq += 1;
            states.push(JobState {
                canon: canonicalize(&spec.instance),
                spec,
                attempts: 0,
                queued_seq: 0,
                last_start_ns: 0.0,
            });
        }

        while let Some(Reverse(HeapEv { time, ev, .. })) = events.pop() {
            now = now.max(time);
            match ev {
                Ev::Arrive { job } => {
                    let tenant = states[job].spec.tenant;
                    let tname = tenant_name(&self.tenants, tenant);
                    metrics.incr(names::SERVE_JOBS_SUBMITTED, 1.0);
                    record(|| {
                        Event::instant(Track::serve(0), "arrive", now)
                            .arg("job", states[job].spec.id)
                            .arg("tenant", tname)
                    });
                    // Exact cache hit: answered at cache cost, no cluster.
                    if let Some((obj, _x, _nodes)) = pool.exact(&states[job].canon) {
                        let finish = now + cfg.admission_ns + cfg.cache_hit_ns;
                        metrics.incr(names::SERVE_CACHE_EXACT_HITS, 1.0);
                        self.complete(
                            &mut metrics,
                            &mut records,
                            &states[job],
                            JobRecord {
                                id: states[job].spec.id,
                                tenant,
                                disposition: Disposition::CacheHit,
                                status: Some(MipStatus::Optimal),
                                objective: obj,
                                nodes: 0,
                                retries: 0,
                                arrival_ns: states[job].spec.arrival_ns,
                                finish_ns: finish,
                            },
                            job,
                        );
                        record(|| {
                            Event::complete(Track::serve(0), "cache_hit", now, finish - now)
                                .arg("job", states[job].spec.id)
                        });
                        continue;
                    }
                    // Admission control.
                    let t = &self.tenants[tenant];
                    if queued_per_tenant[tenant] >= t.max_queued {
                        metrics.incr(names::SERVE_JOBS_QUOTA_REJECTS, 1.0);
                        metrics.incr(tenant_metric(&t.name, "quota_rejects"), 1.0);
                        self.drop_job(
                            &mut records,
                            &states[job],
                            Disposition::QuotaRejected,
                            now + cfg.admission_ns,
                            job,
                        );
                        record(|| {
                            Event::instant(Track::serve(0), "quota_reject", now)
                                .arg("job", states[job].spec.id)
                        });
                        continue;
                    }
                    let over_cap = queue.len() >= cfg.queue_cap;
                    let degraded = queue.len() >= cfg.shed_depth && t.priority == 0;
                    if over_cap || degraded {
                        metrics.incr(names::SERVE_JOBS_SHED, 1.0);
                        metrics.incr(tenant_metric(&t.name, "shed"), 1.0);
                        self.drop_job(
                            &mut records,
                            &states[job],
                            Disposition::Shed,
                            now + cfg.admission_ns,
                            job,
                        );
                        record(|| {
                            Event::instant(Track::serve(0), "shed", now)
                                .arg("job", states[job].spec.id)
                                .arg("depth", queue.len())
                        });
                        continue;
                    }
                    states[job].queued_seq = seq;
                    seq += 1;
                    queue.push(job);
                    queued_per_tenant[tenant] += 1;
                    metrics.max_gauge(names::SERVE_QUEUE_DEPTH_PEAK, queue.len() as f64);
                }
                Ev::Requeue { job } => {
                    states[job].queued_seq = seq;
                    seq += 1;
                    queued_per_tenant[states[job].spec.tenant] += 1;
                    queue.push(job);
                    metrics.max_gauge(names::SERVE_QUEUE_DEPTH_PEAK, queue.len() as f64);
                }
                Ev::Finish {
                    job,
                    lease,
                    outcome,
                } => {
                    ranks.release(lease);
                    let o = *outcome;
                    metrics.merge(&o.metrics);
                    metrics.observe(names::SERVE_EXEC_NS, o.makespan_ns);
                    if o.warm {
                        metrics.incr(names::SERVE_CACHE_WARM_HITS, 1.0);
                    } else {
                        metrics.incr(names::SERVE_CACHE_MISSES, 1.0);
                    }
                    if o.status == MipStatus::Optimal {
                        let before = pool.evictions();
                        pool.insert(
                            &states[job].canon,
                            o.objective,
                            &o.x,
                            o.nodes,
                            o.root_basis.clone(),
                        );
                        metrics.incr(
                            names::SERVE_CACHE_EVICTIONS,
                            (pool.evictions() - before) as f64,
                        );
                    }
                    let disp = if o.warm {
                        Disposition::SolvedWarm
                    } else {
                        Disposition::SolvedCold
                    };
                    let start = states[job].last_start_ns;
                    let dur = o.makespan_ns;
                    let id = states[job].spec.id;
                    let lane = 1;
                    record(|| {
                        Event::complete(Track::serve(lane), "job", start, dur)
                            .arg("job", id)
                            .arg("nodes", o.nodes)
                            .arg("warm", u64::from(o.warm))
                    });
                    self.complete(
                        &mut metrics,
                        &mut records,
                        &states[job],
                        JobRecord {
                            id,
                            tenant: states[job].spec.tenant,
                            disposition: disp,
                            status: Some(o.status),
                            objective: o.objective,
                            nodes: o.nodes,
                            retries: states[job].attempts - 1,
                            arrival_ns: states[job].spec.arrival_ns,
                            finish_ns: now,
                        },
                        job,
                    );
                }
                Ev::Abort { job, lease } => {
                    ranks.release(lease);
                    if states[job].attempts <= cfg.max_retries {
                        metrics.incr(names::SERVE_RETRIES, 1.0);
                        let backoff = cfg.retry_backoff_ns
                            * f64::from(1u32 << (states[job].attempts - 1).min(16));
                        record(|| {
                            Event::instant(Track::serve(0), "retry", now)
                                .arg("job", states[job].spec.id)
                                .arg("attempt", u64::from(states[job].attempts))
                        });
                        events.push(Reverse(HeapEv {
                            time: now + backoff,
                            seq,
                            ev: Ev::Requeue { job },
                        }));
                        seq += 1;
                    } else {
                        metrics.incr(names::SERVE_JOBS_FAILED, 1.0);
                        self.drop_job(&mut records, &states[job], Disposition::Failed, now, job);
                        record(|| {
                            Event::instant(Track::serve(0), "failed", now)
                                .arg("job", states[job].spec.id)
                        });
                    }
                }
            }
            // Arrivals and requeues can dispatch immediately.
            self.dispatch(
                &mut queue,
                &mut states,
                &mut ranks,
                &mut events,
                &mut seq,
                &mut metrics,
                &mut queued_per_tenant,
                &pool,
                now,
            );
        }

        let records: Vec<JobRecord> = records
            .into_iter()
            .map(|r| r.expect("every job reaches a terminal state"))
            .collect();
        let completed = records.iter().filter(|r| r.answered()).count();
        if now > 0.0 {
            metrics.set_gauge(
                names::SERVE_GOODPUT_JOBS_PER_S,
                completed as f64 / (now * 1e-9),
            );
        }
        for (t, spec) in self.tenants.iter().enumerate() {
            let done = records
                .iter()
                .filter(|r| r.tenant == t && r.answered())
                .count();
            metrics.incr(tenant_metric(&spec.name, "completed"), done as f64);
        }
        ServeReport {
            records,
            metrics,
            makespan_ns: now,
        }
    }

    fn complete(
        &self,
        metrics: &mut MetricsRegistry,
        records: &mut [Option<JobRecord>],
        state: &JobState,
        rec: JobRecord,
        job: usize,
    ) {
        metrics.incr(names::SERVE_JOBS_COMPLETED, 1.0);
        metrics.observe(names::SERVE_LATENCY_NS, rec.latency_ns());
        let tname = &self.tenants[state.spec.tenant].name;
        metrics.observe(tenant_metric(tname, "latency_ns"), rec.latency_ns());
        records[job] = Some(rec);
    }

    fn drop_job(
        &self,
        records: &mut [Option<JobRecord>],
        state: &JobState,
        disposition: Disposition,
        finish_ns: f64,
        job: usize,
    ) {
        records[job] = Some(JobRecord {
            id: state.spec.id,
            tenant: state.spec.tenant,
            disposition,
            status: None,
            objective: f64::NAN,
            nodes: 0,
            retries: state.attempts.saturating_sub(1),
            arrival_ns: state.spec.arrival_ns,
            finish_ns,
        });
    }

    /// Head-of-line priority dispatch: repeatedly take the
    /// highest-priority oldest queued job; stop when it cannot lease its
    /// width (strict HOL keeps the schedule deterministic and starvation-
    /// free within a priority class).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        queue: &mut Vec<usize>,
        states: &mut [JobState],
        ranks: &mut RankPool,
        events: &mut BinaryHeap<Reverse<HeapEv>>,
        seq: &mut u64,
        metrics: &mut MetricsRegistry,
        queued_per_tenant: &mut [usize],
        pool: &SolutionPool,
        now: f64,
    ) {
        let cfg = &self.cfg;
        loop {
            let Some(pos) = queue
                .iter()
                .enumerate()
                .min_by_key(|&(_, &j)| {
                    (
                        Reverse(self.tenants[states[j].spec.tenant].priority),
                        states[j].queued_seq,
                    )
                })
                .map(|(pos, _)| pos)
            else {
                return;
            };
            let job = queue[pos];
            let width = states[job].spec.width.clamp(1, ranks.total());
            if ranks.free() < width {
                return;
            }
            let lease = ranks.lease(width).expect("free count checked");
            queue.remove(pos);
            queued_per_tenant[states[job].spec.tenant] -= 1;
            states[job].attempts += 1;
            states[job].last_start_ns = now;
            metrics.observe(
                names::SERVE_QUEUE_WAIT_NS,
                now - states[job].spec.arrival_ns,
            );

            let hint = pool.warm(&states[job].canon);
            let warm_requested = hint.is_some();
            let chaos = cfg
                .chaos
                .as_ref()
                .map(|c| c.derive(states[job].spec.id * 8 + u64::from(states[job].attempts)));
            let pcfg = ParallelConfig {
                workers: lease.width(),
                gpu_mem: cfg.gpu_mem,
                node_limit: cfg.node_limit,
                chaos,
                seed_solution: hint.as_ref().map(|h| h.seed_x.clone()),
                root_basis: hint.and_then(|h| h.root_basis),
                ..ParallelConfig::default()
            };
            record(|| {
                Event::instant(Track::serve(0), "dispatch", now)
                    .arg("job", states[job].spec.id)
                    .arg("width", width)
                    .arg("warm", u64::from(warm_requested))
            });
            match solve_parallel(&states[job].spec.instance, pcfg) {
                Ok(res) if res.stats.makespan_ns <= cfg.attempt_timeout_ns => {
                    let warm =
                        warm_requested && res.stats.metrics.counter(names::BB_WARM_SEEDS) > 0.0;
                    let outcome = Box::new(AttemptOutcome {
                        status: res.status,
                        objective: res.objective,
                        x: res.x,
                        nodes: res.stats.nodes,
                        root_basis: res.stats.root_basis.clone(),
                        warm,
                        makespan_ns: res.stats.makespan_ns,
                        metrics: res.stats.metrics,
                    });
                    events.push(Reverse(HeapEv {
                        time: now + res.stats.makespan_ns,
                        seq: *seq,
                        ev: Ev::Finish {
                            job,
                            lease,
                            outcome,
                        },
                    }));
                    *seq += 1;
                }
                _ => {
                    // Attempt deadline blown (or the solve errored): the
                    // lease is held until the timeout fires, then retried.
                    events.push(Reverse(HeapEv {
                        time: now + cfg.attempt_timeout_ns,
                        seq: *seq,
                        ev: Ev::Abort { job, lease },
                    }));
                    *seq += 1;
                }
            }
        }
    }
}

fn tenant_name(tenants: &[TenantSpec], t: usize) -> &'static str {
    intern(tenants[t].name.clone())
}
