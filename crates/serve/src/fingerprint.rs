//! Canonical instance fingerprints for the solution pool.
//!
//! Two submissions deserve the same cache line when they are the *same
//! model*, however the client happened to order rows and columns or scale
//! the objective. The canonical form therefore:
//!
//! 1. reorders variables and constraints into a name-sorted canonical
//!    order (permutation invariance);
//! 2. divides each constraint row by its largest absolute coefficient and
//!    the objective by its largest absolute coefficient (scale
//!    invariance — exact for the power-of-two scalings the metamorphic
//!    suite applies, since those divisions are lossless in `f64`);
//! 3. renders the result through the hardened MPS writer — the one
//!    serializer in the workspace with round-trip tests — and hashes the
//!    bytes (FNV-1a 64).
//!
//! A second, *structural* fingerprint hashes only names, types, senses and
//! the sparsity pattern — no numbers — so a perturbed re-submission (same
//! model, nudged right-hand sides or costs) lands on the same key and can
//! be warm-started from the pooled answer even though its exact
//! fingerprint differs.

use gmip_problems::mps::write_mps;
use gmip_problems::{Constraint, MipInstance, Objective, Sense};

/// The canonicalization of one instance: the normalized model, the
/// permutation that produced it, and both fingerprints.
#[derive(Debug, Clone)]
pub struct Canonical {
    /// The canonicalized instance (name-sorted, scale-normalized).
    pub instance: MipInstance,
    /// `var_of_canon[k]` = original index of canonical variable `k`.
    pub var_of_canon: Vec<usize>,
    /// Objective divisor: `original_obj = obj_scale · canonical_obj`.
    pub obj_scale: f64,
    /// Exact fingerprint: FNV-1a 64 over the canonical MPS text.
    pub exact: u64,
    /// Structural fingerprint: names/types/senses/sparsity only.
    pub structural: u64,
}

impl Canonical {
    /// Maps a point over the original variables into canonical order.
    pub fn to_canon_order(&self, x: &[f64]) -> Vec<f64> {
        self.var_of_canon.iter().map(|&j| x[j]).collect()
    }

    /// Maps a canonical-order point back into this instance's original
    /// variable order.
    pub fn to_original_order(&self, x_canon: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; x_canon.len()];
        for (k, &j) in self.var_of_canon.iter().enumerate() {
            x[j] = x_canon[k];
        }
        x
    }
}

/// FNV-1a 64-bit over a byte stream (no external hash deps).
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Canonicalizes `m` and computes both fingerprints.
pub fn canonicalize(m: &MipInstance) -> Canonical {
    // Canonical column order: variables sorted by name (ties by original
    // index, though valid models have unique names).
    let mut var_of_canon: Vec<usize> = (0..m.num_vars()).collect();
    var_of_canon.sort_by(|&a, &b| m.vars[a].name.cmp(&m.vars[b].name).then(a.cmp(&b)));
    let mut canon_of_var = vec![0usize; m.num_vars()];
    for (k, &j) in var_of_canon.iter().enumerate() {
        canon_of_var[j] = k;
    }
    // Objective scale: the largest |c_j| divides out (exactly, for
    // power-of-two client scalings).
    let cmax = m.vars.iter().map(|v| v.obj.abs()).fold(0.0f64, f64::max);
    let obj_scale = if cmax > 0.0 { cmax } else { 1.0 };

    let mut t = MipInstance::new("CANON".to_string(), m.objective);
    for &j in &var_of_canon {
        let mut v = m.vars[j].clone();
        v.obj /= obj_scale;
        t.add_var(v);
    }
    // Canonical row order: constraints sorted by name, each row divided by
    // its largest |a_ij| (Constraint::new re-sorts coefficients by column).
    let mut row_order: Vec<usize> = (0..m.num_cons()).collect();
    row_order.sort_by(|&a, &b| m.cons[a].name.cmp(&m.cons[b].name).then(a.cmp(&b)));
    for &i in &row_order {
        let c = &m.cons[i];
        let rmax = c
            .coeffs
            .iter()
            .map(|&(_, v)| v.abs())
            .fold(0.0f64, f64::max);
        let rs = if rmax > 0.0 { rmax } else { 1.0 };
        let coeffs: Vec<(usize, f64)> = c
            .coeffs
            .iter()
            .map(|&(j, v)| (canon_of_var[j], v / rs))
            .collect();
        t.add_con(Constraint::new(c.name.clone(), coeffs, c.sense, c.rhs / rs));
    }

    let exact = fnv1a(FNV_OFFSET, write_mps(&t).as_bytes());

    let mut s = FNV_OFFSET;
    s = fnv1a(
        s,
        &[match t.objective {
            Objective::Maximize => 1u8,
            Objective::Minimize => 2u8,
        }],
    );
    s = fnv1a(s, &(t.num_vars() as u64).to_le_bytes());
    s = fnv1a(s, &(t.num_cons() as u64).to_le_bytes());
    for v in &t.vars {
        s = fnv1a(s, v.name.as_bytes());
        s = fnv1a(s, &[0xff, v.ty.is_integral() as u8]);
    }
    for c in &t.cons {
        s = fnv1a(s, c.name.as_bytes());
        let sense = match c.sense {
            Sense::Le => 1u8,
            Sense::Ge => 2u8,
            Sense::Eq => 3u8,
        };
        s = fnv1a(s, &[0xff, sense]);
        for &(j, _) in &c.coeffs {
            s = fnv1a(s, &(j as u64).to_le_bytes());
        }
    }

    Canonical {
        instance: t,
        var_of_canon,
        obj_scale,
        exact,
        structural: s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{figure1_knapsack, textbook_mip};
    use gmip_problems::generators::knapsack;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fingerprint_is_deterministic() {
        let m = textbook_mip();
        assert_eq!(canonicalize(&m).exact, canonicalize(&m).exact);
        assert_eq!(canonicalize(&m).structural, canonicalize(&m).structural);
    }

    #[test]
    fn order_and_scale_invariant_transforms_hash_identically() {
        // Satellite: the gmip-verify metamorphic transforms that preserve
        // the model up to row/column order and positive scaling must land
        // on the same exact fingerprint. (Shift / redundant-row /
        // complement genuinely change the written model and must not.)
        for m in [figure1_knapsack(), textbook_mip(), knapsack(12, 0.5, 3)] {
            let base = canonicalize(&m);
            let mut rng = ChaCha8Rng::seed_from_u64(17);
            for t in [
                gmip_verify::metamorphic::row_permutation(&m, &mut rng),
                gmip_verify::metamorphic::col_permutation(&m, &mut rng),
                gmip_verify::metamorphic::row_scaling(&m, &mut rng),
                gmip_verify::metamorphic::objective_scale(&m, &mut rng),
            ] {
                let c = canonicalize(&t.instance);
                assert_eq!(
                    c.exact, base.exact,
                    "{}: exact fingerprint changed under {}",
                    m.name, t.name
                );
                assert_eq!(
                    c.structural, base.structural,
                    "{}: structural fingerprint changed under {}",
                    m.name, t.name
                );
            }
        }
    }

    #[test]
    fn model_changing_transforms_hash_differently() {
        let m = figure1_knapsack();
        let base = canonicalize(&m);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for t in [
            gmip_verify::metamorphic::objective_shift(&m, &mut rng),
            gmip_verify::metamorphic::redundant_constraint(&m, &mut rng),
            gmip_verify::metamorphic::complement_binary(&m, &mut rng),
        ] {
            let c = canonicalize(&t.instance);
            assert_ne!(
                c.exact, base.exact,
                "{} changes the model but kept the fingerprint",
                t.name
            );
        }
    }

    #[test]
    fn perturbed_rhs_keeps_structural_fingerprint_only() {
        let m = knapsack(10, 0.5, 7);
        let mut p = m.clone();
        for c in &mut p.cons {
            c.rhs *= 1.04;
        }
        let (a, b) = (canonicalize(&m), canonicalize(&p));
        assert_ne!(
            a.exact, b.exact,
            "rhs perturbation must change the exact fp"
        );
        assert_eq!(a.structural, b.structural, "structure is unchanged");
    }

    #[test]
    fn point_round_trips_through_canonical_order() {
        let m = textbook_mip();
        let c = canonicalize(&m);
        let x: Vec<f64> = (0..m.num_vars()).map(|j| j as f64 + 0.5).collect();
        assert_eq!(c.to_original_order(&c.to_canon_order(&x)), x);
    }

    #[test]
    fn objective_scale_maps_cached_objectives() {
        // A 2x-scaled resubmission shares the fingerprint; its objective is
        // the canonical objective times its own scale.
        let m = figure1_knapsack();
        let mut scaled = m.clone();
        for v in &mut scaled.vars {
            v.obj *= 2.0;
        }
        let (a, b) = (canonicalize(&m), canonicalize(&scaled));
        assert_eq!(a.exact, b.exact);
        assert_eq!(b.obj_scale, 2.0 * a.obj_scale);
    }
}
