//! Property-based invariants of the search-tree substrate:
//!
//! * random evaluate/branch/settle/prune traces keep the tree consistent
//!   (state machine, active-set bookkeeping, statistics balance);
//! * at every step the captured snapshot validates;
//! * the completion invariant (paper Figure 1) holds once the active set
//!   drains;
//! * every selection policy always returns an active node;
//! * IVM leaf enumeration matches factorials under random interleavings of
//!   descend/prune.

use gmip_tree::policy::{BestFirst, BreadthFirst, DepthFirst, NodeSelection, ReuseAffinity};
use gmip_tree::{capture, completion_invariant, validate, IvmTree, NodeState, SearchTree};
use proptest::prelude::*;

/// One scripted step of a search trace.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Evaluate the chosen node and branch into two children with the given
    /// bound.
    Branch(f64),
    /// Evaluate and settle feasible at the given bound.
    Feasible(f64),
    /// Evaluate and settle infeasible.
    Infeasible,
    /// Prune everything dominated by the given incumbent.
    PruneAt(f64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0.0f64..100.0).prop_map(Step::Branch),
        (0.0f64..100.0).prop_map(Step::Feasible),
        Just(Step::Infeasible),
        (0.0f64..100.0).prop_map(Step::PruneAt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_traces_keep_invariants(
        steps in proptest::collection::vec(step_strategy(), 1..40),
        policy_pick in 0usize..4,
    ) {
        let mut tree: SearchTree<u32> = SearchTree::with_root(0, 64);
        let mut best = BestFirst;
        let mut depth = DepthFirst;
        let mut breadth = BreadthFirst;
        let mut reuse = ReuseAffinity::default();
        for step in steps {
            let selected = match policy_pick {
                0 => NodeSelection::<u32>::select(&mut best, &tree),
                1 => NodeSelection::<u32>::select(&mut depth, &tree),
                2 => NodeSelection::<u32>::select(&mut breadth, &tree),
                _ => NodeSelection::<u32>::select(&mut reuse, &tree),
            };
            match step {
                Step::PruneAt(v) => {
                    tree.prune_dominated(v, 1e-9);
                }
                _ => {
                    let Some(id) = selected else { break };
                    // Selected nodes must be active.
                    prop_assert_eq!(tree.node(id).state, NodeState::Active);
                    prop_assert!(tree.begin_evaluation(id));
                    // Double-start must be rejected.
                    prop_assert!(!tree.begin_evaluation(id));
                    match step {
                        Step::Branch(bound) => {
                            let kids = tree.branch(
                                id,
                                bound,
                                [("L".to_string(), 1u32), ("R".to_string(), 2u32)],
                            );
                            prop_assert_eq!(kids.len(), 2);
                            for k in kids {
                                prop_assert_eq!(tree.node(k).parent, Some(id));
                                prop_assert_eq!(tree.node(k).state, NodeState::Active);
                            }
                        }
                        Step::Feasible(bound) => {
                            tree.settle(id, NodeState::Feasible, bound)
                        }
                        Step::Infeasible => {
                            tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY)
                        }
                        Step::PruneAt(_) => unreachable!("handled above"),
                    }
                }
            }
            // Snapshot consistency at every step.
            let snap = capture(&tree, None);
            prop_assert!(validate(&tree, &snap).is_ok());
            // Statistics balance: created = settled leaves + branched + open.
            let s = tree.stats();
            let open = tree.active_ids().len()
                + tree
                    .iter()
                    .filter(|n| n.state == NodeState::Evaluating)
                    .count();
            prop_assert_eq!(s.created, s.leaves() + s.branched + open);
        }
        // Drain the remaining work; the completion invariant must hold.
        while let Some(&id) = tree.active_ids().first() {
            tree.begin_evaluation(id);
            tree.settle(id, NodeState::Pruned, 0.0);
        }
        prop_assert!(completion_invariant(&tree));
        prop_assert!(tree.all_settled());
    }

    /// Randomly interleaved descend/prune IVM walks never double-count or
    /// skip leaves: visiting with "always descend, prune at leaves" yields
    /// exactly n! leaves regardless of where the walk starts pruning first.
    #[test]
    fn ivm_walks_partition_the_leaf_space(
        n in 2usize..6,
        prune_first in proptest::collection::vec(any::<bool>(), 0..8),
    ) {
        let mut t = IvmTree::new(n);
        // Apply a random prefix of moves.
        let mut skipped_subtrees = 0usize;
        for &p in &prune_first {
            if !t.is_active() {
                break;
            }
            if p && !t.at_leaf() {
                // Count the subtree we're about to skip, then skip it.
                let depth = t.depth();
                let remaining_items = n - depth - 1;
                let subtree_leaves: usize = (1..=remaining_items).product();
                skipped_subtrees += subtree_leaves.max(1);
                if !t.prune_and_advance() {
                    break;
                }
            } else if t.at_leaf() {
                skipped_subtrees += 1;
                if !t.prune_and_advance() {
                    break;
                }
            } else {
                t.descend();
            }
        }
        // Count what's left and check the total.
        let rest = t.count_leaves();
        let total: usize = (1..=n).product();
        prop_assert_eq!(
            rest + skipped_subtrees,
            total,
            "leaves lost or double-counted (n = {})", n
        );
    }
}
