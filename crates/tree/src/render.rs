//! ASCII rendering of the solution tree — the reproduction of Figure 1.
//!
//! Each node shows its branching label, state tag (`F`easible,
//! `I`nfeasible, `P`runed, `B`ranched, `A`ctive, `E`valuating), and bound,
//! drawn with box-drawing connectors.

use crate::node::{NodeId, NodeState};
use crate::tree::SearchTree;
use std::fmt::Write as _;

/// Renders the tree rooted at `tree.root()` as ASCII art.
pub fn render<D>(tree: &SearchTree<D>) -> String {
    let mut out = String::new();
    let root = tree.root();
    let n = tree.node(root);
    let _ = writeln!(
        out,
        "{} [{}] bound={}",
        n.label,
        n.state.tag(),
        fmt_bound(n.bound)
    );
    render_children(tree, root, "", &mut out);
    out
}

fn render_children<D>(tree: &SearchTree<D>, id: NodeId, prefix: &str, out: &mut String) {
    let children = &tree.node(id).children;
    for (i, &c) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (branch, cont) = if last {
            ("└── ", "    ")
        } else {
            ("├── ", "│   ")
        };
        let n = tree.node(c);
        let _ = writeln!(
            out,
            "{prefix}{branch}{} [{}] bound={}",
            n.label,
            n.state.tag(),
            fmt_bound(n.bound)
        );
        let child_prefix = format!("{prefix}{cont}");
        render_children(tree, c, &child_prefix, out);
    }
}

fn fmt_bound(b: f64) -> String {
    if b == f64::INFINITY {
        "∞".to_string()
    } else if b == f64::NEG_INFINITY {
        "-∞".to_string()
    } else {
        format!("{b:.2}")
    }
}

/// A one-line legend for the state tags (printed under Figure-1 output).
pub const LEGEND: &str =
    "tags: F=feasible  I=infeasible  P=pruned  B=branched  A=active  E=evaluating";

/// Counts nodes per state — the caption summary of the rendered figure.
pub fn state_summary<D>(tree: &SearchTree<D>) -> String {
    let mut f = 0;
    let mut i = 0;
    let mut p = 0;
    let mut b = 0;
    let mut open = 0;
    for n in tree.iter() {
        match n.state {
            NodeState::Feasible => f += 1,
            NodeState::Infeasible => i += 1,
            NodeState::Pruned => p += 1,
            NodeState::Branched => b += 1,
            _ => open += 1,
        }
    }
    format!("{b} branched, {f} feasible, {i} infeasible, {p} pruned, {open} open")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tree() -> SearchTree<()> {
        let mut t = SearchTree::with_root((), 64);
        t.begin_evaluation(0);
        let kids = t.branch(0, 16.5, [("x0 ≤ 0".into(), ()), ("x0 ≥ 1".into(), ())]);
        t.begin_evaluation(kids[0]);
        t.settle(kids[0], NodeState::Pruned, 12.0);
        t.begin_evaluation(kids[1]);
        let kk = t.branch(
            kids[1],
            16.0,
            [("x1 ≤ 0".into(), ()), ("x1 ≥ 1".into(), ())],
        );
        t.begin_evaluation(kk[0]);
        t.settle(kk[0], NodeState::Infeasible, f64::NEG_INFINITY);
        t.begin_evaluation(kk[1]);
        t.settle(kk[1], NodeState::Feasible, 16.0);
        t
    }

    #[test]
    fn render_shows_structure_and_tags() {
        let t = demo_tree();
        let s = render(&t);
        assert!(s.contains("root [B] bound=16.50"));
        assert!(s.contains("├── x0 ≤ 0 [P] bound=12.00"));
        assert!(s.contains("└── x0 ≥ 1 [B] bound=16.00"));
        assert!(s.contains("    ├── x1 ≤ 0 [I] bound=-∞"));
        assert!(s.contains("    └── x1 ≥ 1 [F] bound=16.00"));
        // Exactly 5 lines.
        assert_eq!(s.lines().count(), 5);
    }

    #[test]
    fn summary_counts() {
        let t = demo_tree();
        assert_eq!(
            state_summary(&t),
            "2 branched, 1 feasible, 1 infeasible, 1 pruned, 0 open"
        );
    }

    #[test]
    fn active_nodes_render_with_a_tag() {
        let mut t = SearchTree::with_root((), 64);
        t.begin_evaluation(0);
        t.branch(0, 3.0, [("c".into(), ())]);
        let s = render(&t);
        assert!(s.contains("[A]"));
        assert!(state_summary(&t).contains("1 open"));
    }
}
