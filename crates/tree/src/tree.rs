//! The branch-and-bound search tree store.
//!
//! An arena of [`Node`]s plus the *active set* — the frontier of unevaluated
//! leaves. Strategy 2 of the paper keeps this structure in CPU main memory
//! ("the large capacity of CPU memory ... would be needed to hold the tree
//! as it is being evaluated") while each node's relaxation is shipped to the
//! accelerator; [`SearchTree::approx_bytes`] is what Strategy 1 must fit in
//! device memory instead.

use crate::node::{Node, NodeId, NodeState};
use crate::stats::TreeStats;

/// The search tree: arena storage, active-set tracking, statistics.
#[derive(Debug, Clone)]
pub struct SearchTree<D> {
    nodes: Vec<Node<D>>,
    /// Open (Active) node ids; selection policies draw from this.
    active: Vec<NodeId>,
    stats: TreeStats,
    /// Bytes a node occupies when parked on a device (Strategy 1
    /// accounting): payload-independent estimate set by the owner.
    node_bytes: usize,
}

impl<D> SearchTree<D> {
    /// Creates a tree with a root node carrying `data`.
    pub fn with_root(data: D, node_bytes: usize) -> Self {
        let root = Node {
            id: 0,
            parent: None,
            depth: 0,
            state: NodeState::Active,
            bound: f64::INFINITY,
            children: Vec::new(),
            label: "root".to_string(),
            data,
        };
        let mut stats = TreeStats::default();
        stats.created = 1;
        stats.max_active = 1;
        Self {
            nodes: vec![root],
            active: vec![0],
            stats,
            node_bytes,
        }
    }

    /// The root's id.
    pub fn root(&self) -> NodeId {
        0
    }

    /// Total nodes ever created.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable node access.
    ///
    /// # Panics
    /// Panics on an invalid id (arena ids never dangle).
    pub fn node(&self, id: NodeId) -> &Node<D> {
        &self.nodes[id]
    }

    /// Mutable node access.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node<D> {
        &mut self.nodes[id]
    }

    /// The current active (open, unevaluated) node ids.
    pub fn active_ids(&self) -> &[NodeId] {
        &self.active
    }

    /// Whether any work remains.
    pub fn has_active(&self) -> bool {
        !self.active.is_empty()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &TreeStats {
        &self.stats
    }

    /// Removes `id` from the active set and marks it `Evaluating`. Returns
    /// `false` if the node was not active.
    pub fn begin_evaluation(&mut self, id: NodeId) -> bool {
        let Some(pos) = self.active.iter().position(|&a| a == id) else {
            return false;
        };
        self.active.swap_remove(pos);
        self.nodes[id].state = NodeState::Evaluating;
        true
    }

    /// Returns an `Evaluating` node to the active set. This is the fault
    /// recovery primitive: when a worker crashes or its report is lost, the
    /// supervisor reopens the node so another rank can evaluate it (the
    /// node's payload — bounds, warm basis — still lives in the tree, which
    /// is what makes the tree the in-memory checkpoint of Section 2.1).
    /// Returns `false` unless the node was `Evaluating`.
    pub fn reopen(&mut self, id: NodeId) -> bool {
        if self.nodes[id].state != NodeState::Evaluating {
            return false;
        }
        self.nodes[id].state = NodeState::Active;
        self.active.push(id);
        self.stats.reopened += 1;
        self.stats.max_active = self.stats.max_active.max(self.active.len());
        true
    }

    /// Marks an evaluating node as a terminal leaf with the given state and
    /// bound.
    pub fn settle(&mut self, id: NodeId, state: NodeState, bound: f64) {
        debug_assert!(state.is_terminal_leaf());
        debug_assert_eq!(self.nodes[id].state, NodeState::Evaluating);
        self.nodes[id].state = state;
        self.nodes[id].bound = bound;
        match state {
            NodeState::Feasible => self.stats.feasible += 1,
            NodeState::Infeasible => self.stats.infeasible += 1,
            NodeState::Pruned => self.stats.pruned += 1,
            _ => unreachable!("settle called with non-terminal state"),
        }
    }

    /// Expands an evaluating node into children; each child becomes Active.
    /// Returns the new ids.
    pub fn branch(
        &mut self,
        id: NodeId,
        bound: f64,
        children: impl IntoIterator<Item = (String, D)>,
    ) -> Vec<NodeId> {
        debug_assert_eq!(self.nodes[id].state, NodeState::Evaluating);
        self.nodes[id].state = NodeState::Branched;
        self.nodes[id].bound = bound;
        self.stats.branched += 1;
        let depth = self.nodes[id].depth + 1;
        let mut ids = Vec::new();
        for (label, data) in children {
            let cid = self.nodes.len();
            self.nodes.push(Node {
                id: cid,
                parent: Some(id),
                depth,
                state: NodeState::Active,
                bound,
                children: Vec::new(),
                label,
                data,
            });
            self.active.push(cid);
            self.stats.created += 1;
            self.stats.max_depth = self.stats.max_depth.max(depth);
            ids.push(cid);
        }
        self.nodes[id].children = ids.clone();
        self.stats.max_active = self.stats.max_active.max(self.active.len());
        ids
    }

    /// Prunes every *active* node whose inherited bound cannot beat
    /// `incumbent` (maximize sense: bound ≤ incumbent + tol). Returns the
    /// number pruned. This is global bound-pruning after a new incumbent.
    pub fn prune_dominated(&mut self, incumbent: f64, tol: f64) -> usize {
        let mut pruned = 0;
        let mut keep = Vec::with_capacity(self.active.len());
        for &id in &self.active {
            if self.nodes[id].bound <= incumbent + tol {
                self.nodes[id].state = NodeState::Pruned;
                self.stats.pruned += 1;
                pruned += 1;
            } else {
                keep.push(id);
            }
        }
        self.active = keep;
        pruned
    }

    /// Like [`Self::prune_dominated`], but only prunes active nodes for
    /// which `eligible` holds. The hierarchical cluster uses this for
    /// *group-scoped* pruning: a sub-supervisor that learns a new incumbent
    /// may only prune the frontier it owns — other groups prune when the
    /// root's broadcast reaches them, so pruning power honestly lags the
    /// modeled message latency.
    pub fn prune_dominated_where<F>(&mut self, incumbent: f64, tol: f64, eligible: F) -> usize
    where
        F: Fn(&Node<D>) -> bool,
    {
        let mut pruned = 0;
        let mut keep = Vec::with_capacity(self.active.len());
        for &id in &self.active {
            if self.nodes[id].bound <= incumbent + tol && eligible(&self.nodes[id]) {
                self.nodes[id].state = NodeState::Pruned;
                self.stats.pruned += 1;
                pruned += 1;
            } else {
                keep.push(id);
            }
        }
        self.active = keep;
        pruned
    }

    /// Best (largest) bound among open nodes — the global dual bound.
    /// `None` when no work remains.
    pub fn best_open_bound(&self) -> Option<f64> {
        self.active
            .iter()
            .map(|&id| self.nodes[id].bound)
            .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))))
    }

    /// Approximate bytes to store the tree's nodes on a device (Strategy 1
    /// accounting).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * self.node_bytes
    }

    /// Verifies the Figure-1 completion invariant: when no active nodes
    /// remain, every node is Feasible, Infeasible, Pruned, or Branched.
    pub fn all_settled(&self) -> bool {
        !self.has_active()
            && self
                .nodes
                .iter()
                .all(|n| n.state.is_terminal_leaf() || n.state == NodeState::Branched)
    }

    /// Iterator over all nodes.
    pub fn iter(&self) -> impl Iterator<Item = &Node<D>> {
        self.nodes.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level_tree() -> SearchTree<u32> {
        let mut t = SearchTree::with_root(0u32, 64);
        assert!(t.begin_evaluation(0));
        t.branch(0, 10.0, [("x0 ≤ 0".into(), 1), ("x0 ≥ 1".into(), 2)]);
        t
    }

    #[test]
    fn root_initialization() {
        let t = SearchTree::with_root(7u32, 100);
        assert_eq!(t.len(), 1);
        assert_eq!(t.root(), 0);
        assert!(t.has_active());
        assert_eq!(t.node(0).state, NodeState::Active);
        assert_eq!(t.node(0).bound, f64::INFINITY);
        assert_eq!(t.approx_bytes(), 100);
        assert!(t.is_empty());
    }

    #[test]
    fn branch_creates_active_children() {
        let t = two_level_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.active_ids(), &[1, 2]);
        assert_eq!(t.node(0).state, NodeState::Branched);
        assert_eq!(t.node(1).parent, Some(0));
        assert_eq!(t.node(1).depth, 1);
        assert_eq!(t.node(1).bound, 10.0, "children inherit the parent bound");
        assert_eq!(t.node(0).children, vec![1, 2]);
        assert_eq!(t.stats().created, 3);
        assert_eq!(t.stats().max_depth, 1);
    }

    #[test]
    fn begin_evaluation_only_once() {
        let mut t = two_level_tree();
        assert!(t.begin_evaluation(1));
        assert!(!t.begin_evaluation(1), "node already off the active set");
        assert_eq!(t.node(1).state, NodeState::Evaluating);
        assert_eq!(t.active_ids(), &[2]);
    }

    #[test]
    fn settle_updates_stats() {
        let mut t = two_level_tree();
        t.begin_evaluation(1);
        t.settle(1, NodeState::Feasible, 8.0);
        t.begin_evaluation(2);
        t.settle(2, NodeState::Infeasible, f64::NEG_INFINITY);
        assert_eq!(t.stats().feasible, 1);
        assert_eq!(t.stats().infeasible, 1);
        assert!(t.all_settled());
    }

    #[test]
    fn prune_dominated_respects_bounds() {
        let mut t = two_level_tree();
        // Children carry bound 10. An incumbent of 10 dominates both.
        let pruned = t.prune_dominated(10.0, 1e-9);
        assert_eq!(pruned, 2);
        assert!(!t.has_active());
        assert_eq!(t.stats().pruned, 2);
        assert!(t.all_settled());
        // No active nodes → no open bound.
        assert_eq!(t.best_open_bound(), None);
    }

    #[test]
    fn prune_keeps_improving_nodes() {
        let mut t = two_level_tree();
        t.node_mut(1).bound = 20.0;
        let pruned = t.prune_dominated(15.0, 1e-9);
        assert_eq!(pruned, 1);
        assert_eq!(t.active_ids(), &[1]);
        assert_eq!(t.best_open_bound(), Some(20.0));
    }

    #[test]
    fn scoped_prune_only_touches_eligible_nodes() {
        let mut t = two_level_tree();
        // Both children carry bound 10; prune only the even-id one.
        let pruned = t.prune_dominated_where(10.0, 1e-9, |n| n.id % 2 == 0);
        assert_eq!(pruned, 1);
        assert_eq!(t.active_ids(), &[1]);
        assert_eq!(t.node(2).state, NodeState::Pruned);
        // The survivor is still prunable by an unscoped pass.
        assert_eq!(t.prune_dominated(10.0, 1e-9), 1);
        assert!(t.all_settled());
    }

    #[test]
    fn all_settled_false_while_open() {
        let t = two_level_tree();
        assert!(!t.all_settled());
    }

    #[test]
    fn reopen_returns_lost_evaluation_to_active_set() {
        let mut t = two_level_tree();
        assert!(t.begin_evaluation(1));
        assert_eq!(t.active_ids(), &[2]);
        assert!(t.reopen(1), "evaluating node reopens");
        assert_eq!(t.node(1).state, NodeState::Active);
        assert!(t.active_ids().contains(&1));
        assert_eq!(t.stats().reopened, 1);
        // Only Evaluating nodes can be reopened.
        assert!(!t.reopen(1), "already active");
        t.begin_evaluation(1);
        t.settle(1, NodeState::Pruned, 0.0);
        assert!(!t.reopen(1), "settled node stays settled");
    }
}
