//! # gmip-tree
//!
//! The branch-and-bound tree substrate for the `gmip` MIP solver (paper
//! Sections 2.1, 5.3, and Figure 1):
//!
//! * [`node`] — node lifecycle (active → evaluating → feasible/infeasible/
//!   pruned/branched);
//! * [`tree`] — the arena-backed [`tree::SearchTree`] with active-set
//!   tracking, bound pruning, and Strategy-1 device-memory accounting;
//! * [`policy`] — node-selection policies, including the GPU-aware
//!   [`policy::ReuseAffinity`] scheduler of Section 5.3;
//! * [`snapshot`] — consistent snapshots (Section 2.1) with validation;
//! * [`render`] — the ASCII solution-tree rendering reproducing Figure 1;
//! * [`stats`] — tree counters;
//! * [`ivm`] — the Integer-Vector-Matrix constant-memory permutation-tree
//!   encoding of the related work (Gmys et al.), with a flow-shop
//!   branch-and-bound driving it.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ivm;
pub mod node;
pub mod policy;
pub mod render;
pub mod snapshot;
pub mod stats;
pub mod tree;

pub use ivm::{solve_flowshop_ivm, FlowShop, IvmStats, IvmTree};
pub use node::{Node, NodeId, NodeState};
pub use policy::{BestFirst, BreadthFirst, DepthFirst, NodeSelection, ReuseAffinity};
pub use snapshot::{capture, completion_invariant, validate, Snapshot, SnapshotError};
pub use stats::TreeStats;
pub use tree::SearchTree;
