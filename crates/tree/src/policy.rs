//! Node-selection policies.
//!
//! Section 5.3 of the paper: reusing the device-resident matrix across tree
//! nodes "may warrant the use of a GPU-specific scheduling policy that
//! picks the next node to evaluate from the branch-and-cut tree", i.e. a
//! policy *qualitatively different* from a traditional CPU solver's.
//! [`ReuseAffinity`] is that policy: it prefers nodes close (in tree
//! distance) to the last evaluated node, so consecutive LPs share most of
//! their matrix state on the device. [`BestFirst`]/[`DepthFirst`]/
//! [`BreadthFirst`] are the conventional baselines it is compared against
//! in experiment E3c.

use crate::node::NodeId;
use crate::tree::SearchTree;

/// A strategy for picking the next active node to evaluate.
pub trait NodeSelection<D> {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Picks the next node from the tree's active set; `None` when no work
    /// remains. Must be deterministic for reproducibility.
    fn select(&mut self, tree: &SearchTree<D>) -> Option<NodeId>;

    /// Informs the policy that `id` was just evaluated (affinity state).
    fn notify_evaluated(&mut self, _id: NodeId) {}
}

/// Best-bound-first: the node with the largest relaxation bound
/// (ties → lowest id). Minimizes evaluated nodes but hops around the tree.
#[derive(Debug, Default, Clone)]
pub struct BestFirst;

impl<D> NodeSelection<D> for BestFirst {
    fn name(&self) -> &'static str {
        "best-first"
    }

    fn select(&mut self, tree: &SearchTree<D>) -> Option<NodeId> {
        tree.active_ids().iter().copied().min_by(|&a, &b| {
            let (ba, bb) = (tree.node(a).bound, tree.node(b).bound);
            // max bound first; tie → lowest id
            bb.partial_cmp(&ba).unwrap().then(a.cmp(&b))
        })
    }
}

/// Depth-first: the deepest node (ties → highest id, LIFO-like). Finds
/// incumbents fast with minimal memory.
#[derive(Debug, Default, Clone)]
pub struct DepthFirst;

impl<D> NodeSelection<D> for DepthFirst {
    fn name(&self) -> &'static str {
        "depth-first"
    }

    fn select(&mut self, tree: &SearchTree<D>) -> Option<NodeId> {
        tree.active_ids().iter().copied().max_by(|&a, &b| {
            let (da, db) = (tree.node(a).depth, tree.node(b).depth);
            da.cmp(&db).then(a.cmp(&b))
        })
    }
}

/// Breadth-first: the shallowest node (ties → lowest id). A poor-locality
/// baseline.
#[derive(Debug, Default, Clone)]
pub struct BreadthFirst;

impl<D> NodeSelection<D> for BreadthFirst {
    fn name(&self) -> &'static str {
        "breadth-first"
    }

    fn select(&mut self, tree: &SearchTree<D>) -> Option<NodeId> {
        tree.active_ids().iter().copied().min_by(|&a, &b| {
            let (da, db) = (tree.node(a).depth, tree.node(b).depth);
            da.cmp(&db).then(a.cmp(&b))
        })
    }
}

/// The GPU-aware reuse-affinity policy (Section 5.3): picks the active node
/// with the smallest tree distance to the last evaluated node (ties → best
/// bound, then lowest id). Consecutive nodes then share a nearby common
/// ancestor, so their LP bases differ by few bound changes and the
/// device-resident matrix state is maximally reusable.
#[derive(Debug, Default, Clone)]
pub struct ReuseAffinity {
    last: Option<NodeId>,
}

impl ReuseAffinity {
    /// Tree distance between nodes `a` and `b` (edges via their LCA).
    fn distance<D>(tree: &SearchTree<D>, a: NodeId, b: NodeId) -> usize {
        let mut pa = a;
        let mut pb = b;
        let mut da = tree.node(a).depth;
        let mut db = tree.node(b).depth;
        let mut dist = 0;
        while da > db {
            pa = tree.node(pa).parent.expect("depth > 0 has parent");
            da -= 1;
            dist += 1;
        }
        while db > da {
            pb = tree.node(pb).parent.expect("depth > 0 has parent");
            db -= 1;
            dist += 1;
        }
        while pa != pb {
            pa = tree.node(pa).parent.expect("roots are unique");
            pb = tree.node(pb).parent.expect("roots are unique");
            dist += 2;
        }
        dist
    }
}

impl<D> NodeSelection<D> for ReuseAffinity {
    fn name(&self) -> &'static str {
        "reuse-affinity"
    }

    fn select(&mut self, tree: &SearchTree<D>) -> Option<NodeId> {
        let Some(last) = self.last else {
            return BestFirst.select(tree);
        };
        tree.active_ids().iter().copied().min_by(|&a, &b| {
            let dist_a = Self::distance(tree, last, a);
            let dist_b = Self::distance(tree, last, b);
            dist_a
                .cmp(&dist_b)
                .then_with(|| {
                    tree.node(b)
                        .bound
                        .partial_cmp(&tree.node(a).bound)
                        .expect("bounds are never NaN")
                })
                .then(a.cmp(&b))
        })
    }

    fn notify_evaluated(&mut self, id: NodeId) {
        self.last = Some(id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds:          root(0)
    ///                 /      \
    ///              n1(b=5)   n2(b=9)
    ///              /    \
    ///          n3(b=4)  n4(b=5)
    /// with n2, n3, n4 active.
    fn sample_tree() -> SearchTree<()> {
        let mut t = SearchTree::with_root((), 64);
        t.begin_evaluation(0);
        let kids = t.branch(0, 10.0, [("L".into(), ()), ("R".into(), ())]);
        let (n1, n2) = (kids[0], kids[1]);
        t.node_mut(n2).bound = 9.0;
        t.begin_evaluation(n1);
        let kids2 = t.branch(n1, 5.0, [("LL".into(), ()), ("LR".into(), ())]);
        t.node_mut(kids2[0]).bound = 4.0;
        t.node_mut(kids2[1]).bound = 5.0;
        t
    }

    #[test]
    fn best_first_picks_largest_bound() {
        let t = sample_tree();
        let mut p = BestFirst;
        assert_eq!(NodeSelection::<()>::select(&mut p, &t), Some(2)); // bound 9
    }

    #[test]
    fn depth_first_goes_deep() {
        let t = sample_tree();
        let mut p = DepthFirst;
        // Depth-2 nodes are 3 and 4; highest id wins.
        assert_eq!(NodeSelection::<()>::select(&mut p, &t), Some(4));
    }

    #[test]
    fn breadth_first_stays_shallow() {
        let t = sample_tree();
        let mut p = BreadthFirst;
        assert_eq!(NodeSelection::<()>::select(&mut p, &t), Some(2)); // depth 1
    }

    #[test]
    fn reuse_affinity_prefers_nearby() {
        let mut t = sample_tree();
        let mut p = ReuseAffinity::default();
        // No history → best-first → node 2.
        assert_eq!(NodeSelection::<()>::select(&mut p, &t), Some(2));
        // Evaluate node 3 (deep left): its sibling 4 (distance 2) is closer
        // than node 2 (distance 3).
        t.begin_evaluation(3);
        NodeSelection::<()>::notify_evaluated(&mut p, 3);
        assert_eq!(NodeSelection::<()>::select(&mut p, &t), Some(4));
    }

    #[test]
    fn distance_computation() {
        let t = sample_tree();
        assert_eq!(ReuseAffinity::distance(&t, 3, 4), 2); // siblings
        assert_eq!(ReuseAffinity::distance(&t, 3, 2), 3); // across the root
        assert_eq!(ReuseAffinity::distance(&t, 0, 3), 2);
        assert_eq!(ReuseAffinity::distance(&t, 3, 3), 0);
    }

    #[test]
    fn empty_tree_returns_none() {
        let mut t = SearchTree::with_root((), 64);
        t.begin_evaluation(0);
        t.settle(0, crate::node::NodeState::Infeasible, f64::NEG_INFINITY);
        let mut p = BestFirst;
        assert_eq!(NodeSelection::<()>::select(&mut p, &t), None);
        let mut r = ReuseAffinity::default();
        assert_eq!(NodeSelection::<()>::select(&mut r, &t), None);
    }
}
