//! Consistent snapshots of the branch-and-bound tree.
//!
//! Paper, Section 2.1: "A consistent snapshot of the branch-and-bound tree
//! is defined as the set of leaves that preserves the optimal solution to
//! the problem." Sequentially, the set of open leaves after any node
//! completes is such a snapshot; in parallel, nodes being evaluated and
//! nodes in transit between processors must be accounted for
//! (`gmip-parallel` builds its distributed snapshot protocol on this type).

use crate::node::{NodeId, NodeState};
use crate::tree::SearchTree;

/// A snapshot: the frontier of subproblems that together preserve the
/// optimum, plus the incumbent objective at capture time (if any).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Ids of the frontier nodes (open work at capture time).
    pub frontier: Vec<NodeId>,
    /// Incumbent objective at capture time (maximize sense).
    pub incumbent: Option<f64>,
}

impl Snapshot {
    /// Number of frontier subproblems.
    pub fn len(&self) -> usize {
        self.frontier.len()
    }

    /// Whether the snapshot carries no outstanding work (search finished).
    pub fn is_empty(&self) -> bool {
        self.frontier.is_empty()
    }
}

/// Captures the sequential consistent snapshot: all open nodes (Active and
/// Evaluating — a sequential engine has at most one of the latter), sorted
/// by id for determinism.
pub fn capture<D>(tree: &SearchTree<D>, incumbent: Option<f64>) -> Snapshot {
    let mut frontier: Vec<NodeId> = tree
        .iter()
        .filter(|n| n.state.is_open())
        .map(|n| n.id)
        .collect();
    frontier.sort_unstable();
    Snapshot {
        frontier,
        incumbent,
    }
}

/// Errors found by [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A frontier node is not open in the tree.
    NotOpen(NodeId),
    /// An open node in the tree is missing from the frontier (lost work —
    /// solving only the snapshot would not preserve the optimum).
    MissingOpen(NodeId),
    /// A frontier node is an ancestor of another (double-counted work).
    Nested {
        /// The ancestor node.
        ancestor: NodeId,
        /// Its frontier descendant.
        descendant: NodeId,
    },
}

/// Validates a snapshot against a tree: every frontier node must be open,
/// every open node must be covered, and no frontier node may be an ancestor
/// of another.
pub fn validate<D>(tree: &SearchTree<D>, snap: &Snapshot) -> Result<(), SnapshotError> {
    for &id in &snap.frontier {
        if !tree.node(id).state.is_open() {
            return Err(SnapshotError::NotOpen(id));
        }
    }
    let in_frontier: std::collections::HashSet<NodeId> = snap.frontier.iter().copied().collect();
    for n in tree.iter() {
        if n.state.is_open() && !in_frontier.contains(&n.id) {
            return Err(SnapshotError::MissingOpen(n.id));
        }
    }
    // Ancestor check: walk each frontier node's ancestry.
    for &id in &snap.frontier {
        let mut cur = tree.node(id).parent;
        while let Some(p) = cur {
            if in_frontier.contains(&p) {
                return Err(SnapshotError::Nested {
                    ancestor: p,
                    descendant: id,
                });
            }
            cur = tree.node(p).parent;
        }
    }
    Ok(())
}

/// Verifies the paper's completion property: "by the completion of the
/// entire search, no nodes remain tagged as active — all of them are
/// converted to feasible, infeasible or pruned" (interior nodes are
/// Branched).
pub fn completion_invariant<D>(tree: &SearchTree<D>) -> bool {
    tree.iter().all(|n| {
        matches!(
            n.state,
            NodeState::Feasible | NodeState::Infeasible | NodeState::Pruned | NodeState::Branched
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mid_search_tree() -> SearchTree<()> {
        let mut t = SearchTree::with_root((), 64);
        t.begin_evaluation(0);
        t.branch(0, 10.0, [("L".into(), ()), ("R".into(), ())]);
        t.begin_evaluation(1);
        t.settle(1, NodeState::Feasible, 7.0);
        t
    }

    #[test]
    fn capture_collects_open_nodes() {
        let t = mid_search_tree();
        let s = capture(&t, Some(7.0));
        assert_eq!(s.frontier, vec![2]);
        assert_eq!(s.incumbent, Some(7.0));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert!(validate(&t, &s).is_ok());
    }

    #[test]
    fn capture_includes_evaluating_nodes() {
        let mut t = mid_search_tree();
        t.begin_evaluation(2);
        let s = capture(&t, None);
        assert_eq!(s.frontier, vec![2]);
        assert!(validate(&t, &s).is_ok());
    }

    #[test]
    fn missing_open_detected() {
        let t = mid_search_tree();
        let s = Snapshot {
            frontier: vec![],
            incumbent: None,
        };
        assert_eq!(validate(&t, &s), Err(SnapshotError::MissingOpen(2)));
    }

    #[test]
    fn not_open_detected() {
        let t = mid_search_tree();
        let s = Snapshot {
            frontier: vec![1, 2],
            incumbent: None,
        };
        assert_eq!(validate(&t, &s), Err(SnapshotError::NotOpen(1)));
    }

    #[test]
    fn nested_detected() {
        // Build a deeper tree and fake a nested frontier.
        let mut t = SearchTree::with_root((), 64);
        t.begin_evaluation(0);
        t.branch(0, 5.0, [("L".into(), ())]);
        // Frontier claims both the root and its child — but the root is
        // Branched (not open), so NotOpen fires first; craft instead a case
        // with two open levels via a second branch.
        let mut t2 = SearchTree::with_root((), 64);
        t2.begin_evaluation(0);
        let kids = t2.branch(0, 5.0, [("L".into(), ()), ("R".into(), ())]);
        t2.begin_evaluation(kids[0]);
        t2.branch(kids[0], 4.0, [("LL".into(), ())]);
        // Manually corrupt: mark kids[0] open again.
        t2.node_mut(kids[0]).state = NodeState::Active;
        let s = capture(&t2, None);
        assert!(matches!(
            validate(&t2, &s),
            Err(SnapshotError::Nested { .. })
        ));
        let _ = t; // silence
    }

    #[test]
    fn completion_invariant_holds_after_full_search() {
        let mut t = mid_search_tree();
        t.begin_evaluation(2);
        t.settle(2, NodeState::Pruned, 6.0);
        assert!(completion_invariant(&t));
        assert!(capture(&t, Some(7.0)).is_empty());
    }

    #[test]
    fn completion_invariant_fails_mid_search() {
        let t = mid_search_tree();
        assert!(!completion_invariant(&t));
    }
}
