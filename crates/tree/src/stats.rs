//! Search-tree statistics.

/// Counters maintained by [`crate::tree::SearchTree`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Nodes ever created (including the root).
    pub created: usize,
    /// Nodes expanded into children.
    pub branched: usize,
    /// Leaves settled feasible.
    pub feasible: usize,
    /// Leaves settled infeasible.
    pub infeasible: usize,
    /// Leaves pruned by bound.
    pub pruned: usize,
    /// Deepest node created.
    pub max_depth: usize,
    /// Largest size of the active set (peak outstanding work — what the
    /// paper's Strategy 1 must fit in GPU memory).
    pub max_active: usize,
    /// Evaluations lost to faults and returned to the active set (each one
    /// is a subproblem evaluated more than once).
    pub reopened: usize,
}

impl TreeStats {
    /// Total settled leaves.
    pub fn leaves(&self) -> usize {
        self.feasible + self.infeasible + self.pruned
    }

    /// Nodes evaluated (settled leaves + branched interiors).
    pub fn evaluated(&self) -> usize {
        self.leaves() + self.branched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = TreeStats {
            created: 7,
            branched: 3,
            feasible: 1,
            infeasible: 1,
            pruned: 2,
            max_depth: 2,
            max_active: 4,
            reopened: 0,
        };
        assert_eq!(s.leaves(), 4);
        assert_eq!(s.evaluated(), 7);
    }
}
