//! Branch-and-bound tree nodes.
//!
//! Mirrors the node lifecycle of the paper's Figure 1: "All leaves in the
//! tree are evaluated and tagged as feasible, infeasible or pruned.
//! Intermediate nodes are tagged by their LP solutions and branching
//! variables. Note that some leaves might be tagged as active during
//! search. However, by the completion of the entire search, no nodes remain
//! tagged as active."

/// Identifier of a node within one [`crate::tree::SearchTree`] (arena index).
pub type NodeId = usize;

/// Lifecycle state of a tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Created but not yet evaluated (an "active" leaf in the paper's
    /// terminology).
    Active,
    /// Currently being evaluated (LP relaxation in progress) — the state
    /// that makes parallel consistent snapshots non-trivial (Section 2.1a).
    Evaluating,
    /// Evaluated; its relaxation was integer-feasible (a feasible leaf).
    Feasible,
    /// Evaluated; its relaxation was infeasible (an infeasible leaf).
    Infeasible,
    /// Evaluated; its bound was dominated by the incumbent (a pruned leaf).
    Pruned,
    /// Evaluated fractional and expanded into children (an interior node).
    Branched,
}

impl NodeState {
    /// Whether the node is a settled leaf (terminal in the finished tree).
    pub fn is_terminal_leaf(self) -> bool {
        matches!(
            self,
            NodeState::Feasible | NodeState::Infeasible | NodeState::Pruned
        )
    }

    /// Whether the node still represents outstanding work.
    pub fn is_open(self) -> bool {
        matches!(self, NodeState::Active | NodeState::Evaluating)
    }

    /// The single-character tag used by the Figure-1 renderer.
    pub fn tag(self) -> char {
        match self {
            NodeState::Active => 'A',
            NodeState::Evaluating => 'E',
            NodeState::Feasible => 'F',
            NodeState::Infeasible => 'I',
            NodeState::Pruned => 'P',
            NodeState::Branched => 'B',
        }
    }
}

/// One node of the branch-and-bound tree, carrying solver-defined payload
/// `D` (branch decisions, warm-start basis, etc.).
#[derive(Debug, Clone)]
pub struct Node<D> {
    /// This node's id.
    pub id: NodeId,
    /// Parent id (`None` for the root).
    pub parent: Option<NodeId>,
    /// Depth (root = 0).
    pub depth: usize,
    /// Lifecycle state.
    pub state: NodeState,
    /// The relaxation bound established for this node (in maximize sense;
    /// `+inf` until evaluated). Used for best-first selection and pruning.
    pub bound: f64,
    /// Children ids (empty unless `Branched`).
    pub children: Vec<NodeId>,
    /// Short human-readable label of the branching decision that created
    /// this node (shown by the Figure-1 renderer), e.g. `"x2 ≤ 0"`.
    pub label: String,
    /// Solver payload.
    pub data: D,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_classification() {
        assert!(NodeState::Feasible.is_terminal_leaf());
        assert!(NodeState::Infeasible.is_terminal_leaf());
        assert!(NodeState::Pruned.is_terminal_leaf());
        assert!(!NodeState::Branched.is_terminal_leaf());
        assert!(NodeState::Active.is_open());
        assert!(NodeState::Evaluating.is_open());
        assert!(!NodeState::Feasible.is_open());
    }

    #[test]
    fn tags_are_distinct() {
        let tags = [
            NodeState::Active.tag(),
            NodeState::Evaluating.tag(),
            NodeState::Feasible.tag(),
            NodeState::Infeasible.tag(),
            NodeState::Pruned.tag(),
            NodeState::Branched.tag(),
        ];
        let mut dedup = tags.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), tags.len());
    }
}
