//! The Integer-Vector-Matrix (IVM) tree encoding for permutation
//! branch and bound.
//!
//! Paper, Section 2.3: "Gmys et al. presented a pure GPU implementation of
//! branch-and-bound … The key principle of their approach is the use of an
//! Integer Vector Matrix (IVM) representation of the branch-and-bound
//! problem tree rather than the linked list used in previous
//! implementations. The IVM representation is well-suited for the GPU
//! programming due to its memory structure."
//!
//! For a permutation problem over `n` items, the entire depth-first search
//! state lives in **fixed O(n²) memory**:
//!
//! * a *matrix* `M` whose row `d` lists the candidate items still available
//!   at depth `d` (row 0 = all `n` items, row `d` has `n − d` entries);
//! * an integer *vector* `I` where `I[d]` indexes the chosen candidate in
//!   row `d`;
//! * the current depth.
//!
//! Advancing to the next leaf, pruning a subtree, and decoding the current
//! prefix are all index arithmetic over these dense arrays — no allocation,
//! no pointers — which is exactly what makes the encoding GPU-friendly and
//! why [`IvmTree::size_bytes`] is a constant while a pointer-based tree
//! grows without bound.

/// Fixed-memory DFS state over permutations of `0..n`.
#[derive(Debug, Clone)]
pub struct IvmTree {
    n: usize,
    /// Row-major candidate matrix; row `d` occupies `[d*n, d*n + (n-d))`.
    m: Vec<u32>,
    /// Selection index per depth.
    i: Vec<u32>,
    /// Current depth (items fixed so far is `depth + 1` when positioned).
    depth: usize,
    /// Whether the cursor sits on a valid (not yet exhausted) node.
    active: bool,
}

impl IvmTree {
    /// Creates the tree positioned on the first leaf path's first decision
    /// (prefix `[0]`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one item");
        let mut m = vec![0u32; n * n];
        for (j, slot) in m[..n].iter_mut().enumerate() {
            *slot = j as u32;
        }
        let mut t = Self {
            n,
            m,
            i: vec![0; n],
            depth: 0,
            active: true,
        };
        t.fill_row_below();
        t
    }

    /// Number of items being permuted.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Whether the search still has nodes to visit.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Current depth (0-based; the prefix has `depth + 1` fixed items).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The memory footprint of the entire search state — constant, the
    /// property the paper's related work exploits on GPUs.
    pub fn size_bytes(&self) -> usize {
        self.m.len() * 4 + self.i.len() * 4 + 16
    }

    /// The currently fixed prefix (selected item per depth).
    pub fn prefix(&self) -> Vec<u32> {
        (0..=self.depth)
            .map(|d| self.m[d * self.n + self.i[d] as usize])
            .collect()
    }

    /// Row `d`'s remaining-candidate count.
    fn row_len(&self, d: usize) -> usize {
        self.n - d
    }

    /// Populates row `depth+1` from row `depth` minus the selected item.
    fn fill_row_below(&mut self) {
        let d = self.depth;
        if d + 1 >= self.n {
            return;
        }
        let sel = self.i[d] as usize;
        let (src_start, dst_start) = (d * self.n, (d + 1) * self.n);
        for k in 0..self.row_len(d + 1) {
            let from = if k < sel { k } else { k + 1 };
            self.m[dst_start + k] = self.m[src_start + from];
        }
    }

    /// Descends one level (fixing the current selection) if not at a leaf;
    /// returns `true` if descended.
    pub fn descend(&mut self) -> bool {
        if !self.active || self.depth + 1 >= self.n {
            return false;
        }
        self.depth += 1;
        self.i[self.depth] = 0;
        self.fill_row_below();
        true
    }

    /// Whether the cursor is on a full permutation (leaf).
    pub fn at_leaf(&self) -> bool {
        self.active && self.depth + 1 == self.n
    }

    /// Skips the current node's entire subtree (prune) and moves to the
    /// next sibling, backtracking as needed. Returns `false` when the
    /// search is exhausted.
    pub fn prune_and_advance(&mut self) -> bool {
        if !self.active {
            return false;
        }
        loop {
            let d = self.depth;
            if (self.i[d] as usize) + 1 < self.row_len(d) {
                self.i[d] += 1;
                self.fill_row_below();
                return true;
            }
            if d == 0 {
                self.active = false;
                return false;
            }
            self.depth -= 1;
        }
    }

    /// Exhaustive count of remaining leaves under the current cursor state
    /// (test helper; factorial growth — small `n` only).
    pub fn count_leaves(&mut self) -> usize {
        let mut count = 0;
        while self.active {
            if self.at_leaf() {
                count += 1;
                if !self.prune_and_advance() {
                    break;
                }
            } else {
                self.descend();
            }
        }
        count
    }
}

/// A permutation flow-shop instance: `jobs × machines` processing times.
/// The related-work benchmark family of Gmys et al. and Chakroun et al.
#[derive(Debug, Clone)]
pub struct FlowShop {
    /// `times[j][k]` = processing time of job `j` on machine `k`.
    pub times: Vec<Vec<u32>>,
}

impl FlowShop {
    /// Builds an instance from a time matrix.
    pub fn new(times: Vec<Vec<u32>>) -> Self {
        assert!(!times.is_empty(), "need jobs");
        let m = times[0].len();
        assert!(m >= 1 && times.iter().all(|r| r.len() == m), "ragged times");
        Self { times }
    }

    /// Deterministic random instance.
    pub fn random(jobs: usize, machines: usize, seed: u64) -> Self {
        // Tiny xorshift for independence from the rand crate in this crate.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 90 + 10) as u32
        };
        Self::new(
            (0..jobs)
                .map(|_| (0..machines).map(|_| next()).collect())
                .collect(),
        )
    }

    /// Number of jobs.
    pub fn jobs(&self) -> usize {
        self.times.len()
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.times[0].len()
    }

    /// Makespan of a complete (or partial) job sequence.
    pub fn makespan(&self, seq: &[u32]) -> u32 {
        let m = self.machines();
        let mut finish = vec![0u32; m];
        for &j in seq {
            let row = &self.times[j as usize];
            finish[0] += row[0];
            for k in 1..m {
                finish[k] = finish[k].max(finish[k - 1]) + row[k];
            }
        }
        finish[m - 1]
    }

    /// A simple admissible lower bound for a prefix: the prefix makespan
    /// plus, on the last machine, the total remaining work.
    pub fn lower_bound(&self, prefix: &[u32], remaining: &[u32]) -> u32 {
        let m = self.machines();
        let mut finish = vec![0u32; m];
        for &j in prefix {
            let row = &self.times[j as usize];
            finish[0] += row[0];
            for k in 1..m {
                finish[k] = finish[k].max(finish[k - 1]) + row[k];
            }
        }
        let tail: u32 = remaining
            .iter()
            .map(|&j| self.times[j as usize][m - 1])
            .sum();
        finish[m - 1] + tail
    }
}

/// Statistics of an IVM flow-shop solve.
#[derive(Debug, Clone, Default)]
pub struct IvmStats {
    /// Nodes visited (interior + leaves).
    pub nodes: usize,
    /// Subtrees pruned by bound.
    pub pruned: usize,
    /// Constant search-state bytes (the IVM footprint).
    pub state_bytes: usize,
}

/// Solves a flow shop exactly by IVM depth-first branch and bound.
/// Returns `(optimal makespan, optimal sequence, stats)`.
pub fn solve_flowshop_ivm(fs: &FlowShop) -> (u32, Vec<u32>, IvmStats) {
    let n = fs.jobs();
    let mut tree = IvmTree::new(n);
    let mut stats = IvmStats {
        state_bytes: tree.size_bytes(),
        ..Default::default()
    };
    let mut best = u32::MAX;
    let mut best_seq: Vec<u32> = Vec::new();

    while tree.is_active() {
        stats.nodes += 1;
        let prefix = tree.prefix();
        if tree.at_leaf() {
            let ms = fs.makespan(&prefix);
            if ms < best {
                best = ms;
                best_seq = prefix;
            }
            if !tree.prune_and_advance() {
                break;
            }
            continue;
        }
        // Bound the subtree.
        let d = tree.depth();
        let row_start = (d + 1) * n;
        let remaining: Vec<u32> = if d + 1 < n {
            tree.m[row_start..row_start + (n - d - 1)].to_vec()
        } else {
            Vec::new()
        };
        let lb = fs.lower_bound(&prefix, &remaining);
        if lb >= best {
            stats.pruned += 1;
            if !tree.prune_and_advance() {
                break;
            }
        } else {
            tree.descend();
        }
    }
    (best, best_seq, stats)
}

/// Brute-force flow-shop optimum (test oracle; small `n` only).
pub fn solve_flowshop_brute(fs: &FlowShop) -> u32 {
    fn permute(items: &mut Vec<u32>, k: usize, fs: &FlowShop, best: &mut u32) {
        if k == items.len() {
            *best = (*best).min(fs.makespan(items));
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, fs, best);
            items.swap(k, i);
        }
    }
    assert!(fs.jobs() <= 9, "brute force limited to small instances");
    let mut items: Vec<u32> = (0..fs.jobs() as u32).collect();
    let mut best = u32::MAX;
    permute(&mut items, 0, fs, &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ivm_enumerates_all_permutations() {
        for n in 1..=6usize {
            let mut t = IvmTree::new(n);
            let expected: usize = (1..=n).product();
            assert_eq!(t.count_leaves(), expected, "n = {n}");
        }
    }

    #[test]
    fn ivm_memory_is_constant() {
        let t = IvmTree::new(12);
        let bytes = t.size_bytes();
        assert_eq!(bytes, 12 * 12 * 4 + 12 * 4 + 16);
        // The footprint never changes during the search.
        let mut t2 = IvmTree::new(5);
        while t2.is_active() {
            assert_eq!(t2.size_bytes(), IvmTree::new(5).size_bytes());
            if t2.at_leaf() {
                if !t2.prune_and_advance() {
                    break;
                }
            } else {
                t2.descend();
            }
        }
    }

    #[test]
    fn prefix_decoding_is_a_valid_partial_permutation() {
        let mut t = IvmTree::new(4);
        t.descend();
        t.descend();
        let p = t.prefix();
        assert_eq!(p.len(), 3);
        let mut q = p.clone();
        q.sort_unstable();
        q.dedup();
        assert_eq!(q.len(), 3, "prefix has duplicates: {p:?}");
    }

    #[test]
    fn makespan_hand_example() {
        // 2 jobs, 2 machines: J0 = (3, 2), J1 = (1, 4).
        let fs = FlowShop::new(vec![vec![3, 2], vec![1, 4]]);
        // Order [0,1]: M1 finishes 3,4; M2: 5, then max(5,4)+4 = 9.
        assert_eq!(fs.makespan(&[0, 1]), 9);
        // Order [1,0]: M1: 1,4; M2: 5, then max(5,4)+2 = 7.
        assert_eq!(fs.makespan(&[1, 0]), 7);
    }

    #[test]
    fn ivm_bnb_matches_brute_force() {
        for seed in 0..4 {
            let fs = FlowShop::random(7, 3, seed);
            let (best, seq, stats) = solve_flowshop_ivm(&fs);
            assert_eq!(best, solve_flowshop_brute(&fs), "seed {seed}");
            assert_eq!(fs.makespan(&seq), best);
            assert_eq!(seq.len(), 7);
            // Pruning must have cut the 7! = 5040-leaf tree.
            assert!(stats.pruned > 0, "no pruning happened");
            assert!(stats.nodes < 5040 * 2);
        }
    }

    #[test]
    fn lower_bound_is_admissible() {
        let fs = FlowShop::random(6, 3, 9);
        // For every 2-job prefix, lb ≤ best completion of the prefix.
        let (best, _, _) = solve_flowshop_ivm(&fs);
        let all: Vec<u32> = (0..6).collect();
        for a in 0..6u32 {
            for b in 0..6u32 {
                if a == b {
                    continue;
                }
                let prefix = vec![a, b];
                let remaining: Vec<u32> =
                    all.iter().copied().filter(|&j| j != a && j != b).collect();
                let lb = fs.lower_bound(&prefix, &remaining);
                // Complete the prefix optimally by brute force over the rest.
                let mut best_completion = u32::MAX;
                let mut rem = remaining.clone();
                fn perm(
                    rem: &mut Vec<u32>,
                    k: usize,
                    prefix: &[u32],
                    fs: &FlowShop,
                    best: &mut u32,
                ) {
                    if k == rem.len() {
                        let mut full = prefix.to_vec();
                        full.extend_from_slice(rem);
                        *best = (*best).min(fs.makespan(&full));
                        return;
                    }
                    for i in k..rem.len() {
                        rem.swap(k, i);
                        perm(rem, k + 1, prefix, fs, best);
                        rem.swap(k, i);
                    }
                }
                perm(&mut rem, 0, &prefix, &fs, &mut best_completion);
                assert!(
                    lb <= best_completion,
                    "bound {lb} exceeds best completion {best_completion}"
                );
                let _ = best;
            }
        }
    }
}
