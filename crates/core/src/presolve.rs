//! Presolve: bound propagation, redundant-row elimination, and variable
//! fixing before the branch-and-cut search.
//!
//! Every CPU solver the paper benchmarks against (SCIP, Gurobi, Xpress)
//! leads with presolve, and it matters doubly on an accelerated platform:
//! each fixed variable shrinks the matrix that must be shipped to and kept
//! on the device (Section 3's memory-regime arithmetic), and each dropped
//! row shrinks every basis factorization. The techniques here are the
//! classic safe ones:
//!
//! * **activity-based row analysis** — rows whose worst-case activity can
//!   never violate them are dropped; rows that can never be satisfied prove
//!   infeasibility;
//! * **bound propagation** — per-row residual activities tighten variable
//!   bounds (with integral rounding — a lightweight form of the "probing"
//!   the paper lists among host-side techniques);
//! * **variable fixing** — variables whose bounds collapse are substituted
//!   out of the problem.
//!
//! All reductions are optimality-preserving; [`PresolveResult::postsolve`]
//! maps a reduced-space solution back to the original variables.

use gmip_problems::{Constraint, MipInstance, Sense};

const TOL: f64 = 1e-9;

/// The outcome of presolving an instance.
#[derive(Debug, Clone)]
pub struct PresolveResult {
    /// The reduced instance (valid only when `infeasible` is false).
    pub reduced: MipInstance,
    /// Proven infeasible during propagation.
    pub infeasible: bool,
    /// `(original_index, value)` for every fixed variable.
    pub fixed: Vec<(usize, f64)>,
    /// `kept[reduced_j]` = original index of reduced variable `j`.
    pub kept: Vec<usize>,
    /// Rows removed as redundant.
    pub rows_dropped: usize,
    /// Strict bound tightenings applied.
    pub bounds_tightened: usize,
}

impl PresolveResult {
    /// Maps a reduced-space point back to the original variable space.
    pub fn postsolve(&self, x_reduced: &[f64]) -> Vec<f64> {
        assert_eq!(x_reduced.len(), self.kept.len(), "reduced dimension");
        let n = self.kept.len() + self.fixed.len();
        let mut x = vec![0.0; n];
        for (j, &orig) in self.kept.iter().enumerate() {
            x[orig] = x_reduced[j];
        }
        for &(orig, v) in &self.fixed {
            x[orig] = v;
        }
        x
    }

    /// Number of variables eliminated.
    pub fn vars_fixed(&self) -> usize {
        self.fixed.len()
    }
}

/// Row activity bounds under the current variable bounds.
fn activity(coeffs: &[(usize, f64)], lb: &[f64], ub: &[f64]) -> (f64, f64) {
    let mut min = 0.0;
    let mut max = 0.0;
    for &(j, a) in coeffs {
        if a > 0.0 {
            min += a * lb[j];
            max += a * ub[j];
        } else {
            min += a * ub[j];
            max += a * lb[j];
        }
    }
    (min, max)
}

/// Presolves `instance` with up to `max_rounds` propagation rounds.
pub fn presolve(instance: &MipInstance, max_rounds: usize) -> PresolveResult {
    let n = instance.num_vars();
    let mut lb: Vec<f64> = instance.vars.iter().map(|v| v.lb).collect();
    let mut ub: Vec<f64> = instance.vars.iter().map(|v| v.ub).collect();
    let integral: Vec<bool> = instance.vars.iter().map(|v| v.ty.is_integral()).collect();
    let mut redundant = vec![false; instance.num_cons()];
    let mut bounds_tightened = 0usize;
    let mut infeasible = false;

    'rounds: for _ in 0..max_rounds {
        let mut changed = false;
        for (ci, con) in instance.cons.iter().enumerate() {
            if redundant[ci] {
                continue;
            }
            let (min_act, max_act) = activity(&con.coeffs, &lb, &ub);
            // Feasibility / redundancy by sense.
            match con.sense {
                Sense::Le => {
                    if min_act > con.rhs + TOL {
                        infeasible = true;
                        break 'rounds;
                    }
                    if max_act <= con.rhs + TOL {
                        redundant[ci] = true;
                        changed = true;
                        continue;
                    }
                }
                Sense::Ge => {
                    if max_act < con.rhs - TOL {
                        infeasible = true;
                        break 'rounds;
                    }
                    if min_act >= con.rhs - TOL {
                        redundant[ci] = true;
                        changed = true;
                        continue;
                    }
                }
                Sense::Eq => {
                    if min_act > con.rhs + TOL || max_act < con.rhs - TOL {
                        infeasible = true;
                        break 'rounds;
                    }
                }
            }
            // Bound propagation. For ≤ rows (and the ≤ side of =):
            // a_j > 0:  x_j ≤ (rhs − (min_act − a_j·lb_j)) / a_j
            // a_j < 0:  x_j ≥ (rhs − (min_act − a_j·ub_j)) / a_j
            // For ≥ rows (and the ≥ side of =), symmetric with max_act.
            let le_side = con.sense != Sense::Ge;
            let ge_side = con.sense != Sense::Le;
            for &(j, a) in &con.coeffs {
                if a.abs() < TOL {
                    continue;
                }
                if le_side && min_act.is_finite() {
                    if a > 0.0 {
                        let rest = min_act - a * lb[j];
                        let mut cand = (con.rhs - rest) / a;
                        if integral[j] {
                            cand = (cand + TOL).floor();
                        }
                        if cand < ub[j] - TOL {
                            ub[j] = cand;
                            bounds_tightened += 1;
                            changed = true;
                        }
                    } else {
                        let rest = min_act - a * ub[j];
                        let mut cand = (con.rhs - rest) / a;
                        if integral[j] {
                            cand = (cand - TOL).ceil();
                        }
                        if cand > lb[j] + TOL {
                            lb[j] = cand;
                            bounds_tightened += 1;
                            changed = true;
                        }
                    }
                }
                if ge_side && max_act.is_finite() {
                    if a > 0.0 {
                        let rest = max_act - a * ub[j];
                        let mut cand = (con.rhs - rest) / a;
                        if integral[j] {
                            cand = (cand - TOL).ceil();
                        }
                        if cand > lb[j] + TOL {
                            lb[j] = cand;
                            bounds_tightened += 1;
                            changed = true;
                        }
                    } else {
                        let rest = max_act - a * lb[j];
                        let mut cand = (con.rhs - rest) / a;
                        if integral[j] {
                            cand = (cand + TOL).floor();
                        }
                        if cand < ub[j] - TOL {
                            ub[j] = cand;
                            bounds_tightened += 1;
                            changed = true;
                        }
                    }
                }
                if lb[j] > ub[j] + 1e-7 {
                    infeasible = true;
                    break 'rounds;
                }
            }
        }
        if !changed {
            break;
        }
    }

    if infeasible {
        return PresolveResult {
            reduced: instance.clone(),
            infeasible: true,
            fixed: Vec::new(),
            kept: (0..n).collect(),
            rows_dropped: 0,
            bounds_tightened,
        };
    }

    // Fix collapsed variables.
    let mut fixed: Vec<(usize, f64)> = Vec::new();
    let mut kept: Vec<usize> = Vec::new();
    let mut new_index = vec![usize::MAX; n];
    for j in 0..n {
        if (ub[j] - lb[j]).abs() <= 1e-9 {
            let v = if integral[j] { lb[j].round() } else { lb[j] };
            fixed.push((j, v));
        } else {
            new_index[j] = kept.len();
            kept.push(j);
        }
    }

    // Rebuild the reduced instance.
    let mut reduced = MipInstance::new(format!("{}-presolved", instance.name), instance.objective);
    for &orig in &kept {
        let mut v = instance.vars[orig].clone();
        v.lb = lb[orig];
        v.ub = ub[orig];
        reduced.add_var(v);
    }
    let mut rows_dropped = 0usize;
    for (ci, con) in instance.cons.iter().enumerate() {
        if redundant[ci] {
            rows_dropped += 1;
            continue;
        }
        let mut rhs = con.rhs;
        let mut coeffs: Vec<(usize, f64)> = Vec::new();
        for &(j, a) in &con.coeffs {
            if new_index[j] == usize::MAX {
                let v = fixed
                    .iter()
                    .find(|&&(orig, _)| orig == j)
                    .map(|&(_, v)| v)
                    .expect("fixed variable recorded");
                rhs -= a * v;
            } else {
                coeffs.push((new_index[j], a));
            }
        }
        if coeffs.is_empty() {
            // Fully substituted row: constant feasibility check.
            let ok = match con.sense {
                Sense::Le => 0.0 <= rhs + 1e-7,
                Sense::Ge => 0.0 >= rhs - 1e-7,
                Sense::Eq => rhs.abs() <= 1e-7,
            };
            if !ok {
                return PresolveResult {
                    reduced: instance.clone(),
                    infeasible: true,
                    fixed,
                    kept,
                    rows_dropped,
                    bounds_tightened,
                };
            }
            rows_dropped += 1;
            continue;
        }
        reduced.add_con(Constraint::new(con.name.clone(), coeffs, con.sense, rhs));
    }

    PresolveResult {
        reduced,
        infeasible: false,
        fixed,
        kept,
        rows_dropped,
        bounds_tightened,
    }
}

/// Convenience: presolve, solve on the host baseline, postsolve. Returns
/// `(status, objective, x_original_space)`.
pub fn solve_host_with_presolve(
    instance: &MipInstance,
    cfg: crate::MipConfig,
) -> gmip_lp::LpResult<(crate::MipStatus, f64, Vec<f64>)> {
    let pre = presolve(instance, 5);
    if pre.infeasible {
        return Ok((crate::MipStatus::Infeasible, f64::NAN, Vec::new()));
    }
    if pre.kept.is_empty() {
        // Everything fixed: the remaining point is the only candidate.
        let x = pre.postsolve(&[]);
        return if instance.is_integer_feasible(&x, 1e-6) {
            Ok((crate::MipStatus::Optimal, instance.objective_value(&x), x))
        } else {
            Ok((crate::MipStatus::Infeasible, f64::NAN, Vec::new()))
        };
    }
    let mut solver = crate::MipSolver::host_baseline(pre.reduced.clone(), cfg);
    let r = solver.solve()?;
    match r.status {
        crate::MipStatus::Optimal | crate::MipStatus::NodeLimit if !r.x.is_empty() => {
            let x = pre.postsolve(&r.x);
            Ok((r.status, instance.objective_value(&x), x))
        }
        other => Ok((other, f64::NAN, Vec::new())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MipConfig, MipSolver, MipStatus};
    use gmip_problems::catalog::{infeasible_instance, small_suite};
    use gmip_problems::{Objective, Variable};

    #[test]
    fn redundant_rows_dropped() {
        let mut m = MipInstance::new("red", Objective::Maximize);
        m.add_var(Variable::binary("x", 1.0));
        m.add_var(Variable::binary("y", 1.0));
        // x + y ≤ 5 can never bind for binaries: redundant.
        m.add_con(Constraint::new(
            "loose",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Le,
            5.0,
        ));
        // x + y ≤ 1 binds.
        m.add_con(Constraint::new(
            "tight",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Le,
            1.0,
        ));
        let pre = presolve(&m, 3);
        assert!(!pre.infeasible);
        assert_eq!(pre.rows_dropped, 1);
        assert_eq!(pre.reduced.num_cons(), 1);
        assert_eq!(pre.reduced.num_vars(), 2);
    }

    #[test]
    fn bound_propagation_fixes_binaries() {
        let mut m = MipInstance::new("fix", Objective::Maximize);
        m.add_var(Variable::binary("x", 1.0));
        m.add_var(Variable::binary("y", 1.0));
        // 3x + y ≤ 2 forces x = 0 (x = 1 needs activity ≥ 3).
        m.add_con(Constraint::new(
            "c",
            vec![(0, 3.0), (1, 1.0)],
            Sense::Le,
            2.0,
        ));
        let pre = presolve(&m, 3);
        assert!(!pre.infeasible);
        assert_eq!(pre.vars_fixed(), 1);
        assert_eq!(pre.fixed[0], (0, 0.0));
        // The reduced instance has y only; the row became y ≤ 2 → redundant.
        assert_eq!(pre.reduced.num_vars(), 1);
        // Postsolve maps back.
        let x = pre.postsolve(&[1.0]);
        assert_eq!(x, vec![0.0, 1.0]);
    }

    #[test]
    fn infeasibility_detected() {
        let pre = presolve(&infeasible_instance(), 3);
        assert!(pre.infeasible);
    }

    #[test]
    fn ge_rows_force_fixings() {
        let mut m = MipInstance::new("force", Objective::Minimize);
        m.add_var(Variable::binary("x", 1.0));
        m.add_var(Variable::binary("y", 1.0));
        // x + y ≥ 2 forces both to 1.
        m.add_con(Constraint::new(
            "c",
            vec![(0, 1.0), (1, 1.0)],
            Sense::Ge,
            2.0,
        ));
        let pre = presolve(&m, 3);
        assert!(!pre.infeasible);
        assert_eq!(pre.vars_fixed(), 2);
        let x = pre.postsolve(&[]);
        assert_eq!(x, vec![1.0, 1.0]);
    }

    #[test]
    fn presolved_solves_match_direct_across_suite() {
        for entry in small_suite() {
            let mut direct = MipSolver::host_baseline(entry.instance.clone(), MipConfig::default());
            let dr = direct.solve().expect("direct");
            let (status, objective, x) =
                solve_host_with_presolve(&entry.instance, MipConfig::default()).expect("presolved");
            assert_eq!(dr.status, status, "{}", entry.id);
            if dr.status == MipStatus::Optimal {
                assert!(
                    (dr.objective - objective).abs() < 1e-5,
                    "{}: direct {} vs presolved {}",
                    entry.id,
                    dr.objective,
                    objective
                );
                assert!(entry.instance.is_integer_feasible(&x, 1e-5), "{}", entry.id);
            }
        }
    }

    #[test]
    fn presolve_shrinks_an_easy_instance() {
        // Knapsack with one oversized item: presolve fixes it to 0.
        let mut m = MipInstance::new("big-item", Objective::Maximize);
        m.add_var(Variable::binary("huge", 100.0));
        m.add_var(Variable::binary("a", 5.0));
        m.add_var(Variable::binary("b", 4.0));
        m.add_con(Constraint::new(
            "cap",
            vec![(0, 50.0), (1, 3.0), (2, 2.0)],
            Sense::Le,
            10.0,
        ));
        let pre = presolve(&m, 3);
        assert_eq!(pre.vars_fixed(), 1);
        assert_eq!(pre.fixed[0].0, 0);
        let (status, obj, x) = solve_host_with_presolve(&m, MipConfig::default()).expect("solve");
        assert_eq!(status, MipStatus::Optimal);
        assert_eq!(obj, 9.0);
        assert_eq!(x[0], 0.0);
    }
}
