//! Knapsack cover cuts.
//!
//! For a constraint `Σ wⱼ xⱼ ≤ b` over binary variables with `wⱼ > 0`, any
//! *cover* `C` (a set with `Σ_{j∈C} wⱼ > b`) yields the globally valid cut
//! `Σ_{j∈C} xⱼ ≤ |C| − 1`. Separation is the standard greedy on the
//! fractional point: prefer variables with large `xⱼ` (they contribute most
//! to violation), accumulate until the weights exceed the capacity.

use super::Cut;
use gmip_problems::{MipInstance, Sense, VarType};

/// Generates violated cover cuts at the fractional point `x`.
///
/// Only rows that are pure binary knapsacks (`≤` sense, all coefficients
/// positive, all referenced variables binary) are separated. Returns at
/// most `max_cuts` cuts with violation above `min_violation`, sorted by
/// decreasing violation.
pub fn generate_covers(
    instance: &MipInstance,
    x: &[f64],
    max_cuts: usize,
    min_violation: f64,
) -> Vec<Cut> {
    let mut cuts: Vec<(f64, Cut)> = Vec::new();
    for con in &instance.cons {
        if con.sense != Sense::Le || con.rhs <= 0.0 || con.coeffs.is_empty() {
            continue;
        }
        let is_binary_knapsack = con
            .coeffs
            .iter()
            .all(|&(j, w)| w > 0.0 && instance.vars[j].ty == VarType::Binary);
        if !is_binary_knapsack {
            continue;
        }
        // Greedy: order by x desc (tie: weight desc) and accumulate.
        let mut order: Vec<(usize, f64)> = con.coeffs.clone();
        order.sort_by(|a, b| {
            x[b.0]
                .partial_cmp(&x[a.0])
                .expect("x is never NaN")
                .then(b.1.partial_cmp(&a.1).expect("weights are never NaN"))
        });
        let mut cover: Vec<usize> = Vec::new();
        let mut weight = 0.0;
        for &(j, w) in &order {
            cover.push(j);
            weight += w;
            if weight > con.rhs {
                break;
            }
        }
        if weight <= con.rhs {
            continue; // the whole row fits: no cover exists
        }
        let lhs: f64 = cover.iter().map(|&j| x[j]).sum();
        let rhs = (cover.len() - 1) as f64;
        let viol = lhs - rhs;
        if viol > min_violation {
            let mut coeffs: Vec<(usize, f64)> = cover.iter().map(|&j| (j, 1.0)).collect();
            coeffs.sort_unstable_by_key(|&(j, _)| j);
            cuts.push((viol, (coeffs, rhs)));
        }
    }
    cuts.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("violations are never NaN"));
    cuts.truncate(max_cuts);
    cuts.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::violation;
    use gmip_problems::{Constraint, MipInstance, Objective, Variable};

    /// 3 binaries, 3x0 + 3x1 + 3x2 ≤ 5: any two items form a cover →
    /// x_i + x_j ≤ 1 cuts.
    fn knapsack3() -> MipInstance {
        let mut m = MipInstance::new("k3", Objective::Maximize);
        for i in 0..3 {
            m.add_var(Variable::binary(format!("x{i}"), 1.0));
        }
        m.add_con(Constraint::new(
            "cap",
            vec![(0, 3.0), (1, 3.0), (2, 3.0)],
            Sense::Le,
            5.0,
        ));
        m
    }

    #[test]
    fn violated_cover_found_at_fractional_point() {
        let m = knapsack3();
        // LP point 5/9 each: any pair sums to 10/9 > 1 → violated cover.
        let x = [5.0 / 9.0, 5.0 / 9.0, 5.0 / 9.0];
        let cuts = generate_covers(&m, &x, 5, 1e-4);
        assert!(!cuts.is_empty());
        let cut = &cuts[0];
        assert!(violation(cut, &x) > 1e-4);
        assert_eq!(cut.1, 1.0);
        assert_eq!(cut.0.len(), 2);
        // Globally valid: check against every feasible binary point.
        for bits in 0u32..8 {
            let p: Vec<f64> = (0..3).map(|i| ((bits >> i) & 1) as f64).collect();
            if m.is_integer_feasible(&p, 1e-9) {
                assert!(
                    violation(cut, &p) <= 1e-9,
                    "cut cuts off feasible point {p:?}"
                );
            }
        }
    }

    #[test]
    fn integral_point_yields_no_cuts() {
        let m = knapsack3();
        let cuts = generate_covers(&m, &[1.0, 0.0, 0.0], 5, 1e-4);
        assert!(cuts.is_empty());
    }

    #[test]
    fn non_knapsack_rows_skipped() {
        let mut m = MipInstance::new("mixed", Objective::Maximize);
        m.add_var(Variable::binary("b", 1.0));
        m.add_var(Variable::continuous("c", 0.0, 10.0, 1.0));
        // Mixed row: not a binary knapsack.
        m.add_con(Constraint::new(
            "r",
            vec![(0, 2.0), (1, 1.0)],
            Sense::Le,
            1.0,
        ));
        // Negative-coefficient row: skipped.
        m.add_con(Constraint::new("n", vec![(0, -1.0)], Sense::Le, 1.0));
        // Ge row: skipped.
        m.add_con(Constraint::new("g", vec![(0, 1.0)], Sense::Ge, 0.0));
        assert!(generate_covers(&m, &[0.9, 5.0], 5, 1e-4).is_empty());
    }

    #[test]
    fn max_cuts_respected() {
        // Two knapsack rows, both violated.
        let mut m = knapsack3();
        m.add_con(Constraint::new(
            "cap2",
            vec![(0, 4.0), (1, 4.0), (2, 4.0)],
            Sense::Le,
            6.0,
        ));
        let x = [0.6, 0.6, 0.6];
        let all = generate_covers(&m, &x, 10, 1e-4);
        assert!(all.len() >= 2);
        let one = generate_covers(&m, &x, 1, 1e-4);
        assert_eq!(one.len(), 1);
    }
}
