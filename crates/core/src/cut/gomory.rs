//! Gomory mixed-integer (GMI) cuts from the simplex tableau.
//!
//! For a basic integral variable with fractional value `b̃` in tableau row
//! `x_B + Σ ã_j x̃_j = b̃` (nonbasic variables shifted to their bounds so
//! `x̃_j ≥ 0`), the GMI cut is `Σ γ_j x̃_j ≥ f₀` with `f₀ = frac(b̃)` and
//!
//! * integral nonbasic: `γ = frac(ã)` if `frac(ã) ≤ f₀`, else
//!   `f₀·(1 − frac(ã))/(1 − f₀)`;
//! * continuous nonbasic: `γ = ã` if `ã ≥ 0`, else `f₀·(−ã)/(1 − f₀)`.
//!
//! The shifted variables are then substituted back
//! (`x̃ = x − lb` or `ub − x`), and slack variables are eliminated through
//! their defining rows, yielding a cut purely over structural variables.
//! Generated at the **root** (instance bounds), such cuts are globally
//! valid.
//!
//! The tableau row is obtained through
//! [`SimplexEngine::btran_row_host`] — on the device engine an honest
//! device→host transfer, the traffic the paper's Section 5.2 calls out.

use super::Cut;
use gmip_lp::{ColKind, LpResult, LpSolver, SimplexEngine, VarStatus};
use gmip_problems::MipInstance;

/// Fractional part in `[0, 1)`.
#[inline]
fn frac(x: f64) -> f64 {
    x - x.floor()
}

/// Generates GMI cuts at the current optimal basis of `lp`.
///
/// `x_structural` is the current LP point; cuts are returned in ≤ form over
/// structural variables, most violated first, at most `max_cuts`, each
/// violated by more than `min_violation`.
pub fn generate_gmi<E: SimplexEngine>(
    lp: &mut LpSolver<E>,
    instance: &MipInstance,
    x_structural: &[f64],
    max_cuts: usize,
    min_violation: f64,
    int_tol: f64,
) -> LpResult<Vec<Cut>> {
    let Some(basis) = lp.basis().cloned() else {
        return Ok(Vec::new());
    };
    let (lb, ub) = lp.bounds();
    let (lb, ub) = (lb.to_vec(), ub.to_vec());
    // Slack substitution tables.
    let std = lp.standard();
    let slack_rows: Vec<(usize, usize, f64)> = std.slacks.clone();
    let row_coeffs: Vec<Vec<(usize, f64)>> = (0..std.m())
        .map(|i| {
            (0..std.n_structural)
                .filter_map(|j| {
                    let v = std.a.get(i, j);
                    (v != 0.0).then_some((j, v))
                })
                .collect()
        })
        .collect();
    let row_rhs: Vec<f64> = std.b.clone();
    let cut_defs: Vec<(Vec<(usize, f64)>, f64)> = lp.cuts().to_vec();
    let n_structural = std.n_structural;
    let is_integral: Vec<bool> = (0..n_structural)
        .map(|j| instance.vars[j].ty.is_integral())
        .collect();

    // Candidate rows: basic integral structural vars with fractional value.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new(); // (var, row, value)
    for j in 0..n_structural {
        if !is_integral[j] {
            continue;
        }
        if let VarStatus::Basic(i) = basis.status[j] {
            let v = x_structural[j];
            let f0 = frac(v);
            if f0 > int_tol.max(0.01) && f0 < 1.0 - int_tol.max(0.01) {
                candidates.push((j, i, v));
            }
        }
    }
    // Most fractional first.
    candidates.sort_by(|a, b| {
        let fa = (frac(a.2) - 0.5).abs();
        let fb = (frac(b.2) - 0.5).abs();
        fa.partial_cmp(&fb).expect("fractions are never NaN")
    });

    let mut cuts: Vec<(f64, Cut)> = Vec::new();
    for (_, row_i, value) in candidates {
        if cuts.len() >= max_cuts {
            break;
        }
        let tableau = lp.engine_mut().btran_row_host(row_i)?;
        let f0 = frac(value);
        // Build the cut Σ γ_j x̃_j ≥ f0 and immediately substitute back to
        // original coordinates: accumulate structural coefficients `w` and a
        // running rhs.
        let mut w = vec![0.0; n_structural];
        let mut rhs = f0;
        let mut ok = true;
        for (j, &status) in basis.status.iter().enumerate() {
            let at_lower = match status {
                VarStatus::Basic(_) => continue,
                VarStatus::AtLower => true,
                VarStatus::AtUpper => false,
            };
            if lb[j] == ub[j] {
                continue; // fixed (incl. artificials): x̃ ≡ 0
            }
            let a_tilde = if at_lower { tableau[j] } else { -tableau[j] };
            if a_tilde.abs() < 1e-12 {
                continue;
            }
            let kind = lp.col_kind(j);
            let integral_col = kind == ColKind::Structural && is_integral[j];
            let gamma = if integral_col {
                let f = frac(a_tilde);
                if f <= f0 {
                    f
                } else {
                    f0 * (1.0 - f) / (1.0 - f0)
                }
            } else if a_tilde >= 0.0 {
                a_tilde
            } else {
                f0 * (-a_tilde) / (1.0 - f0)
            };
            if gamma.abs() < 1e-12 {
                continue;
            }
            // γ·x̃ with x̃ = x_j − lb_j (at lower) or ub_j − x_j (at upper):
            // sign for the x_j term, constant folded into rhs.
            let (sign, shift) = if at_lower {
                (1.0, lb[j])
            } else {
                (-1.0, ub[j])
            };
            if !shift.is_finite() {
                ok = false; // cannot shift against an infinite bound
                break;
            }
            rhs += sign * gamma * shift;
            let coeff = sign * gamma;
            // Now express γ·x̃ in structural terms.
            match kind {
                ColKind::Structural => {
                    w[j] += coeff;
                }
                ColKind::Slack => {
                    // s = coef·(b_row − a_rowᵀ x): substitute.
                    let &(_, row, coef) = slack_rows
                        .iter()
                        .find(|&&(col, _, _)| col == j)
                        .expect("slack bookkeeping covers all slack columns");
                    rhs -= coeff * coef * row_rhs[row];
                    for &(k, v) in &row_coeffs[row] {
                        w[k] -= coeff * coef * v;
                    }
                }
                ColKind::CutSlack(k) => {
                    let (coeffs, cut_rhs) = &cut_defs[k];
                    rhs -= coeff * cut_rhs;
                    for &(kk, v) in coeffs {
                        w[kk] -= coeff * v;
                    }
                }
                ColKind::Artificial => {
                    unreachable!("artificials are fixed and skipped above");
                }
            }
        }
        if !ok {
            continue;
        }
        // We built  Σ w_j x_j ≥ rhs  (already negated signs folded in).
        // Convert to ≤ form.
        let coeffs: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 1e-10)
            .map(|(j, v)| (j, -v))
            .collect();
        let cut: Cut = (coeffs, -rhs);
        if !super::is_numerically_sound(&cut) {
            continue;
        }
        let viol = super::violation(&cut, x_structural);
        if viol > min_violation {
            cuts.push((viol, cut));
        }
    }
    cuts.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("violations are never NaN"));
    cuts.truncate(max_cuts);
    Ok(cuts.into_iter().map(|(_, c)| c).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::violation;
    use gmip_lp::{HostEngine, LpConfig, LpStatus, StandardLp};
    use gmip_problems::catalog::textbook_mip;
    use gmip_problems::generators::knapsack;

    fn solve_root(instance: &MipInstance) -> (LpSolver<HostEngine>, gmip_lp::LpSolution) {
        let std = StandardLp::from_instance(instance, &[]);
        let mut lp = LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
        let sol = lp.solve().unwrap();
        (lp, sol)
    }

    #[test]
    fn gmi_cuts_off_fractional_root_of_textbook_mip() {
        let m = textbook_mip();
        let (mut lp, sol) = solve_root(&m);
        assert_eq!(sol.status, LpStatus::Optimal);
        // Root optimum (3, 1.5): y fractional.
        let cuts = generate_gmi(&mut lp, &m, &sol.x, 5, 1e-4, 1e-6).unwrap();
        assert!(!cuts.is_empty(), "expected at least one GMI cut");
        for cut in &cuts {
            // Violated at the fractional point.
            assert!(violation(cut, &sol.x) > 1e-4);
            // Valid at every integer-feasible point of this small box.
            for x0 in 0..=4 {
                for x1 in 0..=3 {
                    let p = [x0 as f64, x1 as f64];
                    if m.is_integer_feasible(&p, 1e-9) {
                        assert!(
                            violation(cut, &p) <= 1e-7,
                            "GMI cut {cut:?} cuts off integer point {p:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gmi_then_resolve_tightens_bound() {
        let m = textbook_mip();
        let (mut lp, sol) = solve_root(&m);
        let base_obj = sol.objective;
        let cuts = generate_gmi(&mut lp, &m, &sol.x, 3, 1e-4, 1e-6).unwrap();
        assert!(!cuts.is_empty());
        for (coeffs, rhs) in &cuts {
            lp.add_cut(coeffs, *rhs).unwrap();
        }
        let tightened = lp.resolve().unwrap();
        assert_eq!(tightened.status, LpStatus::Optimal);
        assert!(
            tightened.objective < base_obj - 1e-6,
            "bound did not improve: {} vs {}",
            tightened.objective,
            base_obj
        );
        // MIP optimum is 20; the bound must not cross it.
        assert!(tightened.objective >= 20.0 - 1e-6);
    }

    #[test]
    fn gmi_valid_on_knapsack_instances() {
        for seed in 0..3 {
            let m = knapsack(10, 0.5, seed);
            let (mut lp, sol) = solve_root(&m);
            if sol.status != LpStatus::Optimal {
                continue;
            }
            let cuts = generate_gmi(&mut lp, &m, &sol.x, 5, 1e-4, 1e-6).unwrap();
            // Validity: the integer optimum must satisfy every cut. Brute
            // force the optimum point.
            let n = m.num_vars();
            let mut best = (f64::NEG_INFINITY, vec![0.0; n]);
            for bits in 0u32..(1 << n) {
                let p: Vec<f64> = (0..n).map(|i| ((bits >> i) & 1) as f64).collect();
                if m.is_feasible(&p, 1e-9) {
                    let v = m.objective_value(&p);
                    if v > best.0 {
                        best = (v, p);
                    }
                }
            }
            for cut in &cuts {
                assert!(
                    violation(cut, &best.1) <= 1e-7,
                    "seed {seed}: GMI cut {cut:?} cuts off optimum {best:?}"
                );
            }
        }
    }

    #[test]
    fn integral_root_yields_no_cuts() {
        // An instance whose LP relaxation is integral: x ≤ 3, maximize x.
        let mut m = MipInstance::new("int", gmip_problems::Objective::Maximize);
        m.add_var(gmip_problems::Variable::integer("x", 0.0, 10.0, 1.0));
        m.add_con(gmip_problems::Constraint::new(
            "c",
            vec![(0, 1.0)],
            gmip_problems::Sense::Le,
            3.0,
        ));
        let (mut lp, sol) = solve_root(&m);
        let cuts = generate_gmi(&mut lp, &m, &sol.x, 5, 1e-4, 1e-6).unwrap();
        assert!(cuts.is_empty());
    }
}
