//! Cutting planes (Section 5.2).
//!
//! Two globally valid families, both generated **on the CPU** — the paper:
//! "We are not aware of any GPU-based cut generator published in the
//! literature. Until GPU-based cut generators are developed, the cut
//! generation can be assumed to be performed on the CPU, which will require
//! the latest copy of the matrix ... to be copied from the device to the
//! host." The GMI separator pulls tableau rows through
//! [`gmip_lp::SimplexEngine::btran_row_host`], which on the device engine
//! is an honest device→host transfer; the resulting cut rows travel back
//! host→device via `add_cut`. Experiment E3b measures exactly this traffic.

pub mod cover;
pub mod gomory;

pub use cover::generate_covers;
pub use gomory::generate_gmi;

/// A cut in ≤ form over structural variables: `coeffsᵀ x ≤ rhs`.
pub type Cut = (Vec<(usize, f64)>, f64);

/// Evaluates a cut's violation at a structural point (positive = violated).
pub fn violation(cut: &Cut, x: &[f64]) -> f64 {
    let lhs: f64 = cut.0.iter().map(|&(j, v)| v * x[j]).sum();
    lhs - cut.1
}

/// Numerical acceptability filter: drops cuts with tiny support, huge
/// coefficient dynamic range, or non-finite entries.
pub fn is_numerically_sound(cut: &Cut) -> bool {
    if cut.0.is_empty() || !cut.1.is_finite() {
        return false;
    }
    let mut max = 0.0f64;
    let mut min = f64::INFINITY;
    for &(_, v) in &cut.0 {
        if !v.is_finite() {
            return false;
        }
        let a = v.abs();
        if a > 0.0 {
            max = max.max(a);
            min = min.min(a);
        }
    }
    max > 1e-9 && max / min < 1e8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_sign() {
        let cut: Cut = (vec![(0, 1.0), (1, 1.0)], 4.0);
        assert!((violation(&cut, &[3.0, 1.5]) - 0.5).abs() < 1e-12);
        assert!(violation(&cut, &[4.0, 0.0]) <= 0.0);
    }

    #[test]
    fn soundness_filter() {
        assert!(is_numerically_sound(&(vec![(0, 1.0)], 1.0)));
        assert!(!is_numerically_sound(&(vec![], 1.0)));
        assert!(!is_numerically_sound(&(vec![(0, f64::NAN)], 1.0)));
        assert!(!is_numerically_sound(&(vec![(0, 1.0)], f64::INFINITY)));
        assert!(!is_numerically_sound(&(vec![(0, 1e9), (1, 1e-9)], 1.0)));
    }
}
