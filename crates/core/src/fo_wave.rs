//! First-order (restarted PDHG) batched-wave branch and bound.
//!
//! The simplex wave ([`crate::wave::solve_batched_wave`]) shares one
//! device matrix but its lanes drift across seven kernel classes as their
//! pivot journals diverge. The first-order wave runs
//! [`gmip_lp::FirstOrderWaveEngine`]: every lane does the *same* PDHG
//! iteration each superstep, so the whole wave is three fused launches
//! (`fo.spmv_t` / `fo.axpy` / `fo.spmv`, plus `fo.norm` on check steps)
//! regardless of width — the kernel-class structure the paper's Section 5
//! batching rule wants, with cost ∝ nnz instead of basis size.
//!
//! Three properties drive the crossover against the simplex wave at high
//! lane counts:
//!
//! 1. **Early safe-bound prunes** — a lane states a valid
//!    (dual-feasibility-adjusted) bound after its first KKT check and
//!    retires the moment the incumbent dominates it; a simplex lane must
//!    pivot to optimality before it can state any bound at all.
//! 2. **Iterate warm starts** — children start from the parent's averaged
//!    `(x, y)`, which is already near-feasible for the child's box.
//! 3. **Exact host cleanup** — converged lanes are finished by host
//!    simplex (the paper's CPU-delegation rule: tiny sequential tails are
//!    host work), so every objective the tree acts on is exact and the
//!    device never runs a sequential cleanup.

use crate::branch;
use crate::solver::MipStatus;
use crate::wave::WaveResult;
use gmip_gpu::{Accel, BackendKind};
use gmip_linalg::CsrMatrix;
use gmip_lp::{
    wave_width, BoundChange, FirstOrderWaveEngine, FoOutcome, HostEngine, LpConfig, LpResult,
    LpSolver, LpStatus, PdhgConfig, StandardLp,
};
use gmip_problems::{MipInstance, Objective};
use gmip_trace::names;
use gmip_tree::{NodeId, NodeState, SearchTree};

/// Configuration of the first-order wave solver.
#[derive(Debug, Clone)]
pub struct FirstOrderWaveConfig {
    /// Requested wave width (lanes); clamped by device memory next to the
    /// shared CSR matrix.
    pub lanes: usize,
    /// PDHG tuning (tolerance, restart factor, check cadence).
    pub pdhg: PdhgConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Pruning tolerance.
    pub prune_tol: f64,
    /// Node budget.
    pub node_limit: usize,
    /// Run batched domain propagation (`prop.*` kernel trios over the
    /// shared CSR matrix) on every refilled lane's box before its PDHG
    /// work. Off by default — opt-in, so committed baselines stay valid.
    pub propagate: bool,
    /// Propagation round cap per lane.
    pub propagate_rounds: usize,
    /// Run the batched fix-and-propagate dive across the collected frontier
    /// seeds every this many retired nodes; `0` disables it.
    pub heuristic_period: usize,
    /// Which executing backend runs the fused lane dispatches. The
    /// simulated charges (and therefore every traced ns) are identical
    /// either way; `Native` additionally executes lanes across host
    /// threads and records real wall-clock under `wall.*`.
    pub backend: BackendKind,
}

impl Default for FirstOrderWaveConfig {
    fn default() -> Self {
        Self {
            lanes: 8,
            pdhg: PdhgConfig::default(),
            int_tol: 1e-6,
            prune_tol: 1e-6,
            node_limit: 100_000,
            propagate: false,
            propagate_rounds: 8,
            heuristic_period: 0,
            backend: BackendKind::Sim,
        }
    }
}

/// Node payload: branch bounds plus the parent's averaged PDHG iterates
/// (both children share them — an iterate warm start, not a basis).
#[derive(Debug, Clone, Default)]
struct FoPayload {
    bounds: Vec<BoundChange>,
    parent_iterates: Option<(Vec<f64>, Vec<f64>)>,
}

/// Solves `instance` with a lockstep restarted-PDHG wave of up to
/// `cfg.lanes` node LPs on `accel`, with exact host-simplex cleanup of
/// converged lanes before branching.
pub fn solve_first_order_wave(
    instance: &MipInstance,
    cfg: &FirstOrderWaveConfig,
    accel: Accel,
) -> LpResult<WaveResult> {
    assert!(cfg.lanes >= 1, "need at least one lane");
    let accel = accel.with_backend(cfg.backend);
    let std = StandardLp::from_instance(instance, &[]);
    let (m, n) = (std.m(), std.n());

    let matrix_bytes = CsrMatrix::from_dense(&std.a).size_bytes();
    let per_lane = FirstOrderWaveEngine::per_lane_bytes(m, n);
    let width = wave_width(cfg.lanes, accel.mem_capacity(), matrix_bytes, per_lane);
    let mut fo = FirstOrderWaveEngine::new(accel.clone(), &std, width, cfg.pdhg.clone())?;

    // The exact cleanup solver: host simplex, one per wave (lanes retire
    // one at a time at stream-event boundaries, so a single host solver
    // serves them all — the paper's CPU-delegation rule for sequential
    // tails).
    let mut cleanup = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
        HostEngine::new(a.clone())
    });

    let internal = |source: f64| match instance.objective {
        Objective::Maximize => source,
        Objective::Minimize => -source,
    };
    let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
    let mut tree: SearchTree<FoPayload> = SearchTree::with_root(FoPayload::default(), node_bytes);
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let integral = instance.integral_indices();

    let mut in_flight: Vec<Option<NodeId>> = (0..width).map(|_| None).collect();
    let mut filled_once = vec![false; width];

    // Domain propagation + fix-and-propagate support (gmip-prop).
    let propagator =
        (cfg.propagate || cfg.heuristic_period > 0).then(|| gmip_prop::Propagator::new(instance));
    let mut aux = gmip_trace::MetricsRegistry::default();
    let mut first_incumbent_ns: Option<f64> = None;
    let mut heur_seeds: Vec<(Vec<BoundChange>, Vec<f64>)> = Vec::new();
    let mut since_heur = 0usize;

    loop {
        // Refill idle lanes from the best-bound frontier.
        let mut frontier: Vec<NodeId> = tree
            .active_ids()
            .iter()
            .copied()
            .filter(|id| !in_flight.iter().any(|f| f.as_ref() == Some(id)))
            .collect();
        frontier.sort_by(|&a, &b| {
            tree.node(b)
                .bound
                .partial_cmp(&tree.node(a).bound)
                .expect("bounds are never NaN")
                .then(a.cmp(&b))
        });
        let mut next = frontier.into_iter();
        let mut pending: Vec<(usize, NodeId)> = Vec::new();
        for slot in 0..width {
            if in_flight[slot].is_some() || nodes >= cfg.node_limit {
                continue;
            }
            let Some(id) = next.next() else { break };
            tree.begin_evaluation(id);
            nodes += 1;
            pending.push((slot, id));
        }

        // Batched domain propagation across the refill batch: one fused
        // `prop.*` kernel-trio sequence tightens every lane's box; boxes
        // that propagate to a contradiction settle without any PDHG work.
        let mut loads: Vec<(usize, NodeId, Vec<BoundChange>)> = Vec::new();
        let mut settled_by_prop = 0usize;
        if cfg.propagate {
            let p = propagator.as_ref().expect("propagator built");
            let mut boxes: Vec<(Vec<f64>, Vec<f64>)> = pending
                .iter()
                .map(|&(_, id)| p.node_box(&tree.node(id).data.bounds))
                .collect();
            let outs = p.propagate_wave(&accel, &mut boxes, cfg.propagate_rounds);
            for ((&(slot, id), out), (plb, pub_)) in pending.iter().zip(&outs).zip(&boxes) {
                aux.incr(names::PROP_NODES, 1.0);
                aux.incr(names::PROP_ROUNDS, out.rounds as f64);
                aux.incr(names::PROP_TIGHTENINGS, out.tightenings as f64);
                if out.infeasible {
                    aux.incr(names::PROP_INFEASIBLE, 1.0);
                    tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
                    settled_by_prop += 1;
                } else {
                    loads.push((slot, id, p.bound_changes(plb, pub_)));
                }
            }
        } else {
            for &(slot, id) in &pending {
                loads.push((slot, id, tree.node(id).data.bounds.clone()));
            }
        }

        for (slot, id, bounds) in loads {
            let warm = tree.node_mut(id).data.parent_iterates.take();
            let mut lb = std.lb.clone();
            let mut ub = std.ub.clone();
            for bc in &bounds {
                lb[bc.var] = bc.lb;
                ub[bc.var] = bc.ub;
            }
            if filled_once[slot] {
                fo.note_refill();
            }
            filled_once[slot] = true;
            let warm_ref = warm.as_ref().map(|(x, y)| (x.as_slice(), y.as_slice()));
            fo.load_lane(slot, id as u64, &lb, &ub, warm_ref)?;
            in_flight[slot] = Some(id);
        }

        if !fo.any_busy() && in_flight.iter().all(Option::is_none) {
            // A refill batch fully settled by propagation leaves no lane
            // busy while the frontier may still hold work: refill again.
            if settled_by_prop > 0 && tree.has_active() && nodes < cfg.node_limit {
                continue;
            }
            break;
        }

        for slot in fo.run_to_retire() {
            let id = in_flight[slot].take().expect("retired slot was in flight");
            let report = fo.take_lane(slot)?;
            debug_assert_eq!(report.token, id as u64);
            match report.outcome {
                FoOutcome::Infeasible => {
                    tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
                }
                FoOutcome::BoundPruned => {
                    // The safe bound never undercuts the node optimum, so
                    // pruning on it can never cut off a true optimum.
                    tree.settle(id, NodeState::Pruned, report.safe_bound);
                }
                FoOutcome::Converged | FoOutcome::IterLimit => {
                    // Exact host cleanup before the tree acts on the node.
                    cleanup.apply_node_bounds(&tree.node(id).data.bounds.clone())?;
                    let sol = cleanup.solve()?;
                    fo.note_cleanup(sol.iterations);
                    match sol.status {
                        LpStatus::Infeasible => {
                            tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
                        }
                        LpStatus::Unbounded => {
                            return Err(gmip_lp::LpError::Shape(
                                "unbounded node in first-order wave solve".into(),
                            ));
                        }
                        LpStatus::Optimal => {
                            let bound = internal(sol.objective);
                            let inc = incumbent
                                .as_ref()
                                .map(|(v, _)| *v)
                                .unwrap_or(f64::NEG_INFINITY);
                            if bound <= inc + cfg.prune_tol {
                                tree.settle(id, NodeState::Pruned, bound);
                                continue;
                            }
                            let frac: Vec<usize> = integral
                                .iter()
                                .copied()
                                .filter(|&j| (sol.x[j] - sol.x[j].round()).abs() > cfg.int_tol)
                                .collect();
                            if frac.is_empty() {
                                tree.settle(id, NodeState::Feasible, bound);
                                let mut p = sol.x.clone();
                                for &j in &integral {
                                    p[j] = p[j].round();
                                }
                                incumbent = Some((bound, p));
                                first_incumbent_ns.get_or_insert_with(|| accel.elapsed_ns());
                                tree.prune_dominated(bound, cfg.prune_tol);
                                // In-flight lanes start pruning against
                                // the new incumbent at their next check.
                                fo.set_cutoff(bound + cfg.prune_tol);
                                continue;
                            }
                            // Seed the fix-and-propagate wave with this
                            // fractional retiree (one seed per lane).
                            if cfg.heuristic_period > 0 && heur_seeds.len() < width {
                                heur_seeds.push((tree.node(id).data.bounds.clone(), sol.x.clone()));
                            }
                            since_heur += 1;
                            let d = branch::decide(
                                crate::config::BranchRule::MostFractional,
                                instance,
                                &sol.x,
                                &frac,
                                &branch::PseudoCosts::default(),
                            );
                            let parent_bounds = tree.node(id).data.bounds.clone();
                            let (mut lo, mut hi) =
                                (instance.vars[d.var].lb, instance.vars[d.var].ub);
                            for bc in &parent_bounds {
                                if bc.var == d.var {
                                    lo = bc.lb;
                                    hi = bc.ub;
                                }
                            }
                            let warm = Some((report.x.clone(), report.y.clone()));
                            let mk = |up: bool| {
                                let mut b = parent_bounds.clone();
                                let label = if up {
                                    b.push(BoundChange {
                                        var: d.var,
                                        lb: d.up_lb,
                                        ub: hi,
                                    });
                                    format!("x{} ≥ {}", d.var, d.up_lb)
                                } else {
                                    b.push(BoundChange {
                                        var: d.var,
                                        lb: lo,
                                        ub: d.down_ub,
                                    });
                                    format!("x{} ≤ {}", d.var, d.down_ub)
                                };
                                (
                                    label,
                                    FoPayload {
                                        bounds: b,
                                        parent_iterates: warm.clone(),
                                    },
                                )
                            };
                            tree.branch(id, bound, vec![mk(false), mk(true)]);
                        }
                    }
                }
            }
        }

        // Batched fix-and-propagate across the collected frontier seeds:
        // one fused dive wave, best improving candidate becomes an early
        // incumbent and immediately cuts off in-flight lanes.
        if cfg.heuristic_period > 0 && since_heur >= cfg.heuristic_period && !heur_seeds.is_empty()
        {
            let p = propagator.as_ref().expect("propagator built");
            let staged: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = heur_seeds
                .drain(..)
                .map(|(bounds, x)| {
                    let (lb, ub) = p.node_box(&bounds);
                    (x, lb, ub)
                })
                .collect();
            let seeds: Vec<gmip_prop::DiveSeed<'_>> = staged
                .iter()
                .map(|(x, lb, ub)| gmip_prop::DiveSeed {
                    x0: x,
                    lb0: lb,
                    ub0: ub,
                })
                .collect();
            let outs = p.dive_wave(&accel, &seeds, cfg.int_tol, cfg.propagate_rounds);
            let mut rounds = Vec::with_capacity(outs.len());
            let mut best: Option<(f64, Vec<f64>)> = None;
            for out in outs {
                rounds.push(out.rounds.max(1));
                aux.incr(names::HEUR_ATTEMPTS, 1.0);
                aux.incr(names::HEUR_REPAIRS, out.repairs as f64);
                if out.aborted {
                    aux.incr(names::HEUR_ABORTS, 1.0);
                }
                if let Some((obj, pt)) = out.candidate {
                    let cand = internal(obj);
                    if best.as_ref().map(|(b, _)| cand > *b).unwrap_or(true) {
                        best = Some((cand, pt));
                    }
                }
            }
            gmip_prop::charge_wave(&accel, p.nnz(), p.num_vars(), &rounds);
            since_heur = 0;
            if let Some((cand, pt)) = best {
                let cur = incumbent
                    .as_ref()
                    .map(|(v, _)| *v)
                    .unwrap_or(f64::NEG_INFINITY);
                if cand > cur + cfg.prune_tol {
                    incumbent = Some((cand, pt));
                    first_incumbent_ns.get_or_insert_with(|| accel.elapsed_ns());
                    aux.incr(names::HEUR_INCUMBENTS, 1.0);
                    tree.prune_dominated(cand, cfg.prune_tol);
                    fo.set_cutoff(cand + cfg.prune_tol);
                }
            }
        }
    }

    let status = if tree.has_active() || in_flight.iter().any(Option::is_some) {
        MipStatus::NodeLimit
    } else if incumbent.is_some() {
        MipStatus::Optimal
    } else {
        MipStatus::Infeasible
    };
    let (objective, x) = match incumbent {
        Some((v, p)) => (
            match instance.objective {
                Objective::Maximize => v,
                Objective::Minimize => -v,
            },
            p,
        ),
        None => (f64::NAN, Vec::new()),
    };

    let mut metrics = accel.with(|d| d.metrics().clone());
    let fo_counters = fo.take_metrics();
    metrics.merge(&fo_counters);
    metrics.merge(&cleanup.take_metrics());
    metrics.merge(&aux);
    // Real wall-clock of the executing backend (`wall.*`, empty under the
    // simulator) — reported, but never part of the byte-determinism
    // surface: diffs and bench gates skip the namespace.
    metrics.merge(&accel.wall_metrics());
    if let Some(t) = first_incumbent_ns {
        metrics.set_gauge(names::HEUR_FIRST_INCUMBENT_NS, t);
    }
    let peak = accel.with(|d| d.memory().peak());
    Ok(WaveResult {
        status,
        objective,
        x,
        nodes,
        supersteps: fo_counters.counter(names::FO_SUPERSTEPS) as usize,
        retires: fo_counters.counter(names::FO_RETIRES) as usize,
        refills: fo_counters.counter(names::FO_REFILLS) as usize,
        width,
        makespan_ns: accel.elapsed_ns(),
        device: accel.stats(),
        peak_device_bytes: peak,
        metrics,
        first_incumbent_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wave::{solve_batched_wave, BatchedWaveConfig};
    use gmip_problems::catalog::textbook_mip;
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};
    use gmip_trace::MetricsRegistry;

    #[test]
    fn first_order_matches_brute_force() {
        for seed in [1u64, 5] {
            let m = knapsack(13, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_first_order_wave(
                &m,
                &FirstOrderWaveConfig {
                    lanes: 3,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            assert!(m.is_integer_feasible(&r.x, 1e-5), "seed {seed}");
        }
    }

    #[test]
    fn textbook_first_order() {
        let r = solve_first_order_wave(
            &textbook_mip(),
            &FirstOrderWaveConfig::default(),
            Accel::gpu(1),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        assert!(r.supersteps > 0);
        assert!(r.retires >= r.nodes, "every node's lane must retire");
    }

    #[test]
    fn matches_batched_simplex_wave_objective() {
        let m = knapsack(14, 0.5, 7);
        let fo = solve_first_order_wave(
            &m,
            &FirstOrderWaveConfig {
                lanes: 4,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        let sx = solve_batched_wave(
            &m,
            &BatchedWaveConfig {
                lanes: 4,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert!((fo.objective - sx.objective).abs() < 1e-6);
    }

    #[test]
    fn deterministic_metrics_across_reruns() {
        let m = knapsack(13, 0.5, 3);
        let run = || {
            let r = solve_first_order_wave(
                &m,
                &FirstOrderWaveConfig {
                    lanes: 4,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            let mut counters: Vec<(String, String)> = r
                .metrics
                .counters()
                .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                .collect();
            counters.sort();
            (
                format!("{:?}", r.objective),
                r.nodes,
                r.supersteps,
                format!("{:?}", r.makespan_ns),
                counters,
            )
        };
        assert_eq!(run(), run(), "byte-identical replay under a fixed seed");
        let _ = MetricsRegistry::new();
    }

    #[test]
    fn propagation_and_heuristic_preserve_the_optimum() {
        for seed in [2u64, 6] {
            let m = knapsack(13, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_first_order_wave(
                &m,
                &FirstOrderWaveConfig {
                    lanes: 4,
                    propagate: true,
                    heuristic_period: 2,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            assert!(r.metrics.counter(names::PROP_NODES) >= r.nodes as f64);
            assert!(r.first_incumbent_ns.is_some());
        }
    }

    #[test]
    fn native_backend_matches_sim_byte_for_byte() {
        // The executing backend must be invisible to everything but
        // `wall.*`: same optimum, same node count, bitwise-equal simulated
        // makespan, identical counters — at every thread count.
        let m = knapsack(13, 0.5, 5);
        let run = |backend: BackendKind| {
            let r = solve_first_order_wave(
                &m,
                &FirstOrderWaveConfig {
                    lanes: 4,
                    propagate: true,
                    heuristic_period: 2,
                    backend,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            let mut counters: Vec<(String, String)> = r
                .metrics
                .counters()
                .filter(|(k, _)| !k.starts_with("wall."))
                .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                .collect();
            counters.sort();
            (
                format!("{:?}", r.objective),
                r.nodes,
                format!("{:?}", r.makespan_ns),
                counters,
            )
        };
        let sim = run(BackendKind::Sim);
        for threads in [1, 2, 4] {
            assert_eq!(
                run(BackendKind::Native { threads }),
                sim,
                "native @ {threads} threads"
            );
        }
    }

    #[test]
    fn node_limit_respected() {
        let m = knapsack(22, 0.5, 9);
        let r = solve_first_order_wave(
            &m,
            &FirstOrderWaveConfig {
                lanes: 2,
                node_limit: 6,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.nodes <= 8);
    }
}
