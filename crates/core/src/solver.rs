//! The branch-and-cut orchestrator.
//!
//! This is the paper's Strategy-2/3 control loop: the tree lives in host
//! memory, every node's LP relaxation is dispatched to the configured
//! engine (host reference, simulated device, or pooled Big-MIP device), and
//! the matrix is reused across nodes with warm-started dual re-solves
//! (Section 5.3). Root-only cut rounds (Section 5.2) and host-side primal
//! heuristics complete the branch-and-*cut* picture.

use crate::branch::{self, PseudoCosts};
use crate::config::{MipConfig, PolicyKind};
use crate::cut::{self, Cut};
use crate::heur;
use gmip_gpu::{Accel, DeviceStats, DEFAULT_STREAM};
use gmip_linalg::DenseMatrix;
use gmip_lp::{
    Basis, BoundChange, CertKind, LpCertificate, LpError, LpResult, LpSolution, LpSolver, LpStatus,
    SimplexEngine, StandardLp,
};
use gmip_problems::{MipInstance, Objective};
use gmip_prop::Propagator;
use gmip_trace::{names, Event, MetricsRegistry, Track};
use gmip_tree::{
    BestFirst, BreadthFirst, DepthFirst, NodeId, NodeSelection, NodeState, ReuseAffinity,
    SearchTree,
};

/// How a child node was created (for pseudocost learning).
#[derive(Debug, Clone, Copy)]
pub struct BranchInfo {
    /// Branching variable.
    pub var: usize,
    /// `true` for the up (`≥ ceil`) child.
    pub up: bool,
    /// Parent fractionality of the variable.
    pub frac: f64,
    /// Parent relaxation bound (internal maximize sense).
    pub parent_bound: f64,
}

/// Payload stored per tree node.
#[derive(Debug, Clone, Default)]
pub struct NodePayload {
    /// Cumulative bound changes from the root (applied in order).
    pub bounds: Vec<BoundChange>,
    /// Parent's optimal basis for warm starts.
    pub parent_basis: Option<Basis>,
    /// Branching provenance.
    pub branch_info: Option<BranchInfo>,
}

/// Terminal status of a MIP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MipStatus {
    /// Search completed with an incumbent: it is optimal.
    Optimal,
    /// Search completed without any feasible point.
    Infeasible,
    /// The relaxation is unbounded in an improving integral direction.
    Unbounded,
    /// The node limit stopped the search early.
    NodeLimit,
    /// The relative optimality gap reached the configured tolerance; the
    /// incumbent is optimal within that gap.
    GapLimit,
    /// An incumbent at least as good as the configured objective limit was
    /// found.
    ObjectiveLimit,
}

/// Counters and cost ledgers of a solve.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Nodes evaluated (LPs solved).
    pub nodes: usize,
    /// Total simplex iterations across all node LPs.
    pub lp_iterations: usize,
    /// Cuts added at the root.
    pub cuts: usize,
    /// Incumbents found by heuristics.
    pub heur_incumbents: usize,
    /// Strategy-1 tree spills (device memory exhausted; node evicted).
    pub gpu_spills: usize,
    /// Final tree counters.
    pub tree: gmip_tree::TreeStats,
    /// Host executor ledger.
    pub host: DeviceStats,
    /// LP-device ledger.
    pub device: DeviceStats,
    /// Modeled wall time: host + device simulated time, ns (the
    /// orchestration is synchronous, so timelines add).
    pub sim_time_ns: f64,
    /// Final absolute gap (internal sense; 0 when optimal).
    pub gap: f64,
    /// Strategy name.
    pub strategy: &'static str,
    /// Unified metrics ledger: `bb.*` node-lifecycle counters plus the
    /// merged `lp.*` and `gpu.*` series from the LP solver and executors.
    pub metrics: MetricsRegistry,
    /// Exactly-checkable node LP certificates, one per evaluated node that
    /// produced dual evidence. Empty unless
    /// `MipConfig::collect_certificates` is set.
    pub certificates: Vec<LpCertificate>,
    /// The root relaxation's optimal basis, for pooling: a structurally
    /// identical re-submission can warm-start from it via
    /// [`MipConfig::root_basis`](crate::MipConfig).
    pub root_basis: Option<Basis>,
}

/// The result of a MIP solve.
#[derive(Debug)]
pub struct MipResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective in the source sense (`NaN` if none).
    pub objective: f64,
    /// Incumbent point (empty if none).
    pub x: Vec<f64>,
    /// Solve statistics.
    pub stats: SolveStats,
    /// The final search tree (for rendering and analysis).
    pub tree: SearchTree<NodePayload>,
}

enum PolicyImpl {
    Best(BestFirst),
    Depth(DepthFirst),
    Breadth(BreadthFirst),
    Reuse(ReuseAffinity),
}

impl PolicyImpl {
    fn new(kind: PolicyKind) -> Self {
        match kind {
            PolicyKind::BestFirst => PolicyImpl::Best(BestFirst),
            PolicyKind::DepthFirst => PolicyImpl::Depth(DepthFirst),
            PolicyKind::BreadthFirst => PolicyImpl::Breadth(BreadthFirst),
            PolicyKind::ReuseAffinity => PolicyImpl::Reuse(ReuseAffinity::default()),
        }
    }

    fn select(&mut self, tree: &SearchTree<NodePayload>) -> Option<NodeId> {
        match self {
            PolicyImpl::Best(p) => p.select(tree),
            PolicyImpl::Depth(p) => p.select(tree),
            PolicyImpl::Breadth(p) => p.select(tree),
            PolicyImpl::Reuse(p) => p.select(tree),
        }
    }

    fn notify(&mut self, id: NodeId) {
        match self {
            PolicyImpl::Best(p) => NodeSelection::<NodePayload>::notify_evaluated(p, id),
            PolicyImpl::Depth(p) => NodeSelection::<NodePayload>::notify_evaluated(p, id),
            PolicyImpl::Breadth(p) => NodeSelection::<NodePayload>::notify_evaluated(p, id),
            PolicyImpl::Reuse(p) => NodeSelection::<NodePayload>::notify_evaluated(p, id),
        }
    }
}

/// The branch-and-cut MIP solver, generic over the LP engine.
pub struct MipSolver<E: SimplexEngine> {
    instance: MipInstance,
    cfg: MipConfig,
    factory: Box<dyn Fn(&DenseMatrix) -> LpResult<E>>,
    host: Accel,
    lp_accel: Option<Accel>,
    tree_device: Option<Accel>,
    node_bytes: usize,
    strategy_name: &'static str,
    /// Model host and device timelines as overlapped (Strategy 3: the CPU
    /// runs heuristics/cuts concurrently with device LPs) instead of
    /// serialized.
    overlap_host: bool,
}

impl<E: SimplexEngine> std::fmt::Debug for MipSolver<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MipSolver")
            .field("instance", &self.instance.name)
            .field("strategy", &self.strategy_name)
            .finish_non_exhaustive()
    }
}

impl MipSolver<gmip_lp::HostEngine> {
    /// A pure-host baseline solver (no simulated accelerator).
    pub fn host_baseline(instance: MipInstance, cfg: MipConfig) -> Self {
        MipSolver::with_factory(instance, cfg, "host-baseline", None, None, |a| {
            Ok(gmip_lp::HostEngine::new(a.clone()))
        })
    }
}

impl MipSolver<gmip_lp::DeviceEngine> {
    /// A solver whose LPs run on the given accelerator (any strategy plan
    /// whose LP executor is a single device).
    pub fn on_accel(instance: MipInstance, cfg: MipConfig, accel: Accel) -> Self {
        let factory_accel = accel.clone();
        MipSolver::with_factory(instance, cfg, "device", Some(accel), None, move |a| {
            gmip_lp::DeviceEngine::new(factory_accel.clone(), a)
        })
    }

    /// A solver resolved from a [`crate::strategy::StrategyPlan`].
    pub fn with_plan(instance: MipInstance, plan: crate::strategy::StrategyPlan) -> Self {
        let factory_accel = plan.lp_accel.clone();
        let mut solver = MipSolver::with_factory(
            instance,
            plan.config,
            plan.name,
            Some(plan.lp_accel),
            plan.tree_device,
            move |a| gmip_lp::DeviceEngine::new(factory_accel.clone(), a),
        );
        solver.host = plan.host;
        solver.overlap_host = plan.overlap_host;
        solver
    }
}

impl MipSolver<gmip_lp::SparseDeviceEngine> {
    /// A solver whose LPs run through the **sparse** device engine — the
    /// second "MIP solver version" of Section 5.4, for sparse inputs.
    pub fn on_accel_sparse(instance: MipInstance, cfg: MipConfig, accel: Accel) -> Self {
        let factory_accel = accel.clone();
        MipSolver::with_factory(
            instance,
            cfg,
            "device-sparse",
            Some(accel),
            None,
            move |a| gmip_lp::SparseDeviceEngine::new(factory_accel.clone(), a),
        )
    }
}

impl<E: SimplexEngine> MipSolver<E> {
    /// Generic constructor over an engine factory.
    pub fn with_factory(
        instance: MipInstance,
        cfg: MipConfig,
        strategy_name: &'static str,
        lp_accel: Option<Accel>,
        tree_device: Option<Accel>,
        factory: impl Fn(&DenseMatrix) -> LpResult<E> + 'static,
    ) -> Self {
        // Per-node device footprint: branch bounds + a basis snapshot.
        let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
        Self {
            instance,
            cfg,
            factory: Box::new(factory),
            host: Accel::cpu(),
            lp_accel,
            tree_device,
            node_bytes,
            strategy_name,
            overlap_host: false,
        }
    }

    /// Enables overlapped host/device time accounting (Strategy 3).
    pub fn set_overlap_host(&mut self, overlap: bool) {
        self.overlap_host = overlap;
    }

    /// The instance being solved.
    pub fn instance(&self) -> &MipInstance {
        &self.instance
    }

    /// Converts a source-sense objective to the internal maximize sense.
    fn internal(&self, source: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => source,
            Objective::Minimize => -source,
        }
    }

    /// Converts an internal maximize-sense value back to the source sense.
    fn to_source(&self, internal: f64) -> f64 {
        match self.instance.objective {
            Objective::Maximize => internal,
            Objective::Minimize => -internal,
        }
    }

    fn charge_host(&self, flops: f64, bytes: f64) {
        self.host
            .with(|d| d.charge_custom(flops, bytes, false, DEFAULT_STREAM));
    }

    /// The solver's simulated "now", ns: host and LP-device timelines add
    /// when serialized and take the max under Strategy-3 overlap — the same
    /// composition as the final `sim_time_ns`.
    fn sim_now_ns(&self) -> f64 {
        let h = self.host.elapsed_ns();
        let d = self.lp_accel.as_ref().map(Accel::elapsed_ns).unwrap_or(0.0);
        if self.overlap_host {
            h.max(d)
        } else {
            h + d
        }
    }

    /// Emits one node-lifecycle span on the solver track, covering the
    /// node's evaluation from `t0` to the current simulated time.
    fn node_span(&self, id: NodeId, state: &'static str, t0: f64) {
        let t1 = self.sim_now_ns().max(t0);
        gmip_trace::record(|| {
            Event::complete(Track::solver(), "node", t1 - t0, t0)
                .arg("node", id as u64)
                .arg("state", state)
        });
    }

    /// Marks an incumbent improvement as an instant on the solver track.
    fn incumbent_mark(&self, objective: f64, source: &'static str) {
        let ts = self.sim_now_ns();
        gmip_trace::record(|| {
            Event::instant(Track::solver(), "incumbent", ts)
                .arg("objective", objective)
                .arg("source", source)
        });
    }

    /// Charges the propagation kernel trios for `rounds` (one entry per
    /// lane; the per-kernel solver always runs one lane). On a device
    /// backend the cost lands on the LP accelerator as `prop.*` batched
    /// launches over the resident CSR matrix; the host baseline pays the
    /// equivalent sweep arithmetic on the host executor.
    fn charge_prop(&self, p: &Propagator, rounds: &[usize]) {
        if let Some(a) = &self.lp_accel {
            gmip_prop::charge_wave(a, p.nnz(), p.num_vars(), rounds);
        } else {
            let total: f64 = rounds.iter().sum::<usize>() as f64;
            let nnz = p.nnz() as f64;
            self.charge_host(total * 6.0 * nnz, total * 28.0 * nnz);
        }
    }

    /// Strategy-1 accounting: park a node's record in device memory, or
    /// spill (evict to host with a transfer charge) when full. A working-set
    /// reserve is kept free so the LP engine's own buffers never starve —
    /// tree growth degrades to spilling instead of crashing the solve.
    fn tree_alloc(&self, stats: &mut SolveStats) {
        if let Some(dev) = &self.tree_device {
            let bytes = self.node_bytes;
            let reserve = 4 * self.instance.dense_matrix_bytes()
                + 64 * (self.instance.num_vars() + self.instance.num_cons()) * 8
                + (64 << 10);
            let fits = dev.with(|d| d.memory().available()) >= bytes + reserve;
            let ok = fits && dev.with(|d| d.alloc_raw(bytes)).is_ok();
            if !ok {
                stats.gpu_spills += 1;
                dev.with(|d| d.charge_transfer(bytes, false, DEFAULT_STREAM));
            }
        }
    }

    /// Effective bounds of structural `var` under a node's cumulative
    /// changes.
    fn effective_bounds(&self, bounds: &[BoundChange], var: usize) -> (f64, f64) {
        let mut lo = self.instance.vars[var].lb;
        let mut hi = self.instance.vars[var].ub;
        for bc in bounds {
            if bc.var == var {
                lo = bc.lb;
                hi = bc.ub;
            }
        }
        (lo, hi)
    }

    /// Root cut loop: separate → add → warm re-solve, bounded rounds.
    fn cut_rounds(
        &self,
        lp: &mut LpSolver<E>,
        sol: &mut LpSolution,
        global_cuts: &mut Vec<Cut>,
        stats: &mut SolveStats,
    ) -> LpResult<()> {
        if !self.cfg.cuts.enabled {
            return Ok(());
        }
        let nnz: usize = self.instance.cons.iter().map(|c| c.coeffs.len()).sum();
        for _round in 0..self.cfg.cuts.max_rounds {
            if sol.status != LpStatus::Optimal {
                break;
            }
            let frac = branch::fractional_vars(&self.instance, &sol.x, self.cfg.int_tol);
            if frac.is_empty() {
                break;
            }
            // CPU-side separation cost (Section 5.2).
            self.charge_host(4.0 * nnz as f64, (nnz * 16) as f64);
            let mut cuts = cut::generate_covers(
                &self.instance,
                &sol.x,
                self.cfg.cuts.max_per_round,
                self.cfg.cuts.min_violation,
            );
            if cuts.len() < self.cfg.cuts.max_per_round {
                let gmi = cut::generate_gmi(
                    lp,
                    &self.instance,
                    &sol.x,
                    self.cfg.cuts.max_per_round - cuts.len(),
                    self.cfg.cuts.min_violation,
                    self.cfg.int_tol,
                )?;
                cuts.extend(gmi);
            }
            if cuts.is_empty() {
                break;
            }
            for (coeffs, rhs) in &cuts {
                lp.add_cut(coeffs, *rhs)?;
                global_cuts.push((coeffs.clone(), *rhs));
                stats.cuts += 1;
            }
            let ts = self.sim_now_ns();
            let n_cuts = cuts.len() as u64;
            gmip_trace::record(|| {
                Event::instant(Track::solver(), "cut_round", ts).arg("cuts", n_cuts)
            });
            *sol = lp.resolve()?;
            stats.lp_iterations += sol.iterations;
        }
        Ok(())
    }

    /// Records the exactly-checkable certificate of one node LP outcome
    /// (when `collect_certificates` is set): dual prices + claimed objective
    /// for optimal nodes, the Farkas witness for infeasible ones. Best
    /// effort — nodes whose engine can't produce the evidence are skipped.
    fn capture_certificate(
        lp: &mut LpSolver<E>,
        sol: &LpSolution,
        bounds: &[BoundChange],
        stats: &mut SolveStats,
    ) {
        let kind = match sol.status {
            LpStatus::Optimal => match lp.dual_prices_internal() {
                Ok(y) => CertKind::DualBound {
                    y,
                    objective: lp.internal_objective(sol.objective),
                },
                Err(_) => return,
            },
            LpStatus::Infeasible => match lp.farkas_ray() {
                Some(w) => CertKind::Farkas { w: w.to_vec() },
                None => return,
            },
            LpStatus::Unbounded => return,
        };
        stats.certificates.push(LpCertificate {
            bounds: bounds.to_vec(),
            cuts: lp.cuts().to_vec(),
            kind,
        });
    }

    /// Evaluates one node, returning the LP solution and the post-solve
    /// basis (for children warm starts).
    #[allow(clippy::too_many_arguments)]
    fn evaluate(
        &self,
        lp_slot: &mut Option<LpSolver<E>>,
        is_root: bool,
        bounds: &[BoundChange],
        parent_basis: Option<Basis>,
        global_cuts: &mut Vec<Cut>,
        stats: &mut SolveStats,
    ) -> LpResult<(LpSolution, Option<Basis>)> {
        if self.cfg.engine_reuse {
            if is_root {
                let std = StandardLp::from_instance(&self.instance, &[]);
                let mut lp = LpSolver::try_new(std, self.cfg.lp.clone(), |a| (self.factory)(a))?;
                let mut sol = lp.solve()?;
                stats.lp_iterations += sol.iterations;
                if sol.status == LpStatus::Optimal {
                    self.cut_rounds(&mut lp, &mut sol, global_cuts, stats)?;
                }
                if self.cfg.collect_certificates {
                    Self::capture_certificate(&mut lp, &sol, bounds, stats);
                }
                let basis = lp.basis().cloned();
                // Root diving (Hybrid strategy).
                if self.cfg.heuristics.diving && sol.status == LpStatus::Optimal {
                    // handled by the caller via `dive_root`
                }
                *lp_slot = Some(lp);
                Ok((sol, basis))
            } else {
                let lp = lp_slot.as_mut().expect("root evaluated first");
                lp.apply_node_bounds(bounds)?;
                let sol = if self.cfg.warm_start {
                    if let Some(b) = parent_basis {
                        lp.set_warm_basis(b)?;
                    }
                    lp.resolve()?
                } else {
                    lp.solve()?
                };
                stats.lp_iterations += sol.iterations;
                if self.cfg.collect_certificates {
                    Self::capture_certificate(lp, &sol, bounds, stats);
                }
                Ok((sol.clone(), lp.basis().cloned()))
            }
        } else {
            // Fresh engine per node: rebuild (re-uploading the matrix on
            // device backends — the costly baseline the paper warns about).
            let std = StandardLp::from_instance(&self.instance, bounds);
            let mut lp = LpSolver::try_new(std, self.cfg.lp.clone(), |a| (self.factory)(a))?;
            for (coeffs, rhs) in global_cuts.iter() {
                lp.add_cut(coeffs, *rhs)?;
            }
            let mut sol = match parent_basis {
                Some(b) if self.cfg.warm_start => {
                    lp.set_warm_basis(b)?;
                    lp.resolve()?
                }
                _ => lp.solve()?,
            };
            stats.lp_iterations += sol.iterations;
            if is_root && sol.status == LpStatus::Optimal {
                self.cut_rounds(&mut lp, &mut sol, global_cuts, stats)?;
            }
            if self.cfg.collect_certificates {
                Self::capture_certificate(&mut lp, &sol, bounds, stats);
            }
            let basis = lp.basis().cloned();
            if is_root {
                *lp_slot = Some(lp);
            }
            Ok((sol, basis))
        }
    }

    /// Strong branching: probes the `strong_candidates` most-fractional
    /// variables with iteration-capped warm dual re-solves on both children
    /// and returns the variable with the best degradation product. Also
    /// feeds the observed degradations into the pseudocost store.
    #[allow(clippy::too_many_arguments)]
    fn strong_branch(
        &self,
        lp: &mut LpSolver<E>,
        bounds: &[BoundChange],
        basis: &Basis,
        frac: &[usize],
        x: &[f64],
        parent_internal: f64,
        pseudo: &mut PseudoCosts,
        stats: &mut SolveStats,
    ) -> LpResult<usize> {
        // Top-K most fractional candidates.
        let mut candidates: Vec<usize> = frac.to_vec();
        candidates.sort_by(|&a, &b| {
            branch::fractionality(x[b])
                .partial_cmp(&branch::fractionality(x[a]))
                .expect("fractionality is never NaN")
                .then(a.cmp(&b))
        });
        candidates.truncate(self.cfg.strong_candidates.max(1));

        let mut best = (candidates[0], f64::NEG_INFINITY);
        for &j in &candidates {
            let (mut lo, mut hi) = self.effective_bounds(bounds, j);
            if !lo.is_finite() {
                lo = x[j].floor() - 1.0; // conservative finite box for probes
            }
            if !hi.is_finite() {
                hi = x[j].ceil() + 1.0;
            }
            let mut degs = [0.0f64; 2];
            for (side, deg_slot) in degs.iter_mut().enumerate() {
                let up = side == 1;
                let mut probe_bounds = bounds.to_vec();
                probe_bounds.push(if up {
                    BoundChange {
                        var: j,
                        lb: x[j].ceil(),
                        ub: hi,
                    }
                } else {
                    BoundChange {
                        var: j,
                        lb: lo,
                        ub: x[j].floor(),
                    }
                });
                lp.apply_node_bounds(&probe_bounds)?;
                lp.set_warm_basis(basis.clone())?;
                match lp.resolve_limited(self.cfg.strong_iter_cap) {
                    Ok(sol) => match sol.status {
                        LpStatus::Optimal => {
                            stats.lp_iterations += sol.iterations;
                            let child = self.internal(sol.objective);
                            *deg_slot = (parent_internal - child).max(0.0);
                            let f = x[j] - x[j].floor();
                            pseudo.record(j, up, *deg_slot, f);
                        }
                        // Child closes entirely: maximal information.
                        LpStatus::Infeasible => *deg_slot = 1e12,
                        LpStatus::Unbounded => *deg_slot = 0.0,
                    },
                    // Probe truncated: no information from this side.
                    Err(LpError::IterationLimit { iterations }) => {
                        stats.lp_iterations += iterations;
                        *deg_slot = 0.0;
                    }
                    Err(e) => return Err(e),
                }
            }
            let score = degs[0] * degs[1] + 1e-6 * (degs[0] + degs[1]);
            if score > best.1 {
                best = (j, score);
            }
        }
        // Restore the node's own bounds for whoever touches `lp` next.
        lp.apply_node_bounds(bounds)?;
        Ok(best.0)
    }

    /// Runs branch and cut to completion (or the node limit).
    pub fn solve(&mut self) -> LpResult<MipResult> {
        let mut tree: SearchTree<NodePayload> =
            SearchTree::with_root(NodePayload::default(), self.node_bytes);
        let mut policy = PolicyImpl::new(self.cfg.policy);
        let mut pseudo = PseudoCosts::default();
        let mut stats = SolveStats {
            strategy: self.strategy_name,
            ..Default::default()
        };
        let mut incumbent: Option<(f64, Vec<f64>)> = None; // (internal, x)
                                                           // Warm-start entry points: a pooled solution becomes the initial
                                                           // incumbent (after validating on *this* instance — a perturbed
                                                           // re-submission may have made it infeasible), and a pooled basis
                                                           // warm-starts the root relaxation like a parent basis would.
        if let Some(seed) = &self.cfg.warm_solution {
            let mut p = seed.clone();
            for j in self.instance.integral_indices() {
                if let Some(v) = p.get_mut(j) {
                    *v = v.round();
                }
            }
            if self.instance.is_integer_feasible(&p, 1e-6) {
                let internal = self.internal(self.instance.objective_value(&p));
                incumbent = Some((internal, p));
                stats.metrics.incr(names::BB_WARM_SEEDS, 1.0);
                let obj = self.to_source(internal);
                gmip_trace::record(|| {
                    Event::instant(Track::solver(), "warm_seed", 0.0).arg("objective", obj)
                });
            }
        }
        if self.cfg.warm_start {
            if let Some(b) = self.cfg.root_basis.clone() {
                let root = tree.root();
                tree.node_mut(root).data.parent_basis = Some(b);
            }
        }
        let mut lp_slot: Option<LpSolver<E>> = None;
        let mut global_cuts: Vec<Cut> = Vec::new();
        let mut early_stop: Option<MipStatus> = None;
        let nnz: usize = self.instance.cons.iter().map(|c| c.coeffs.len()).sum();
        let propagator = (self.cfg.propagate || self.cfg.heuristics.fix_and_propagate_period > 0)
            .then(|| Propagator::new(&self.instance));
        let mut first_incumbent_ns: Option<f64> = incumbent.as_ref().map(|_| self.sim_now_ns());

        self.tree_alloc(&mut stats); // root record

        while let Some(id) = policy.select(&tree) {
            if stats.nodes >= self.cfg.node_limit {
                early_stop = Some(MipStatus::NodeLimit);
                break;
            }
            // Gap / objective-limit early termination.
            if let Some((inc, _)) = &incumbent {
                if let Some(limit) = self.cfg.objective_limit {
                    if *inc >= self.internal(limit) - 1e-12 {
                        early_stop = Some(MipStatus::ObjectiveLimit);
                        break;
                    }
                }
                if self.cfg.gap_rel > 0.0 {
                    if let Some(bound) = tree.best_open_bound() {
                        let rel = (bound - inc).max(0.0) / inc.abs().max(1.0);
                        if rel <= self.cfg.gap_rel {
                            early_stop = Some(MipStatus::GapLimit);
                            break;
                        }
                    }
                }
            }
            tree.begin_evaluation(id);
            // Pre-LP bound pruning against the current incumbent.
            let inherited = tree.node(id).bound;
            if let Some((inc, _)) = &incumbent {
                if inherited <= inc + self.cfg.prune_tol {
                    tree.settle(id, NodeState::Pruned, inherited);
                    policy.notify(id);
                    continue;
                }
            }
            stats.nodes += 1;
            let is_root = id == tree.root();
            let mut bounds = tree.node(id).data.bounds.clone();
            let parent_basis = tree.node_mut(id).data.parent_basis.take();
            let branch_info = tree.node(id).data.branch_info;

            let node_t0 = self.sim_now_ns();
            // Domain propagation: tighten the node's box (and detect
            // infeasibility) before any simplex work is spent. Tightened
            // bounds flow into the node's LP and its children; every
            // reduction is activity-sound, so the optimum survives.
            if self.cfg.propagate {
                let p = propagator.as_ref().expect("propagator built");
                let (mut lb, mut ub) = p.node_box(&bounds);
                let out = p.propagate(&mut lb, &mut ub, self.cfg.propagate_rounds);
                self.charge_prop(p, &[out.rounds]);
                stats.metrics.incr(names::PROP_NODES, 1.0);
                stats.metrics.incr(names::PROP_ROUNDS, out.rounds as f64);
                stats
                    .metrics
                    .incr(names::PROP_TIGHTENINGS, out.tightenings as f64);
                if out.infeasible {
                    stats.metrics.incr(names::PROP_INFEASIBLE, 1.0);
                    tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
                    policy.notify(id);
                    self.node_span(id, "prop_infeasible", node_t0);
                    continue;
                }
                bounds = p.bound_changes(&lb, &ub);
            }
            let (sol, basis) = self.evaluate(
                &mut lp_slot,
                is_root,
                &bounds,
                parent_basis,
                &mut global_cuts,
                &mut stats,
            )?;
            policy.notify(id);

            match sol.status {
                LpStatus::Infeasible => {
                    tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
                    self.node_span(id, "infeasible", node_t0);
                }
                LpStatus::Unbounded => {
                    if is_root {
                        if let Some(lp) = &lp_slot {
                            stats.metrics.merge(lp.metrics());
                        }
                        return Ok(self.finish(MipStatus::Unbounded, None, stats, tree));
                    }
                    return Err(LpError::Shape(
                        "child LP unbounded under tightened bounds".into(),
                    ));
                }
                LpStatus::Optimal => {
                    let internal = self.internal(sol.objective);
                    if is_root {
                        stats.root_basis = basis.clone();
                    }
                    // Pseudocost learning from the parent bound.
                    if let Some(bi) = branch_info {
                        pseudo.record(
                            bi.var,
                            bi.up,
                            (bi.parent_bound - internal).max(0.0),
                            bi.frac,
                        );
                    }
                    let inc_val = incumbent
                        .as_ref()
                        .map(|(v, _)| *v)
                        .unwrap_or(f64::NEG_INFINITY);
                    if internal <= inc_val + self.cfg.prune_tol {
                        tree.settle(id, NodeState::Pruned, internal);
                        self.node_span(id, "pruned", node_t0);
                        continue;
                    }
                    let frac = branch::fractional_vars(&self.instance, &sol.x, self.cfg.int_tol);
                    if frac.is_empty() {
                        tree.settle(id, NodeState::Feasible, internal);
                        self.node_span(id, "integer_feasible", node_t0);
                        if self.accept_incumbent(&sol.x, internal, &mut incumbent) {
                            stats.metrics.incr(names::BB_INCUMBENTS, 1.0);
                            first_incumbent_ns.get_or_insert_with(|| self.sim_now_ns());
                            self.incumbent_mark(self.to_source(internal), "node");
                        }
                        if let Some((inc, _)) = &incumbent {
                            tree.prune_dominated(*inc, self.cfg.prune_tol);
                        }
                        continue;
                    }
                    // Heuristics.
                    if self.cfg.heuristics.rounding {
                        self.charge_host(2.0 * nnz as f64, (nnz * 16) as f64);
                        if let Some((obj, p)) = heur::rounding(&self.instance, &sol.x, 1e-6) {
                            let cand = self.internal(obj);
                            let cur = incumbent
                                .as_ref()
                                .map(|(v, _)| *v)
                                .unwrap_or(f64::NEG_INFINITY);
                            if cand > cur + self.cfg.prune_tol {
                                incumbent = Some((cand, p));
                                stats.heur_incumbents += 1;
                                stats.metrics.incr(names::BB_INCUMBENTS, 1.0);
                                first_incumbent_ns.get_or_insert_with(|| self.sim_now_ns());
                                self.incumbent_mark(self.to_source(cand), "rounding");
                                tree.prune_dominated(cand, self.cfg.prune_tol);
                            }
                        }
                    }
                    // Fix-and-propagate dive (gmip-prop), on its period.
                    let fp_period = self.cfg.heuristics.fix_and_propagate_period;
                    if fp_period > 0 && stats.nodes.is_multiple_of(fp_period) {
                        let p = propagator.as_ref().expect("propagator built");
                        let (lb, ub) = p.node_box(&bounds);
                        let out = p.fix_and_propagate(
                            &sol.x,
                            &lb,
                            &ub,
                            self.cfg.int_tol,
                            self.cfg.propagate_rounds,
                        );
                        self.charge_prop(p, &[out.rounds]);
                        stats.metrics.incr(names::HEUR_ATTEMPTS, 1.0);
                        stats.metrics.incr(names::HEUR_REPAIRS, out.repairs as f64);
                        if out.aborted {
                            stats.metrics.incr(names::HEUR_ABORTS, 1.0);
                        }
                        if let Some((obj, pt)) = out.candidate {
                            let cand = self.internal(obj);
                            let cur = incumbent
                                .as_ref()
                                .map(|(v, _)| *v)
                                .unwrap_or(f64::NEG_INFINITY);
                            if cand > cur + self.cfg.prune_tol {
                                incumbent = Some((cand, pt));
                                stats.heur_incumbents += 1;
                                stats.metrics.incr(names::BB_INCUMBENTS, 1.0);
                                stats.metrics.incr(names::HEUR_INCUMBENTS, 1.0);
                                first_incumbent_ns.get_or_insert_with(|| self.sim_now_ns());
                                self.incumbent_mark(self.to_source(cand), "fix_and_propagate");
                                tree.prune_dominated(cand, self.cfg.prune_tol);
                            }
                        }
                    }
                    if is_root && self.cfg.heuristics.diving && self.cfg.engine_reuse {
                        let lp = lp_slot.as_mut().expect("root lp present");
                        if let Some((obj, p)) = heur::dive(
                            lp,
                            &self.instance,
                            &bounds,
                            &sol.x,
                            self.cfg.heuristics.dive_depth,
                            self.cfg.int_tol,
                        )? {
                            let cand = self.internal(obj);
                            let cur = incumbent
                                .as_ref()
                                .map(|(v, _)| *v)
                                .unwrap_or(f64::NEG_INFINITY);
                            if cand > cur + self.cfg.prune_tol {
                                incumbent = Some((cand, p));
                                stats.heur_incumbents += 1;
                                stats.metrics.incr(names::BB_INCUMBENTS, 1.0);
                                first_incumbent_ns.get_or_insert_with(|| self.sim_now_ns());
                                self.incumbent_mark(self.to_source(cand), "diving");
                                tree.prune_dominated(cand, self.cfg.prune_tol);
                            }
                        }
                    }
                    // Branch.
                    let mut decision =
                        branch::decide(self.cfg.branching, &self.instance, &sol.x, &frac, &pseudo);
                    if self.cfg.branching == crate::config::BranchRule::Strong
                        && self.cfg.engine_reuse
                        && self.cfg.warm_start
                        && frac.len() > 1
                    {
                        if let (Some(lp), Some(b)) = (lp_slot.as_mut(), basis.as_ref()) {
                            let var = self.strong_branch(
                                lp,
                                &bounds,
                                b,
                                &frac,
                                &sol.x,
                                internal,
                                &mut pseudo,
                                &mut stats,
                            )?;
                            decision = branch::BranchDecision {
                                var,
                                value: sol.x[var],
                                down_ub: sol.x[var].floor(),
                                up_lb: sol.x[var].ceil(),
                            };
                        }
                    }
                    let (cur_lb, cur_ub) = self.effective_bounds(&bounds, decision.var);
                    let f = decision.value - decision.value.floor();
                    let mk_child = |up: bool| {
                        let mut child_bounds = bounds.clone();
                        if up {
                            child_bounds.push(BoundChange {
                                var: decision.var,
                                lb: decision.up_lb,
                                ub: cur_ub,
                            });
                        } else {
                            child_bounds.push(BoundChange {
                                var: decision.var,
                                lb: cur_lb,
                                ub: decision.down_ub,
                            });
                        }
                        let label = if up {
                            format!(
                                "{} ≥ {}",
                                self.instance.vars[decision.var].name, decision.up_lb
                            )
                        } else {
                            format!(
                                "{} ≤ {}",
                                self.instance.vars[decision.var].name, decision.down_ub
                            )
                        };
                        (
                            label,
                            NodePayload {
                                bounds: child_bounds,
                                parent_basis: basis.clone(),
                                branch_info: Some(BranchInfo {
                                    var: decision.var,
                                    up,
                                    frac: f,
                                    parent_bound: internal,
                                }),
                            },
                        )
                    };
                    let children = vec![mk_child(false), mk_child(true)];
                    tree.branch(id, internal, children);
                    self.node_span(id, "branched", node_t0);
                    self.tree_alloc(&mut stats);
                    self.tree_alloc(&mut stats);
                }
            }
        }

        let status = match early_stop {
            Some(s) => s,
            None if incumbent.is_some() => MipStatus::Optimal,
            None => MipStatus::Infeasible,
        };
        // Gap for early stops.
        if early_stop.is_some() {
            let best_open = tree.best_open_bound().unwrap_or(f64::NEG_INFINITY);
            let inc = incumbent
                .as_ref()
                .map(|(v, _)| *v)
                .unwrap_or(f64::NEG_INFINITY);
            stats.gap = (best_open - inc).max(0.0);
        }
        stats.tree = tree.stats().clone();
        if let Some(lp) = &lp_slot {
            stats.metrics.merge(lp.metrics());
        }
        if let Some(t) = first_incumbent_ns {
            stats.metrics.set_gauge(names::HEUR_FIRST_INCUMBENT_NS, t);
        }
        Ok(self.finish_with_incumbent(status, incumbent, stats, tree))
    }

    /// Installs a candidate incumbent if it improves; returns whether it did.
    fn accept_incumbent(
        &self,
        x: &[f64],
        internal: f64,
        incumbent: &mut Option<(f64, Vec<f64>)>,
    ) -> bool {
        // Round integral variables for exact reporting; verify.
        let mut p = x.to_vec();
        for j in self.instance.integral_indices() {
            p[j] = p[j].round();
        }
        let point = if self.instance.is_integer_feasible(&p, 1e-5) {
            p
        } else {
            x.to_vec()
        };
        let cur = incumbent
            .as_ref()
            .map(|(v, _)| *v)
            .unwrap_or(f64::NEG_INFINITY);
        if internal > cur {
            *incumbent = Some((internal, point));
            true
        } else {
            false
        }
    }

    fn finish(
        &self,
        status: MipStatus,
        incumbent: Option<(f64, Vec<f64>)>,
        stats: SolveStats,
        tree: SearchTree<NodePayload>,
    ) -> MipResult {
        self.finish_with_incumbent(status, incumbent, stats, tree)
    }

    fn finish_with_incumbent(
        &self,
        status: MipStatus,
        incumbent: Option<(f64, Vec<f64>)>,
        mut stats: SolveStats,
        tree: SearchTree<NodePayload>,
    ) -> MipResult {
        stats.host = self.host.stats();
        if let Some(a) = &self.lp_accel {
            stats.device = a.stats();
        }
        let host_ns = self.host.elapsed_ns();
        let dev_ns = self.lp_accel.as_ref().map(Accel::elapsed_ns).unwrap_or(0.0);
        stats.sim_time_ns = if self.overlap_host {
            // Strategy 3: many-core host work proceeds concurrently with the
            // device's LP stream.
            host_ns.max(dev_ns)
        } else {
            host_ns + dev_ns
        };
        if stats.tree.created == 0 {
            stats.tree = tree.stats().clone();
        }
        // Fold node-lifecycle counters and the executor ledgers into the
        // unified metrics registry (the CLI/bench summary view).
        let (created, branched, feasible, infeas, pruned) = (
            stats.tree.created,
            stats.tree.branched,
            stats.tree.feasible,
            stats.tree.infeasible,
            stats.tree.pruned,
        );
        let (evaluated, cuts, heur, lp_iters) = (
            stats.nodes,
            stats.cuts,
            stats.heur_incumbents,
            stats.lp_iterations,
        );
        let m = &mut stats.metrics;
        m.incr(names::BB_NODES_CREATED, created as f64);
        m.incr(names::BB_NODES_EVALUATED, evaluated as f64);
        m.incr(names::BB_NODES_BRANCHED, branched as f64);
        m.incr(names::BB_NODES_INTEGER_FEASIBLE, feasible as f64);
        m.incr(names::BB_NODES_INFEASIBLE, infeas as f64);
        m.incr(names::BB_NODES_PRUNED, pruned as f64);
        m.incr(names::BB_CUTS_ADDED, cuts as f64);
        m.incr(names::BB_HEUR_INCUMBENTS, heur as f64);
        // lp.* iterations were merged from the LP solver when an engine was
        // retained; the fresh-engine-per-node path only has the field count.
        if m.counter(names::LP_ITERATIONS) == 0.0 {
            m.incr(names::LP_ITERATIONS, lp_iters as f64);
        }
        stats.metrics.merge(&self.host.metrics());
        if let Some(a) = &self.lp_accel {
            stats.metrics.merge(&a.metrics());
        }
        let (objective, x) = match &incumbent {
            Some((internal, p)) => (self.to_source(*internal), p.clone()),
            None => (f64::NAN, Vec::new()),
        };
        MipResult {
            status,
            objective,
            x,
            stats,
            tree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{
        figure1_knapsack, infeasible_instance, textbook_mip, unbounded_instance,
    };
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};
    use gmip_problems::generators::{generalized_assignment, set_cover, unit_commitment};

    fn solve_host(instance: MipInstance) -> MipResult {
        let mut s = MipSolver::host_baseline(instance, MipConfig::default());
        s.solve().unwrap()
    }

    #[test]
    fn textbook_mip_optimum_is_20() {
        let r = solve_host(textbook_mip());
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6, "obj = {}", r.objective);
        assert!((r.x[0] - 4.0).abs() < 1e-6);
        assert!(r.x[1].abs() < 1e-6);
        assert!(r.tree.all_settled());
    }

    #[test]
    fn figure1_knapsack_optimum_is_14() {
        let r = solve_host(figure1_knapsack());
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 14.0).abs() < 1e-6);
    }

    #[test]
    fn propagation_and_fix_and_propagate_match_brute_force() {
        for seed in 0..4 {
            let m = knapsack(14, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let mut cfg = MipConfig::default();
            cfg.propagate = true;
            cfg.heuristics.fix_and_propagate_period = 3;
            let mut s = MipSolver::host_baseline(m, cfg);
            let r = s.solve().unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: got {} expected {expected}",
                r.objective
            );
            assert!(r.stats.metrics.counter(names::PROP_NODES) > 0.0);
            assert!(
                r.stats.metrics.gauge(names::HEUR_FIRST_INCUMBENT_NS) > 0.0,
                "first-incumbent time must be recorded"
            );
        }
    }

    #[test]
    fn propagation_detects_infeasibility_before_lp() {
        let mut cfg = MipConfig::default();
        cfg.propagate = true;
        let mut s = MipSolver::host_baseline(infeasible_instance(), cfg);
        let r = s.solve().unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.stats.metrics.counter(names::PROP_INFEASIBLE) >= 1.0);
    }

    #[test]
    fn knapsacks_match_brute_force() {
        for seed in 0..6 {
            let m = knapsack(14, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_host(m);
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: got {} expected {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn infeasible_and_unbounded() {
        let r = solve_host(infeasible_instance());
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.objective.is_nan());
        let r = solve_host(unbounded_instance());
        assert_eq!(r.status, MipStatus::Unbounded);
    }

    #[test]
    fn minimize_set_cover_solves() {
        let m = set_cover(10, 8, 0.35, 7);
        let r = solve_host(m.clone());
        assert_eq!(r.status, MipStatus::Optimal);
        assert!(m.is_integer_feasible(&r.x, 1e-5));
        // Sanity: optimal cost between the LP bound and the all-ones cost.
        let all: f64 = m.obj_coeffs().iter().sum();
        assert!(r.objective > 0.0 && r.objective <= all + 1e-9);
    }

    #[test]
    fn mixed_unit_commitment_solves() {
        let m = unit_commitment(2, 2, 3);
        let r = solve_host(m.clone());
        assert_eq!(r.status, MipStatus::Optimal);
        assert!(m.is_integer_feasible(&r.x, 1e-5));
    }

    #[test]
    fn equality_constrained_gap_solves() {
        let m = generalized_assignment(2, 4, 11);
        let r = solve_host(m.clone());
        assert_eq!(r.status, MipStatus::Optimal);
        assert!(m.is_integer_feasible(&r.x, 1e-5));
    }

    #[test]
    fn node_limit_reports_gap() {
        let m = knapsack(30, 0.5, 1);
        let mut cfg = MipConfig::default();
        cfg.node_limit = 3;
        cfg.cuts.enabled = false;
        cfg.heuristics.rounding = false;
        let mut s = MipSolver::host_baseline(m, cfg);
        let r = s.solve().unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.stats.nodes <= 3);
    }

    #[test]
    fn policies_agree_on_optimum() {
        let m = knapsack(12, 0.5, 9);
        let expected = knapsack_brute_force(&m);
        for policy in [
            PolicyKind::BestFirst,
            PolicyKind::DepthFirst,
            PolicyKind::BreadthFirst,
            PolicyKind::ReuseAffinity,
        ] {
            let cfg = MipConfig {
                policy,
                ..Default::default()
            };
            let mut s = MipSolver::host_baseline(m.clone(), cfg);
            let r = s.solve().unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "{policy:?}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "{policy:?}: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn branch_rules_agree_on_optimum() {
        use crate::config::BranchRule;
        let m = knapsack(12, 0.4, 4);
        let expected = knapsack_brute_force(&m);
        for rule in [BranchRule::MostFractional, BranchRule::PseudoCost] {
            let cfg = MipConfig {
                branching: rule,
                ..Default::default()
            };
            let mut s = MipSolver::host_baseline(m.clone(), cfg);
            let r = s.solve().unwrap();
            assert!((r.objective - expected).abs() < 1e-6, "{rule:?}");
        }
    }

    #[test]
    fn cuts_reduce_node_count() {
        // Aggregate across seeds: root cuts should not increase total nodes
        // on knapsacks (cover cuts bite).
        let mut with = 0usize;
        let mut without = 0usize;
        for seed in 0..4 {
            let m = knapsack(16, 0.5, seed);
            let mut cfg = MipConfig::default();
            cfg.heuristics.rounding = false;
            let mut s = MipSolver::host_baseline(m.clone(), cfg.clone());
            let r1 = s.solve().unwrap();
            with += r1.stats.nodes;
            cfg.cuts.enabled = false;
            let mut s = MipSolver::host_baseline(m, cfg);
            let r2 = s.solve().unwrap();
            without += r2.stats.nodes;
            assert!((r1.objective - r2.objective).abs() < 1e-6, "seed {seed}");
        }
        assert!(with <= without, "cuts increased nodes: {with} vs {without}");
    }

    #[test]
    fn fresh_engine_mode_matches_reuse() {
        let m = knapsack(12, 0.5, 2);
        let expected = knapsack_brute_force(&m);
        let cfg = MipConfig {
            engine_reuse: false,
            ..Default::default()
        };
        let mut s = MipSolver::host_baseline(m, cfg);
        let r = s.solve().unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - expected).abs() < 1e-6);
    }

    #[test]
    fn gap_limit_stops_early_within_tolerance() {
        let m = knapsack(22, 0.5, 13);
        let mut exact_cfg = MipConfig::default();
        exact_cfg.heuristics.rounding = true;
        let exact = MipSolver::host_baseline(m.clone(), exact_cfg)
            .solve()
            .unwrap();
        let mut cfg = MipConfig::default();
        cfg.gap_rel = 0.02; // 2% gap acceptable
        let mut s = MipSolver::host_baseline(m, cfg);
        let r = s.solve().unwrap();
        assert!(matches!(r.status, MipStatus::GapLimit | MipStatus::Optimal));
        // Within 2% of the true optimum.
        assert!(
            r.objective >= exact.objective * 0.98 - 1e-9,
            "gap-limited {} vs exact {}",
            r.objective,
            exact.objective
        );
        if r.status == MipStatus::GapLimit {
            assert!(r.stats.nodes <= exact.stats.nodes);
        }
    }

    #[test]
    fn objective_limit_stops_on_good_incumbent() {
        let m = knapsack(18, 0.5, 6);
        let exact = MipSolver::host_baseline(m.clone(), MipConfig::default())
            .solve()
            .unwrap();
        let mut cfg = MipConfig::default();
        // Ask for anything at least 80% of the optimum.
        cfg.objective_limit = Some(0.8 * exact.objective);
        let mut s = MipSolver::host_baseline(m, cfg);
        let r = s.solve().unwrap();
        assert!(matches!(
            r.status,
            MipStatus::ObjectiveLimit | MipStatus::Optimal
        ));
        assert!(r.objective >= 0.8 * exact.objective - 1e-9);
    }

    #[test]
    fn strong_branching_matches_optimum_with_fewer_nodes() {
        use crate::config::BranchRule;
        let mut strong_nodes = 0usize;
        let mut plain_nodes = 0usize;
        for seed in 0..4 {
            let m = knapsack(16, 0.5, seed + 40);
            let expected = knapsack_brute_force(&m);
            let mut cfg = MipConfig::default();
            cfg.branching = BranchRule::Strong;
            cfg.cuts.enabled = false;
            cfg.heuristics.rounding = false;
            let r_strong = MipSolver::host_baseline(m.clone(), cfg.clone())
                .solve()
                .unwrap();
            assert_eq!(r_strong.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r_strong.objective - expected).abs() < 1e-6,
                "seed {seed}: strong {} vs {expected}",
                r_strong.objective
            );
            cfg.branching = BranchRule::MostFractional;
            let r_plain = MipSolver::host_baseline(m, cfg).solve().unwrap();
            strong_nodes += r_strong.stats.nodes;
            plain_nodes += r_plain.stats.nodes;
        }
        assert!(
            strong_nodes <= plain_nodes,
            "strong branching used more nodes: {strong_nodes} vs {plain_nodes}"
        );
    }

    #[test]
    fn solve_populates_unified_metrics_and_trace() {
        use gmip_gpu::Accel;
        use gmip_trace::TraceSession;
        let session = TraceSession::start();
        let m = knapsack(12, 0.5, 3);
        let mut s = MipSolver::on_accel(m, MipConfig::default(), Accel::gpu(1));
        let r = s.solve().unwrap();
        let trace = session.finish();
        let mm = &r.stats.metrics;
        assert_eq!(mm.counter(names::BB_NODES_EVALUATED), r.stats.nodes as f64);
        assert_eq!(mm.counter(names::BB_CUTS_ADDED), r.stats.cuts as f64);
        assert!(mm.counter(names::LP_ITERATIONS) > 0.0);
        assert!(mm.counter(names::GPU_KERNEL_LAUNCHES) > 0.0);
        // Node-lifecycle spans and device kernel spans landed in the trace.
        assert!(trace.events.iter().any(|e| e.event.name == "node"));
        assert!(trace
            .events
            .iter()
            .any(|e| e.event.track.group == gmip_trace::TrackGroup::Gpu(0)));
    }

    #[test]
    fn cold_start_mode_matches_warm() {
        let m = knapsack(10, 0.5, 5);
        let expected = knapsack_brute_force(&m);
        let cfg = MipConfig {
            warm_start: false,
            ..Default::default()
        };
        let mut s = MipSolver::host_baseline(m, cfg);
        let r = s.solve().unwrap();
        assert!((r.objective - expected).abs() < 1e-6);
    }
}
