//! Primal heuristics.
//!
//! Part of the paper's Strategy 3 ("the ease of implementing advanced
//! heuristics such as probing, cut generation, column generation" on the
//! host while the device carries the LP loads). Both heuristics here run
//! host-side; diving's LP re-solves go through whatever engine the solver
//! uses, so its device cost is charged naturally.

use gmip_lp::{BoundChange, LpResult, LpSolver, LpStatus, SimplexEngine};
use gmip_problems::MipInstance;

/// Rounds the integral variables of `x` and verifies instance feasibility,
/// returning the best feasible `(objective_source_sense, point)` found.
///
/// Three roundings are tried: nearest (good for packing-style ≤ rows),
/// ceiling (repairs covering-style ≥ rows, where rounding down breaks
/// feasibility), and floor. Among the feasible ones the best objective in
/// the instance's own sense is returned.
pub fn rounding(instance: &MipInstance, x: &[f64], tol: f64) -> Option<(f64, Vec<f64>)> {
    let integral = instance.integral_indices();
    let mut best: Option<(f64, Vec<f64>)> = None;
    for mode in 0..3u8 {
        let mut p = x.to_vec();
        for &j in &integral {
            p[j] = match mode {
                0 => p[j].round(),
                1 => p[j].ceil().min(instance.vars[j].ub),
                _ => p[j].floor().max(instance.vars[j].lb),
            };
        }
        if instance.is_integer_feasible(&p, tol) {
            let obj = instance.objective_value(&p);
            let better = match &best {
                None => true,
                Some((cur, _)) => instance.is_better(obj, *cur),
            };
            if better {
                best = Some((obj, p));
            }
        }
    }
    best
}

/// Diving heuristic: from the current LP solution, repeatedly fix the
/// least-fractional integral variable to its rounded value and warm
/// re-solve, until an integral point is reached, the LP goes infeasible, or
/// `max_depth` fixings have been made.
///
/// The solver's bounds are left modified; callers re-apply node bounds
/// before the next node evaluation (which the branch-and-bound loop does
/// anyway).
pub fn dive<E: SimplexEngine>(
    lp: &mut LpSolver<E>,
    instance: &MipInstance,
    node_bounds: &[BoundChange],
    start_x: &[f64],
    max_depth: usize,
    int_tol: f64,
) -> LpResult<Option<(f64, Vec<f64>)>> {
    let mut x = start_x.to_vec();
    for _ in 0..max_depth {
        // Find the least-fractional fractional variable (most roundable).
        let frac_vars: Vec<usize> = instance
            .integral_indices()
            .into_iter()
            .filter(|&j| (x[j] - x[j].round()).abs() > int_tol)
            .collect();
        if frac_vars.is_empty() {
            // Integral: verify and report (restoring the node's bounds).
            lp.apply_node_bounds(node_bounds)?;
            return Ok(rounding(instance, &x, 1e-6));
        }
        let j = frac_vars
            .into_iter()
            .min_by(|&a, &b| {
                let fa = (x[a] - x[a].round()).abs();
                let fb = (x[b] - x[b].round()).abs();
                fa.partial_cmp(&fb).expect("fractionality is never NaN")
            })
            .expect("non-empty");
        let target = x[j].round();
        lp.set_var_bounds(j, target, target)?;
        let sol = lp.resolve()?;
        match sol.status {
            LpStatus::Optimal => x = sol.x,
            _ => {
                // Dead end: restore node bounds and give up.
                lp.apply_node_bounds(node_bounds)?;
                return Ok(None);
            }
        }
    }
    lp.apply_node_bounds(node_bounds)?;
    Ok(rounding(instance, &x, 1e-6))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_lp::{HostEngine, LpConfig, StandardLp};
    use gmip_problems::catalog::{figure1_knapsack, textbook_mip};

    #[test]
    fn rounding_accepts_feasible_roundings() {
        let m = figure1_knapsack();
        // LP-ish point: x0 = 1, x2 = 0.999, rest 0 → rounds to (1,0,1,0),
        // weight 8 ≤ 8 feasible, value 14.
        let got = rounding(&m, &[1.0, 0.0, 0.999, 0.0], 1e-6).unwrap();
        assert_eq!(got.0, 14.0);
        assert_eq!(got.1, vec![1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn rounding_rejects_infeasible_roundings() {
        let m = figure1_knapsack();
        // (1, 1, 0.6, 0) rounds to (1,1,1,0): weight 12 > 8.
        assert!(rounding(&m, &[1.0, 1.0, 0.6, 0.0], 1e-6).is_none());
    }

    #[test]
    fn dive_finds_integer_point() {
        let m = textbook_mip();
        let std = StandardLp::from_instance(&m, &[]);
        let mut lp = LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
        let root = lp.solve().unwrap();
        assert_eq!(root.status, gmip_lp::LpStatus::Optimal);
        let found = dive(&mut lp, &m, &[], &root.x, 10, 1e-6).unwrap();
        let (obj, p) = found.expect("dive should land on an integer point");
        assert!(m.is_integer_feasible(&p, 1e-6));
        // Any integer-feasible objective is a valid incumbent; optimum is 20.
        assert!(obj <= 20.0 + 1e-9);
        assert!(obj > 0.0);
    }

    #[test]
    fn dive_depth_zero_rounds_only() {
        let m = textbook_mip();
        let std = StandardLp::from_instance(&m, &[]);
        let mut lp = LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
        let root = lp.solve().unwrap();
        // Depth 0: no fixings, just a rounding attempt on the root point.
        // Whatever comes back must be genuinely feasible and no better than
        // the true optimum (20).
        let found = dive(&mut lp, &m, &[], &root.x, 0, 1e-6).unwrap();
        if let Some((obj, p)) = found {
            assert!(m.is_integer_feasible(&p, 1e-6));
            assert!(obj <= 20.0 + 1e-9);
        }
    }
}
