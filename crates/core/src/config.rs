//! Solver configuration.

use gmip_lp::{Basis, LpConfig};

/// Node-selection policy choice (dispatches to `gmip_tree::policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Best bound first (fewest nodes, poor locality).
    BestFirst,
    /// Depth first (fast incumbents, small active set).
    DepthFirst,
    /// Breadth first (baseline with the worst locality).
    BreadthFirst,
    /// The GPU-aware reuse-affinity policy of Section 5.3.
    ReuseAffinity,
}

/// Branching-rule choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchRule {
    /// Most-fractional variable (closest to 0.5).
    MostFractional,
    /// Pseudocost branching with most-fractional initialization.
    PseudoCost,
    /// Strong branching: probe the top candidates with iteration-capped
    /// warm dual re-solves and pick the largest bound-degradation product.
    /// Requires engine reuse + warm starts; falls back to most-fractional
    /// otherwise. Knobs: [`MipConfig::strong_candidates`],
    /// [`MipConfig::strong_iter_cap`].
    Strong,
}

/// Cutting-plane configuration (root-only rounds; the generated cut
/// families — GMI and knapsack covers — are globally valid).
#[derive(Debug, Clone)]
pub struct CutConfig {
    /// Master switch.
    pub enabled: bool,
    /// Maximum separation rounds at the root.
    pub max_rounds: usize,
    /// Maximum cuts added per round.
    pub max_per_round: usize,
    /// Minimum violation for a cut to be kept.
    pub min_violation: f64,
}

impl Default for CutConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            max_rounds: 5,
            max_per_round: 10,
            min_violation: 1e-4,
        }
    }
}

/// Primal-heuristic configuration.
#[derive(Debug, Clone)]
pub struct HeurConfig {
    /// Try rounding every node LP solution.
    pub rounding: bool,
    /// Run a diving pass from the root relaxation.
    pub diving: bool,
    /// Maximum diving depth (variables fixed).
    pub dive_depth: usize,
    /// Run the fix-and-propagate dive every this many evaluated nodes
    /// (`gmip-prop`); `0` disables it. Off by default — opt-in, so the
    /// committed baselines stay valid.
    pub fix_and_propagate_period: usize,
}

impl Default for HeurConfig {
    fn default() -> Self {
        Self {
            rounding: true,
            diving: false,
            dive_depth: 20,
            fix_and_propagate_period: 0,
        }
    }
}

/// Full branch-and-cut configuration.
#[derive(Debug, Clone)]
pub struct MipConfig {
    /// LP engine tolerances and limits.
    pub lp: LpConfig,
    /// Maximum nodes to evaluate before giving up with `NodeLimit`.
    pub node_limit: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Bound-domination tolerance for pruning.
    pub prune_tol: f64,
    /// Node-selection policy.
    pub policy: PolicyKind,
    /// Branching rule.
    pub branching: BranchRule,
    /// Cutting planes.
    pub cuts: CutConfig,
    /// Primal heuristics.
    pub heuristics: HeurConfig,
    /// Run iterated activity-based bound propagation (`gmip-prop`) on every
    /// node's box before LP work: infeasible nodes settle without touching
    /// the engine and integer bounds tighten. Off by default (opt-in).
    pub propagate: bool,
    /// Propagation round cap per node (`prop.activity`/`prop.tighten`/
    /// `prop.reduce` kernel trios); only read when [`Self::propagate`] is on.
    pub propagate_rounds: usize,
    /// Reuse one LP engine across tree nodes (Section 5.3). When false, a
    /// fresh engine is built per node — on a device backend that re-uploads
    /// the matrix every node, the costly baseline of experiment E3c/E8.
    pub engine_reuse: bool,
    /// Warm-start each node from its parent's basis.
    pub warm_start: bool,
    /// Stop early once the relative optimality gap
    /// `(best open bound − incumbent) / max(1, |incumbent|)` falls to this
    /// value (0.0 = prove optimality exactly).
    pub gap_rel: f64,
    /// Stop as soon as an incumbent at least this good (source sense) is
    /// found.
    pub objective_limit: Option<f64>,
    /// Strong branching: number of most-fractional candidates probed.
    pub strong_candidates: usize,
    /// Strong branching: iteration cap per probe re-solve.
    pub strong_iter_cap: usize,
    /// Record an exactly-checkable [`gmip_lp::LpCertificate`] for every node
    /// LP outcome in `SolveStats::certificates` (dual bounds for optimal
    /// nodes, Farkas witnesses for infeasible ones). Off by default: the
    /// record grows with the tree and exists for the `gmip-verify` oracle.
    pub collect_certificates: bool,
    /// A candidate solution (source-sense point over the structural
    /// variables) installed as the initial incumbent if it validates
    /// integer-feasible on the instance. Lets a caller — the `gmip-serve`
    /// solution pool in particular — warm-start a perturbed re-submission
    /// from a pooled answer so the tree prunes against it from node one.
    /// Silently ignored when infeasible for this instance.
    pub warm_solution: Option<Vec<f64>>,
    /// A warm basis for the root relaxation (e.g. the final basis of a
    /// structurally identical solve), used exactly like a parent basis.
    /// Requires `warm_start`; ignored otherwise.
    pub root_basis: Option<Basis>,
}

impl Default for MipConfig {
    fn default() -> Self {
        Self {
            lp: LpConfig::standard(),
            node_limit: 100_000,
            int_tol: 1e-6,
            prune_tol: 1e-6,
            policy: PolicyKind::BestFirst,
            branching: BranchRule::MostFractional,
            cuts: CutConfig::default(),
            heuristics: HeurConfig::default(),
            propagate: false,
            propagate_rounds: 8,
            engine_reuse: true,
            warm_start: true,
            gap_rel: 0.0,
            objective_limit: None,
            strong_candidates: 4,
            strong_iter_cap: 50,
            collect_certificates: false,
            warm_solution: None,
            root_basis: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = MipConfig::default();
        assert!(c.engine_reuse);
        assert!(c.warm_start);
        assert!(c.cuts.enabled);
        assert!(c.heuristics.rounding);
        assert!(!c.heuristics.diving);
        assert!(!c.propagate, "propagation must be opt-in");
        assert_eq!(c.heuristics.fix_and_propagate_period, 0);
        assert!(c.propagate_rounds >= 1);
        assert!(c.int_tol > 0.0 && c.int_tol < 1e-3);
        assert!(c.node_limit > 1000);
        assert_eq!(c.gap_rel, 0.0);
        assert!(c.objective_limit.is_none());
    }
}
