//! Batched-wave branch and bound on one device — Section 5.5 with the
//! Section 4.3 kernel shape.
//!
//! Where [`crate::concurrent::solve_concurrent`] keeps one engine (and one
//! private matrix copy) per lane and joins every wave at a device-wide
//! `synchronize()`, this driver runs the [`gmip_lp::BatchedWaveEngine`]:
//! all lanes share one device-resident `[A | I]` matrix, every simplex
//! kernel class is issued as a single fused batched launch per lockstep
//! superstep, and lanes that finish their node LP retire at a stream-event
//! boundary and are refilled from the best-bound frontier immediately — no
//! lane ever waits in a join-all for the slowest lane of its wave.
//!
//! The wave width is auto-sized from device memory
//! ([`gmip_lp::wave_width`], the paper's `batch ≈ device_mem / matrix_mem`
//! rule), and parent bases are kept device-resident in an LRU pool so a
//! child's warm start is usually a pool hit instead of an H2D upload.

use crate::branch;
use crate::solver::MipStatus;
use gmip_gpu::{Accel, BackendKind, DeviceStats};
use gmip_linalg::batch::batch_size_bytes;
use gmip_linalg::DenseMatrix;
use gmip_lp::wave::BatchedWaveEngine;
use gmip_lp::{
    wave_width, Basis, BoundChange, LpConfig, LpResult, LpSolution, LpSolver, LpStatus,
    RecordingEngine, StandardLp,
};
use gmip_problems::{MipInstance, Objective};
use gmip_trace::{names, MetricsRegistry};
use gmip_tree::{NodeId, NodeState, SearchTree};

/// Configuration of the batched-wave solver.
#[derive(Debug, Clone)]
pub struct BatchedWaveConfig {
    /// Requested wave width (lanes); the effective width is clamped by
    /// device memory next to the shared matrix.
    pub lanes: usize,
    /// LP tolerances.
    pub lp: LpConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Pruning tolerance.
    pub prune_tol: f64,
    /// Node budget.
    pub node_limit: usize,
    /// Byte budget of the device-resident warm-basis pool.
    pub basis_pool_bytes: usize,
    /// Run batched domain propagation (`prop.*` kernel trios over the
    /// shared CSR matrix) on every refilled lane's box before its node LP.
    /// Off by default — opt-in, so committed baselines stay valid.
    pub propagate: bool,
    /// Propagation round cap per lane.
    pub propagate_rounds: usize,
    /// Run the batched fix-and-propagate dive across the collected frontier
    /// seeds every this many retired nodes; `0` disables it.
    pub heuristic_period: usize,
    /// Which executing backend runs the fused lane dispatches (the
    /// `prop.*` / `heur.*` waves here; simplex lanes journal on the host
    /// either way). Simulated charges are identical across backends.
    pub backend: BackendKind,
}

impl Default for BatchedWaveConfig {
    fn default() -> Self {
        Self {
            lanes: 4,
            lp: LpConfig::standard(),
            int_tol: 1e-6,
            prune_tol: 1e-6,
            node_limit: 100_000,
            basis_pool_bytes: 1 << 20,
            propagate: false,
            propagate_rounds: 8,
            heuristic_period: 0,
            backend: BackendKind::Sim,
        }
    }
}

/// Result of a batched-wave solve.
#[derive(Debug)]
pub struct WaveResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Lockstep supersteps executed.
    pub supersteps: usize,
    /// Lanes retired mid-flight (node LPs completed).
    pub retires: usize,
    /// Retired lanes refilled from the frontier without a barrier.
    pub refills: usize,
    /// Effective wave width after memory auto-sizing.
    pub width: usize,
    /// Device completion frontier, ns.
    pub makespan_ns: f64,
    /// Device ledger.
    pub device: DeviceStats,
    /// Peak device memory — one shared matrix plus per-lane state, so
    /// roughly flat in lanes (contrast `solve_concurrent`'s linear growth).
    pub peak_device_bytes: usize,
    /// Merged counters: device ledger + `wave.*`/`batch.*` + per-lane LP.
    pub metrics: MetricsRegistry,
    /// Device time of the first incumbent, ns (`None` if the solve never
    /// found one) — the E12 time-to-first-incumbent measure.
    pub first_incumbent_ns: Option<f64>,
}

/// Node payload of the batched-wave tree: bounds, the parent's basis for a
/// warm start, and the parent's id (the warm-basis pool key — both children
/// share it, so the second child is a pool hit).
#[derive(Debug, Clone, Default)]
struct WavePayload {
    bounds: Vec<BoundChange>,
    parent_basis: Option<Basis>,
    parent_id: NodeId,
}

/// Solves `instance` with a batched lockstep wave of up to `cfg.lanes` node
/// LPs on `accel`.
pub fn solve_batched_wave(
    instance: &MipInstance,
    cfg: &BatchedWaveConfig,
    accel: Accel,
) -> LpResult<WaveResult> {
    assert!(cfg.lanes >= 1, "need at least one lane");
    let accel = accel.with_backend(cfg.backend);
    let std = StandardLp::from_instance(instance, &[]);

    // Lane 0 doubles as the probe that captures the extended matrix the
    // solver lowers to, so the shared upload and the width sizing see the
    // exact `[A | I]` the engines iterate on.
    let mut ext: Option<DenseMatrix> = None;
    let mut lanes: Vec<LpSolver<RecordingEngine>> = vec![LpSolver::new(
        std.clone(),
        cfg.lp.clone(),
        |a: &DenseMatrix| {
            ext = Some(a.clone());
            RecordingEngine::new(a.clone())
        },
    )];
    let ext = ext.expect("engine factory runs during solver construction");

    let matrix_bytes = batch_size_bytes(std::slice::from_ref(&ext));
    let per_lane = BatchedWaveEngine::per_lane_bytes(ext.rows(), ext.cols());
    let width = wave_width(cfg.lanes, accel.mem_capacity(), matrix_bytes, per_lane);
    for _ in 1..width {
        lanes.push(LpSolver::new(std.clone(), cfg.lp.clone(), |a| {
            RecordingEngine::new(a.clone())
        }));
    }
    lanes.truncate(width);
    let mut wave = BatchedWaveEngine::new(accel.clone(), &ext, width, cfg.basis_pool_bytes)?;

    let internal = |source: f64| match instance.objective {
        Objective::Maximize => source,
        Objective::Minimize => -source,
    };
    let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
    let mut tree: SearchTree<WavePayload> =
        SearchTree::with_root(WavePayload::default(), node_bytes);
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let integral = instance.integral_indices();

    // The outcome a slot's in-flight lane will deliver when it retires.
    let mut in_flight: Vec<Option<(NodeId, LpSolution, Option<Basis>)>> =
        (0..width).map(|_| None).collect();
    let mut filled_once = vec![false; width];

    // Domain propagation + fix-and-propagate support (gmip-prop).
    let propagator =
        (cfg.propagate || cfg.heuristic_period > 0).then(|| gmip_prop::Propagator::new(instance));
    let mut aux = MetricsRegistry::default();
    let mut first_incumbent_ns: Option<f64> = None;
    // Fractional retiree seeds awaiting the next heuristic wave, and the
    // retire count since it last ran.
    let mut heur_seeds: Vec<(Vec<BoundChange>, Vec<f64>)> = Vec::new();
    let mut since_heur = 0usize;

    loop {
        // Refill every idle slot from the best-bound frontier: the lane's
        // host planner takes the reference pivot path eagerly (journaling
        // the device kernels), and the journal joins the wave in flight —
        // no barrier, no waiting on busier lanes.
        let mut frontier: Vec<NodeId> = tree
            .active_ids()
            .iter()
            .copied()
            .filter(|&id| {
                !in_flight
                    .iter()
                    .any(|f| matches!(f, Some((fid, _, _)) if *fid == id))
            })
            .collect();
        frontier.sort_by(|&a, &b| {
            tree.node(b)
                .bound
                .partial_cmp(&tree.node(a).bound)
                .expect("bounds are never NaN")
                .then(a.cmp(&b))
        });
        let mut next = frontier.into_iter();
        let mut pending: Vec<(usize, NodeId)> = Vec::new();
        for slot in 0..width {
            if in_flight[slot].is_some() || nodes >= cfg.node_limit {
                continue;
            }
            let Some(id) = next.next() else { break };
            tree.begin_evaluation(id);
            nodes += 1;
            pending.push((slot, id));
        }

        // Batched domain propagation across the whole refill batch: every
        // lane's box tightens in one fused `prop.*` kernel-trio sequence;
        // boxes that propagate to a contradiction settle without spending a
        // lane (or any simplex work) on them.
        let mut loads: Vec<(usize, NodeId, Vec<BoundChange>)> = Vec::new();
        let mut settled_by_prop = 0usize;
        if cfg.propagate {
            let p = propagator.as_ref().expect("propagator built");
            let mut boxes: Vec<(Vec<f64>, Vec<f64>)> = pending
                .iter()
                .map(|&(_, id)| p.node_box(&tree.node(id).data.bounds))
                .collect();
            let outs = p.propagate_wave(&accel, &mut boxes, cfg.propagate_rounds);
            for ((&(slot, id), out), (lb, ub)) in pending.iter().zip(&outs).zip(&boxes) {
                aux.incr(names::PROP_NODES, 1.0);
                aux.incr(names::PROP_ROUNDS, out.rounds as f64);
                aux.incr(names::PROP_TIGHTENINGS, out.tightenings as f64);
                if out.infeasible {
                    aux.incr(names::PROP_INFEASIBLE, 1.0);
                    tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
                    settled_by_prop += 1;
                } else {
                    loads.push((slot, id, p.bound_changes(lb, ub)));
                }
            }
        } else {
            for &(slot, id) in &pending {
                let bounds = tree.node(id).data.bounds.clone();
                loads.push((slot, id, bounds));
            }
        }

        for (slot, id, bounds) in loads {
            let warm = tree.node_mut(id).data.parent_basis.take();
            let parent_id = tree.node(id).data.parent_id;
            let lane = &mut lanes[slot];
            lane.apply_node_bounds(&bounds)?;
            let sol = match warm {
                Some(b) if b.n() == lane.standard().n() + lane.standard().m() => {
                    wave.touch_basis(parent_id as u64, 8 * (b.m() + b.n()))?;
                    lane.set_warm_basis(b)?;
                    lane.resolve()?
                }
                Some(_) | None => lane.solve()?,
            };
            let basis = lane.basis().cloned();
            let ops = lane.engine_mut().take_ops();
            if filled_once[slot] {
                wave.note_refill();
            }
            filled_once[slot] = true;
            wave.load_lane(slot, ops);
            in_flight[slot] = Some((id, sol, basis));
        }

        if !wave.any_busy() {
            // A refill batch fully settled by propagation leaves no lane
            // busy while the frontier may still hold work: refill again.
            if settled_by_prop > 0 && tree.has_active() && nodes < cfg.node_limit {
                continue;
            }
            break;
        }

        // Advance the wave until at least one lane retires, then fold the
        // retired outcomes; busy lanes keep their in-flight journals.
        for slot in wave.run_to_retire() {
            let (id, sol, basis) = in_flight[slot].take().expect("retired slot was in flight");
            match sol.status {
                LpStatus::Infeasible => tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY),
                LpStatus::Unbounded => {
                    return Err(gmip_lp::LpError::Shape(
                        "unbounded node in batched wave solve".into(),
                    ))
                }
                LpStatus::Optimal => {
                    let bound = internal(sol.objective);
                    let inc = incumbent
                        .as_ref()
                        .map(|(v, _)| *v)
                        .unwrap_or(f64::NEG_INFINITY);
                    if bound <= inc + cfg.prune_tol {
                        tree.settle(id, NodeState::Pruned, bound);
                        continue;
                    }
                    let frac: Vec<usize> = integral
                        .iter()
                        .copied()
                        .filter(|&j| (sol.x[j] - sol.x[j].round()).abs() > cfg.int_tol)
                        .collect();
                    if frac.is_empty() {
                        tree.settle(id, NodeState::Feasible, bound);
                        let mut p = sol.x.clone();
                        for &j in &integral {
                            p[j] = p[j].round();
                        }
                        incumbent = Some((bound, p));
                        first_incumbent_ns.get_or_insert_with(|| accel.elapsed_ns());
                        tree.prune_dominated(bound, cfg.prune_tol);
                        continue;
                    }
                    // Seed the fix-and-propagate wave with this fractional
                    // retiree (bounded backlog: one seed per lane).
                    if cfg.heuristic_period > 0 && heur_seeds.len() < width {
                        heur_seeds.push((tree.node(id).data.bounds.clone(), sol.x.clone()));
                    }
                    since_heur += 1;
                    let d = branch::decide(
                        crate::config::BranchRule::MostFractional,
                        instance,
                        &sol.x,
                        &frac,
                        &branch::PseudoCosts::default(),
                    );
                    let parent_bounds = tree.node(id).data.bounds.clone();
                    let (mut lo, mut hi) = (instance.vars[d.var].lb, instance.vars[d.var].ub);
                    for bc in &parent_bounds {
                        if bc.var == d.var {
                            lo = bc.lb;
                            hi = bc.ub;
                        }
                    }
                    let mk = |up: bool| {
                        let mut b = parent_bounds.clone();
                        let label = if up {
                            b.push(BoundChange {
                                var: d.var,
                                lb: d.up_lb,
                                ub: hi,
                            });
                            format!("x{} ≥ {}", d.var, d.up_lb)
                        } else {
                            b.push(BoundChange {
                                var: d.var,
                                lb: lo,
                                ub: d.down_ub,
                            });
                            format!("x{} ≤ {}", d.var, d.down_ub)
                        };
                        (
                            label,
                            WavePayload {
                                bounds: b,
                                parent_basis: basis.clone(),
                                parent_id: id,
                            },
                        )
                    };
                    tree.branch(id, bound, vec![mk(false), mk(true)]);
                }
            }
        }

        // Batched fix-and-propagate: once enough fractional retirees have
        // accumulated, dive from every collected seed in one fused wave
        // (round → propagate → repair or abort per lane) and install the
        // best improving candidate as an early incumbent.
        if cfg.heuristic_period > 0 && since_heur >= cfg.heuristic_period && !heur_seeds.is_empty()
        {
            let p = propagator.as_ref().expect("propagator built");
            let staged: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = heur_seeds
                .drain(..)
                .map(|(bounds, x)| {
                    let (lb, ub) = p.node_box(&bounds);
                    (x, lb, ub)
                })
                .collect();
            let seeds: Vec<gmip_prop::DiveSeed<'_>> = staged
                .iter()
                .map(|(x, lb, ub)| gmip_prop::DiveSeed {
                    x0: x,
                    lb0: lb,
                    ub0: ub,
                })
                .collect();
            let outs = p.dive_wave(&accel, &seeds, cfg.int_tol, cfg.propagate_rounds);
            let mut rounds = Vec::with_capacity(outs.len());
            let mut best: Option<(f64, Vec<f64>)> = None;
            for out in outs {
                rounds.push(out.rounds.max(1));
                aux.incr(names::HEUR_ATTEMPTS, 1.0);
                aux.incr(names::HEUR_REPAIRS, out.repairs as f64);
                if out.aborted {
                    aux.incr(names::HEUR_ABORTS, 1.0);
                }
                if let Some((obj, pt)) = out.candidate {
                    let cand = internal(obj);
                    if best.as_ref().map(|(b, _)| cand > *b).unwrap_or(true) {
                        best = Some((cand, pt));
                    }
                }
            }
            gmip_prop::charge_wave(&accel, p.nnz(), p.num_vars(), &rounds);
            since_heur = 0;
            if let Some((cand, pt)) = best {
                let cur = incumbent
                    .as_ref()
                    .map(|(v, _)| *v)
                    .unwrap_or(f64::NEG_INFINITY);
                if cand > cur + cfg.prune_tol {
                    incumbent = Some((cand, pt));
                    first_incumbent_ns.get_or_insert_with(|| accel.elapsed_ns());
                    aux.incr(names::HEUR_INCUMBENTS, 1.0);
                    tree.prune_dominated(cand, cfg.prune_tol);
                }
            }
        }
    }

    let status = if tree.has_active() || in_flight.iter().any(Option::is_some) {
        MipStatus::NodeLimit
    } else if incumbent.is_some() {
        MipStatus::Optimal
    } else {
        MipStatus::Infeasible
    };
    let (objective, x) = match incumbent {
        Some((v, p)) => (
            match instance.objective {
                Objective::Maximize => v,
                Objective::Minimize => -v,
            },
            p,
        ),
        None => (f64::NAN, Vec::new()),
    };

    let mut metrics = accel.with(|d| d.metrics().clone());
    metrics.merge(wave.metrics());
    let wave_counters = wave.metrics().clone();
    for lane in &mut lanes {
        metrics.merge(&lane.take_metrics());
    }
    metrics.merge(&aux);
    // Real wall-clock of the executing backend (`wall.*`, empty under the
    // simulator) — outside the byte-determinism surface.
    metrics.merge(&accel.wall_metrics());
    if let Some(t) = first_incumbent_ns {
        metrics.set_gauge(names::HEUR_FIRST_INCUMBENT_NS, t);
    }
    let peak = accel.with(|d| d.memory().peak());
    Ok(WaveResult {
        status,
        objective,
        x,
        nodes,
        supersteps: wave_counters.counter(names::WAVE_SUPERSTEPS) as usize,
        retires: wave_counters.counter(names::WAVE_RETIRES) as usize,
        refills: wave_counters.counter(names::WAVE_REFILLS) as usize,
        width,
        makespan_ns: accel.elapsed_ns(),
        device: accel.stats(),
        peak_device_bytes: peak,
        metrics,
        first_incumbent_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrent::{solve_concurrent, ConcurrentConfig};
    use gmip_problems::catalog::textbook_mip;
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    #[test]
    fn batched_matches_brute_force() {
        for seed in [1u64, 5] {
            let m = knapsack(13, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_batched_wave(
                &m,
                &BatchedWaveConfig {
                    lanes: 3,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            assert!(m.is_integer_feasible(&r.x, 1e-5), "seed {seed}");
        }
    }

    #[test]
    fn textbook_batched() {
        let r = solve_batched_wave(
            &textbook_mip(),
            &BatchedWaveConfig::default(),
            Accel::gpu(1),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        assert!(r.supersteps > 0);
        assert!(r.retires >= r.nodes, "every node's lane must retire");
    }

    #[test]
    fn fewer_launches_and_ns_than_per_lane_concurrent() {
        let m = knapsack(16, 0.5, 7);
        for lanes in [4usize, 8] {
            let per_lane = solve_concurrent(
                &m,
                &ConcurrentConfig {
                    lanes,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            let batched = solve_batched_wave(
                &m,
                &BatchedWaveConfig {
                    lanes,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            assert!((batched.objective - per_lane.objective).abs() < 1e-6);
            assert!(
                batched.device.kernel_launches < per_lane.device.kernel_launches,
                "lanes {lanes}: {} vs {}",
                batched.device.kernel_launches,
                per_lane.device.kernel_launches
            );
            assert!(
                batched.makespan_ns < per_lane.makespan_ns,
                "lanes {lanes}: {} vs {}",
                batched.makespan_ns,
                per_lane.makespan_ns
            );
        }
    }

    #[test]
    fn shared_matrix_keeps_memory_flat() {
        let m = knapsack(16, 0.5, 7);
        let narrow = solve_batched_wave(
            &m,
            &BatchedWaveConfig {
                lanes: 1,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        let wide = solve_batched_wave(
            &m,
            &BatchedWaveConfig {
                lanes: 8,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert!((narrow.objective - wide.objective).abs() < 1e-6);
        assert_eq!(wide.width, 8);
        // Widening 8× adds only per-lane state, not matrix copies.
        assert!(wide.peak_device_bytes < 2 * narrow.peak_device_bytes);
    }

    #[test]
    fn native_backend_matches_sim_byte_for_byte() {
        let m = knapsack(12, 0.5, 4);
        let run = |backend: BackendKind| {
            let r = solve_batched_wave(
                &m,
                &BatchedWaveConfig {
                    lanes: 4,
                    propagate: true,
                    heuristic_period: 2,
                    backend,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            let mut counters: Vec<(String, String)> = r
                .metrics
                .counters()
                .filter(|(k, _)| !k.starts_with("wall."))
                .map(|(k, v)| (k.to_string(), format!("{v:?}")))
                .collect();
            counters.sort();
            (
                format!("{:?}", r.objective),
                r.nodes,
                format!("{:?}", r.makespan_ns),
                counters,
            )
        };
        let sim = run(BackendKind::Sim);
        for threads in [1, 3] {
            assert_eq!(
                run(BackendKind::Native { threads }),
                sim,
                "native @ {threads} threads"
            );
        }
    }

    #[test]
    fn propagation_and_heuristic_preserve_the_optimum() {
        for seed in [2u64, 6, 11] {
            let m = knapsack(14, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_batched_wave(
                &m,
                &BatchedWaveConfig {
                    lanes: 4,
                    propagate: true,
                    heuristic_period: 2,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
            assert!(m.is_integer_feasible(&r.x, 1e-5), "seed {seed}");
            assert!(r.metrics.counter(names::PROP_NODES) >= r.nodes as f64);
            assert!(r.first_incumbent_ns.is_some());
            assert_eq!(
                r.metrics.gauge(names::HEUR_FIRST_INCUMBENT_NS),
                r.first_incumbent_ns.unwrap()
            );
        }
    }

    #[test]
    fn propagation_settles_infeasible_instances_without_lp_work() {
        use gmip_problems::catalog::infeasible_instance;
        let r = solve_batched_wave(
            &infeasible_instance(),
            &BatchedWaveConfig {
                lanes: 2,
                propagate: true,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::Infeasible);
        assert!(r.metrics.counter(names::PROP_INFEASIBLE) >= 1.0);
    }

    #[test]
    fn node_limit_respected() {
        let m = knapsack(22, 0.5, 9);
        let r = solve_batched_wave(
            &m,
            &BatchedWaveConfig {
                lanes: 2,
                node_limit: 6,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.nodes <= 8);
    }
}
