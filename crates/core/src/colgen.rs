//! Column generation, demonstrated on the cutting-stock problem.
//!
//! Section 3 of the paper lists column generation among the host-side
//! techniques a Hybrid (Strategy 3) solver runs alongside device LPs:
//! "the ease of implementing advanced heuristics such as probing, cut
//! generation, column generation, etc." This module dogfoods the whole
//! stack: the restricted master LP is solved by the crate's simplex (its
//! new [`gmip_lp::LpSolver::dual_prices`] feeds the pricing step), and the
//! pricing subproblem — a bounded-knapsack IP — is solved by the crate's
//! own branch-and-cut [`crate::MipSolver`].
//!
//! Cutting stock: cut rolls of width `roll` into ordered widths `w_i` with
//! demands `d_i`, minimizing rolls used. A *pattern* is an integer vector
//! `a` with `Σ a_i w_i ≤ roll`; the master is
//! `min Σ x_p  s.t.  Σ_p a_{ip} x_p ≥ d_i, x ≥ 0`, and a column with
//! reduced cost `1 − yᵀa < 0` exists iff the knapsack
//! `max yᵀa, Σ a_i w_i ≤ roll` exceeds 1.

use crate::{MipConfig, MipSolver, MipStatus};
use gmip_lp::{HostEngine, LpConfig, LpResult, LpSolver, LpStatus, StandardLp};
use gmip_problems::{Constraint, MipInstance, Objective, Sense, Variable};

/// Result of a cutting-stock column-generation run.
#[derive(Debug, Clone)]
pub struct CuttingStockResult {
    /// LP lower bound of the final master (fractional rolls).
    pub lp_bound: f64,
    /// Rolls used by the final integer solution over generated columns.
    pub rolls_used: f64,
    /// The generated patterns (columns), including the initial singletons.
    pub patterns: Vec<Vec<u32>>,
    /// How often each pattern is cut in the integer solution.
    pub pattern_counts: Vec<u32>,
    /// Column-generation iterations (pricing rounds).
    pub iterations: usize,
}

fn master_instance(patterns: &[Vec<u32>], demands: &[u32], integer: bool) -> MipInstance {
    let mut m = MipInstance::new("cutting-stock-master", Objective::Minimize);
    // Generous upper bound per pattern: total demand.
    let total: f64 = demands.iter().map(|&d| d as f64).sum();
    for (p, _) in patterns.iter().enumerate() {
        if integer {
            m.add_var(Variable::integer(format!("x{p}"), 0.0, total, 1.0));
        } else {
            m.add_var(Variable::continuous(format!("x{p}"), 0.0, total, 1.0));
        }
    }
    for (i, &d) in demands.iter().enumerate() {
        let coeffs: Vec<(usize, f64)> = patterns
            .iter()
            .enumerate()
            .filter(|(_, a)| a[i] > 0)
            .map(|(p, a)| (p, a[i] as f64))
            .collect();
        m.add_con(Constraint::new(
            format!("demand{i}"),
            coeffs,
            Sense::Ge,
            d as f64,
        ));
    }
    m
}

/// The pricing subproblem: a bounded knapsack over the dual prices.
fn price_pattern(widths: &[u32], roll: u32, duals: &[f64]) -> LpResult<Option<Vec<u32>>> {
    let mut m = MipInstance::new("pricing-knapsack", Objective::Maximize);
    for (i, &w) in widths.iter().enumerate() {
        let ub = (roll / w) as f64;
        m.add_var(Variable::integer(
            format!("a{i}"),
            0.0,
            ub,
            duals[i].max(0.0),
        ));
    }
    m.add_con(Constraint::new(
        "width",
        widths.iter().map(|&w| w as f64).enumerate().collect(),
        Sense::Le,
        roll as f64,
    ));
    let mut cfg = MipConfig::default();
    cfg.cuts.enabled = false;
    let mut solver = MipSolver::host_baseline(m, cfg);
    let r = solver.solve()?;
    if r.status != MipStatus::Optimal {
        return Ok(None);
    }
    // Negative reduced cost ⇔ yᵀa > 1.
    if r.objective > 1.0 + 1e-6 {
        Ok(Some(r.x.iter().map(|&v| v.round() as u32).collect()))
    } else {
        Ok(None)
    }
}

/// Solves a cutting-stock instance by column generation.
///
/// Starts from the singleton patterns (one width per roll, packed as many
/// times as fit), alternates master-LP solves with knapsack pricing until
/// no improving column exists, then solves the final master as an IP over
/// the generated columns.
///
/// # Panics
/// Panics if inputs are empty, zero-width, or wider than the roll.
pub fn solve_cutting_stock(
    widths: &[u32],
    demands: &[u32],
    roll: u32,
) -> LpResult<CuttingStockResult> {
    assert_eq!(widths.len(), demands.len(), "widths/demands length");
    assert!(!widths.is_empty(), "need at least one width");
    assert!(
        widths.iter().all(|&w| w > 0 && w <= roll),
        "widths must be in (0, roll]"
    );
    let n = widths.len();
    // Initial columns: pack each width alone.
    let mut patterns: Vec<Vec<u32>> = (0..n)
        .map(|i| {
            let mut a = vec![0u32; n];
            a[i] = roll / widths[i];
            a
        })
        .collect();

    let mut iterations = 0usize;
    let lp_bound = loop {
        iterations += 1;
        let master = master_instance(&patterns, demands, false);
        let std = StandardLp::from_instance(&master, &[]);
        let mut lp = LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
        let sol = lp.solve()?;
        assert_eq!(sol.status, LpStatus::Optimal, "master LP must be feasible");
        let duals = lp.dual_prices()?;
        match price_pattern(widths, roll, &duals)? {
            Some(col) => patterns.push(col),
            None => break sol.objective,
        }
        if iterations > 200 {
            break sol.objective; // safety valve
        }
    };

    // Final integer master over the generated columns.
    let master_ip = master_instance(&patterns, demands, true);
    let mut solver = MipSolver::host_baseline(master_ip, MipConfig::default());
    let r = solver.solve()?;
    assert_eq!(r.status, MipStatus::Optimal, "integer master must solve");
    Ok(CuttingStockResult {
        lp_bound,
        rolls_used: r.objective,
        pattern_counts: r.x.iter().map(|&v| v.round() as u32).collect(),
        patterns,
        iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Verifies a result actually covers the demands with valid patterns.
    fn check(widths: &[u32], demands: &[u32], roll: u32, r: &CuttingStockResult) {
        let mut produced = vec![0u64; widths.len()];
        for (a, &count) in r.patterns.iter().zip(&r.pattern_counts) {
            let used: u64 = a
                .iter()
                .zip(widths)
                .map(|(&ai, &wi)| ai as u64 * wi as u64)
                .sum();
            assert!(used <= roll as u64, "pattern {a:?} overflows the roll");
            for (p, &ai) in produced.iter_mut().zip(a) {
                *p += ai as u64 * count as u64;
            }
        }
        for (i, (&got, &need)) in produced.iter().zip(demands).enumerate() {
            assert!(
                got >= need as u64,
                "width {i}: produced {got} < demand {need}"
            );
        }
        // The LP bound is a valid lower bound on rolls used.
        assert!(r.rolls_used + 1e-6 >= r.lp_bound);
        assert!(r.rolls_used >= r.lp_bound.ceil() - 1e-6);
    }

    #[test]
    fn classic_gilmore_gomory_example() {
        // Roll 100; widths 45, 36, 31, 14 with demands 97, 610, 395, 211 is
        // the classic family — scaled down here for test speed.
        let widths = [45u32, 36, 31, 14];
        let demands = [10u32, 12, 9, 8];
        let r = solve_cutting_stock(&widths, &demands, 100).unwrap();
        check(&widths, &demands, 100, &r);
        // Column generation must have added patterns beyond the singletons.
        assert!(r.patterns.len() > 4, "no columns generated");
        assert!(r.iterations > 1);
    }

    #[test]
    fn exact_fit_needs_no_extra_columns() {
        // Roll 10, width 5, demand 4: singleton pattern [2] is optimal:
        // 2 rolls, LP bound 2.0.
        let r = solve_cutting_stock(&[5], &[4], 10).unwrap();
        check(&[5], &[4], 10, &r);
        assert_eq!(r.rolls_used, 2.0);
        assert!((r.lp_bound - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_pattern_beats_singletons() {
        // Roll 10; widths 6 and 4, demands 3 and 3. Singletons: one 6 per
        // roll (3 rolls) + two 4s per roll (2 rolls) = 5 rolls. The mixed
        // pattern (6+4) gives 3 rolls + remaining 4s... optimal is 3 rolls
        // of (6,4) + 0 extra: demands 3 and 3 → exactly 3 rolls.
        let r = solve_cutting_stock(&[6, 4], &[3, 3], 10).unwrap();
        check(&[6, 4], &[3, 3], 10, &r);
        assert_eq!(r.rolls_used, 3.0, "patterns: {:?}", r.patterns);
    }

    #[test]
    #[should_panic]
    fn oversized_width_rejected() {
        let _ = solve_cutting_stock(&[11], &[1], 10);
    }
}
