//! Wave-based concurrent node evaluation on a single device — Section 5.5
//! realized at the solver level.
//!
//! "In modern GPUs, the memory capacity has increased sufficiently to
//! consider housing and solving multiple branch-and-cut nodes concurrently
//! on the same GPU … the linear algebra services on the GPU must support
//! concurrent launches of multiple sub-problems on the same GPU. Such …
//! support is offered on the NVIDIA GPUs with the concept of streams."
//!
//! [`solve_concurrent`] keeps `lanes` independent LP engines on **one**
//! device, each bound to its own stream (and each holding its own copy of
//! the matrix — the paper's memory-for-concurrency trade). Every wave, up
//! to `lanes` best-bound active nodes are dispatched; their warm dual
//! re-solves overlap in simulated device time, and the wave joins at a
//! device synchronize before outcomes are folded into the tree.
//!
//! Cuts and heuristics are intentionally off here: this driver isolates the
//! concurrency mechanism the paper describes so experiment E4 can measure
//! it; the full-featured sequential orchestrator is [`crate::MipSolver`].

use crate::branch;
use crate::solver::{MipStatus, NodePayload};
use gmip_gpu::{Accel, DeviceStats};
use gmip_lp::{
    Basis, BoundChange, DeviceEngine, LpConfig, LpResult, LpSolver, LpStatus, StandardLp,
};
use gmip_problems::{MipInstance, Objective};
use gmip_tree::{NodeId, NodeState, SearchTree};

/// Configuration of the concurrent-lane solver.
#[derive(Debug, Clone)]
pub struct ConcurrentConfig {
    /// Number of concurrent lanes (engines/streams) on the device.
    pub lanes: usize,
    /// LP tolerances.
    pub lp: LpConfig,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Pruning tolerance.
    pub prune_tol: f64,
    /// Node budget.
    pub node_limit: usize,
}

impl Default for ConcurrentConfig {
    fn default() -> Self {
        Self {
            lanes: 4,
            lp: LpConfig::standard(),
            int_tol: 1e-6,
            prune_tol: 1e-6,
            node_limit: 100_000,
        }
    }
}

/// Result of a concurrent-lane solve.
#[derive(Debug)]
pub struct ConcurrentResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Nodes evaluated.
    pub nodes: usize,
    /// Dispatch waves executed.
    pub waves: usize,
    /// Device completion frontier, ns (overlapped lanes → sub-linear in
    /// nodes).
    pub makespan_ns: f64,
    /// Device ledger.
    pub device: DeviceStats,
    /// Peak device memory (grows ≈ linearly with lanes: one matrix copy
    /// each — the Section 5.5 sizing rule).
    pub peak_device_bytes: usize,
}

/// Solves `instance` with `cfg.lanes` concurrent engines on `accel`.
pub fn solve_concurrent(
    instance: &MipInstance,
    cfg: &ConcurrentConfig,
    accel: Accel,
) -> LpResult<ConcurrentResult> {
    assert!(cfg.lanes >= 1, "need at least one lane");
    let std = StandardLp::from_instance(instance, &[]);
    // One engine per lane, each on its own stream, each with its own matrix
    // copy in device memory.
    let mut lanes: Vec<LpSolver<DeviceEngine>> = Vec::with_capacity(cfg.lanes);
    for i in 0..cfg.lanes {
        let stream = if i == 0 {
            gmip_gpu::DEFAULT_STREAM
        } else {
            accel.with(|d| d.create_stream())
        };
        let factory_accel = accel.clone();
        lanes.push(LpSolver::try_new(std.clone(), cfg.lp.clone(), |a| {
            DeviceEngine::new_on_stream(factory_accel, a, stream)
        })?);
    }

    let internal = |source: f64| match instance.objective {
        Objective::Maximize => source,
        Objective::Minimize => -source,
    };
    let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
    let mut tree: SearchTree<NodePayload> =
        SearchTree::with_root(NodePayload::default(), node_bytes);
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let mut waves = 0usize;
    let integral = instance.integral_indices();

    while tree.has_active() && nodes < cfg.node_limit {
        // Wave selection: up to `lanes` best-bound nodes.
        let mut wave: Vec<NodeId> = tree.active_ids().to_vec();
        wave.sort_by(|&a, &b| {
            tree.node(b)
                .bound
                .partial_cmp(&tree.node(a).bound)
                .expect("bounds are never NaN")
                .then(a.cmp(&b))
        });
        wave.truncate(lanes.len());
        waves += 1;

        // Dispatch: each node to its lane; evaluation overlaps in sim time.
        let mut outcomes: Vec<(NodeId, gmip_lp::LpSolution, Option<Basis>)> = Vec::new();
        for (lane, &id) in lanes.iter_mut().zip(&wave) {
            tree.begin_evaluation(id);
            nodes += 1;
            let bounds = tree.node(id).data.bounds.clone();
            let warm = tree.node_mut(id).data.parent_basis.take();
            lane.apply_node_bounds(&bounds)?;
            let sol = match warm {
                Some(b) if b.n() == lane.standard().n() + lane.standard().m() => {
                    lane.set_warm_basis(b)?;
                    lane.resolve()?
                }
                Some(b) => {
                    // Dimension drift cannot happen without cuts; guard anyway.
                    let _ = b;
                    lane.solve()?
                }
                None => lane.solve()?,
            };
            outcomes.push((id, sol, lane.basis().cloned()));
        }
        // Join the wave (device synchronize: streams meet at the frontier).
        accel.with(|d| {
            d.synchronize();
        });

        // Fold outcomes into the tree.
        for (id, sol, basis) in outcomes {
            match sol.status {
                LpStatus::Infeasible => tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY),
                LpStatus::Unbounded => {
                    return Err(gmip_lp::LpError::Shape(
                        "unbounded node in concurrent solve".into(),
                    ))
                }
                LpStatus::Optimal => {
                    let bound = internal(sol.objective);
                    let inc = incumbent
                        .as_ref()
                        .map(|(v, _)| *v)
                        .unwrap_or(f64::NEG_INFINITY);
                    if bound <= inc + cfg.prune_tol {
                        tree.settle(id, NodeState::Pruned, bound);
                        continue;
                    }
                    let frac: Vec<usize> = integral
                        .iter()
                        .copied()
                        .filter(|&j| (sol.x[j] - sol.x[j].round()).abs() > cfg.int_tol)
                        .collect();
                    if frac.is_empty() {
                        tree.settle(id, NodeState::Feasible, bound);
                        let mut p = sol.x.clone();
                        for &j in &integral {
                            p[j] = p[j].round();
                        }
                        incumbent = Some((bound, p));
                        tree.prune_dominated(bound, cfg.prune_tol);
                        continue;
                    }
                    let d = branch::decide(
                        crate::config::BranchRule::MostFractional,
                        instance,
                        &sol.x,
                        &frac,
                        &branch::PseudoCosts::default(),
                    );
                    let parent_bounds = tree.node(id).data.bounds.clone();
                    let (mut lo, mut hi) = (instance.vars[d.var].lb, instance.vars[d.var].ub);
                    for bc in &parent_bounds {
                        if bc.var == d.var {
                            lo = bc.lb;
                            hi = bc.ub;
                        }
                    }
                    let mk = |up: bool| {
                        let mut b = parent_bounds.clone();
                        let label = if up {
                            b.push(BoundChange {
                                var: d.var,
                                lb: d.up_lb,
                                ub: hi,
                            });
                            format!("x{} ≥ {}", d.var, d.up_lb)
                        } else {
                            b.push(BoundChange {
                                var: d.var,
                                lb: lo,
                                ub: d.down_ub,
                            });
                            format!("x{} ≤ {}", d.var, d.down_ub)
                        };
                        (
                            label,
                            NodePayload {
                                bounds: b,
                                parent_basis: basis.clone(),
                                branch_info: None,
                            },
                        )
                    };
                    tree.branch(id, bound, vec![mk(false), mk(true)]);
                }
            }
        }
    }

    let status = if tree.has_active() {
        MipStatus::NodeLimit
    } else if incumbent.is_some() {
        MipStatus::Optimal
    } else {
        MipStatus::Infeasible
    };
    let (objective, x) = match incumbent {
        Some((v, p)) => (
            match instance.objective {
                Objective::Maximize => v,
                Objective::Minimize => -v,
            },
            p,
        ),
        None => (f64::NAN, Vec::new()),
    };
    let peak = accel.with(|d| d.memory().peak());
    Ok(ConcurrentResult {
        status,
        objective,
        x,
        nodes,
        waves,
        makespan_ns: accel.elapsed_ns(),
        device: accel.stats(),
        peak_device_bytes: peak,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::textbook_mip;
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    #[test]
    fn concurrent_matches_brute_force() {
        for seed in [1u64, 5] {
            let m = knapsack(13, 0.5, seed);
            let expected = knapsack_brute_force(&m);
            let r = solve_concurrent(
                &m,
                &ConcurrentConfig {
                    lanes: 3,
                    ..Default::default()
                },
                Accel::gpu(1),
            )
            .unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "seed {seed}");
            assert!(
                (r.objective - expected).abs() < 1e-6,
                "seed {seed}: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn textbook_concurrent() {
        let r =
            solve_concurrent(&textbook_mip(), &ConcurrentConfig::default(), Accel::gpu(1)).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!((r.objective - 20.0).abs() < 1e-6);
        assert!(r.waves <= r.nodes);
    }

    #[test]
    fn more_lanes_fewer_waves_and_lower_makespan() {
        let m = knapsack(18, 0.5, 3);
        let one = solve_concurrent(
            &m,
            &ConcurrentConfig {
                lanes: 1,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        let four = solve_concurrent(
            &m,
            &ConcurrentConfig {
                lanes: 4,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert!((one.objective - four.objective).abs() < 1e-6);
        assert!(four.waves < one.waves, "lanes should compress waves");
        assert!(
            four.makespan_ns < one.makespan_ns,
            "overlap should cut the makespan: {} vs {}",
            four.makespan_ns,
            one.makespan_ns
        );
        // Memory trade: more lanes park more matrix copies on the device.
        assert!(four.peak_device_bytes > one.peak_device_bytes);
    }

    #[test]
    fn node_limit_respected() {
        let m = knapsack(22, 0.5, 9);
        let r = solve_concurrent(
            &m,
            &ConcurrentConfig {
                lanes: 2,
                node_limit: 6,
                ..Default::default()
            },
            Accel::gpu(1),
        )
        .unwrap();
        assert_eq!(r.status, MipStatus::NodeLimit);
        assert!(r.nodes <= 8);
    }
}
