//! # gmip-core
//!
//! The branch-and-cut MIP solver — the paper's primary contribution
//! realized over the simulated accelerated platform:
//!
//! * [`solver`] — the branch-and-cut orchestrator ([`solver::MipSolver`]),
//!   generic over the LP engine (host reference, simulated device, pooled
//!   Big-MIP device);
//! * [`strategy`] — the four parallel execution strategies of Section 3 and
//!   their resource plans;
//! * [`branch`] — branching rules (most-fractional, pseudocost);
//! * [`cut`] — globally valid cutting planes (Gomory mixed-integer from the
//!   tableau, knapsack covers), generated CPU-side per Section 5.2;
//! * [`heur`] — primal heuristics (rounding, diving);
//! * [`presolve`](mod@presolve) — activity-based row elimination, bound propagation, and
//!   variable fixing ahead of the search;
//! * [`dispatch`] — the runtime dense/sparse "super-MIP solver" decision of
//!   Section 5.4 (dense-device / sparse-device / host paths);
//! * [`concurrent`] — wave-based concurrent node evaluation on one device
//!   via streams (Section 5.5);
//! * [`wave`] — the batched-wave driver: fused lockstep node-LP kernels on
//!   a shared device-resident matrix with event-based retire-and-refill
//!   (Sections 4.3, 5.5);
//! * [`colgen`] — column generation (cutting stock): the master LP's dual
//!   prices feed a pricing knapsack solved by this crate's own
//!   branch and cut (the Section 3 host-side technique list);
//! * [`config`] — solver configuration.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod colgen;
pub mod concurrent;
pub mod config;
pub mod cut;
pub mod dispatch;
pub mod fo_wave;
pub mod heur;
pub mod node_bnb;
pub mod presolve;
pub mod solver;
pub mod strategy;
pub mod wave;

pub use colgen::{solve_cutting_stock, CuttingStockResult};
pub use concurrent::{solve_concurrent, ConcurrentConfig, ConcurrentResult};
pub use config::{BranchRule, CutConfig, HeurConfig, MipConfig, PolicyKind};
pub use dispatch::{
    break_even_density, choose_path, solve_with_dispatch, solve_with_dispatch_batched,
    BatchedDispatch, CodePath, MIN_DEVICE_NNZ,
};
pub use fo_wave::{solve_first_order_wave, FirstOrderWaveConfig};
pub use node_bnb::{solve_with_node_engine, NodeBnbConfig, NodeBnbResult};
pub use presolve::{presolve, solve_host_with_presolve, PresolveResult};
pub use solver::{BranchInfo, MipResult, MipSolver, MipStatus, NodePayload, SolveStats};
pub use strategy::{big_mip_cost, plan, Strategy, StrategyPlan};
pub use wave::{solve_batched_wave, BatchedWaveConfig, WaveResult};
