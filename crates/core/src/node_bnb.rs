//! Best-first branch and bound over any [`NodeLpEngine`] — the driver
//! that proves the node-LP layer is genuinely pluggable.
//!
//! The tree logic here is written once against the trait: it threads
//! whatever warm artifact the engine hands back (a simplex basis, PDHG
//! iterates) into the children via [`NodeWarmHandoff::as_start`], feeds
//! incumbents back with [`NodeLpEngine::set_incumbent`] so bound-stating
//! engines can retire dominated nodes early, and treats
//! [`NodeLpOutcome::Pruned`] as a settled node without ever seeing an
//! objective. Swapping simplex for IPM or restarted PDHG is a one-line
//! change at the call site.

use crate::branch;
use crate::solver::MipStatus;
use gmip_lp::{BoundChange, LpResult, NodeLpEngine, NodeLpOutcome, NodeWarmHandoff};
use gmip_problems::{MipInstance, Objective};
use gmip_trace::MetricsRegistry;
use gmip_tree::{NodeId, NodeState, SearchTree};

/// Tree-side knobs of the engine-generic driver.
#[derive(Debug, Clone)]
pub struct NodeBnbConfig {
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Pruning tolerance.
    pub prune_tol: f64,
    /// Node budget.
    pub node_limit: usize,
}

impl Default for NodeBnbConfig {
    fn default() -> Self {
        Self {
            int_tol: 1e-6,
            prune_tol: 1e-6,
            node_limit: 100_000,
        }
    }
}

/// Result of an engine-generic solve.
#[derive(Debug)]
pub struct NodeBnbResult {
    /// Terminal status.
    pub status: MipStatus,
    /// Incumbent objective (source sense; NaN if none).
    pub objective: f64,
    /// Incumbent point.
    pub x: Vec<f64>,
    /// Nodes evaluated.
    pub nodes: usize,
    /// The engine's accumulated metrics.
    pub metrics: MetricsRegistry,
}

/// Node payload: branch bounds plus the parent's warm handoff.
#[derive(Debug, Clone, Default)]
struct BnbPayload {
    bounds: Vec<BoundChange>,
    warm: NodeWarmHandoff,
}

/// Solves `instance` best-first with `engine` evaluating every node LP.
pub fn solve_with_node_engine(
    instance: &MipInstance,
    engine: &mut dyn NodeLpEngine,
    cfg: &NodeBnbConfig,
) -> LpResult<NodeBnbResult> {
    let internal = |source: f64| match instance.objective {
        Objective::Maximize => source,
        Objective::Minimize => -source,
    };
    let node_bytes = (instance.num_cons() + 2 * instance.num_vars()) * 8 + 128;
    let mut tree: SearchTree<BnbPayload> = SearchTree::with_root(BnbPayload::default(), node_bytes);
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    let integral = instance.integral_indices();

    while nodes < cfg.node_limit {
        // Best-bound node first (ties broken by id for determinism).
        let Some(id) = tree.active_ids().iter().copied().max_by(|&a, &b| {
            tree.node(a)
                .bound
                .partial_cmp(&tree.node(b).bound)
                .expect("bounds are never NaN")
                .then(b.cmp(&a))
        }) else {
            break;
        };
        tree.begin_evaluation(id);
        nodes += 1;
        let bounds = tree.node(id).data.bounds.clone();
        let warm = std::mem::take(&mut tree.node_mut(id).data.warm);
        match engine.solve_node(&bounds, warm.as_start())? {
            NodeLpOutcome::Infeasible => {
                tree.settle(id, NodeState::Infeasible, f64::NEG_INFINITY);
            }
            NodeLpOutcome::Unbounded => {
                return Err(gmip_lp::LpError::Shape(
                    "unbounded node in engine-generic solve".into(),
                ));
            }
            NodeLpOutcome::Pruned { bound } => {
                tree.settle(id, NodeState::Pruned, internal(bound));
            }
            NodeLpOutcome::Optimal {
                objective, x, warm, ..
            } => {
                let bound = internal(objective);
                let inc = incumbent
                    .as_ref()
                    .map(|(v, _)| *v)
                    .unwrap_or(f64::NEG_INFINITY);
                if bound <= inc + cfg.prune_tol {
                    tree.settle(id, NodeState::Pruned, bound);
                    continue;
                }
                let frac: Vec<usize> = integral
                    .iter()
                    .copied()
                    .filter(|&j| (x[j] - x[j].round()).abs() > cfg.int_tol)
                    .collect();
                if frac.is_empty() {
                    tree.settle(id, NodeState::Feasible, bound);
                    let mut p = x.clone();
                    for &j in &integral {
                        p[j] = p[j].round();
                    }
                    incumbent = Some((bound, p));
                    tree.prune_dominated(bound, cfg.prune_tol);
                    engine.set_incumbent(objective);
                    continue;
                }
                let d = branch::decide(
                    crate::config::BranchRule::MostFractional,
                    instance,
                    &x,
                    &frac,
                    &branch::PseudoCosts::default(),
                );
                let parent_bounds = tree.node(id).data.bounds.clone();
                let (mut lo, mut hi) = (instance.vars[d.var].lb, instance.vars[d.var].ub);
                for bc in &parent_bounds {
                    if bc.var == d.var {
                        lo = bc.lb;
                        hi = bc.ub;
                    }
                }
                let mk = |up: bool| {
                    let mut b = parent_bounds.clone();
                    let label = if up {
                        b.push(BoundChange {
                            var: d.var,
                            lb: d.up_lb,
                            ub: hi,
                        });
                        format!("x{} ≥ {}", d.var, d.up_lb)
                    } else {
                        b.push(BoundChange {
                            var: d.var,
                            lb: lo,
                            ub: d.down_ub,
                        });
                        format!("x{} ≤ {}", d.var, d.down_ub)
                    };
                    (
                        label,
                        BnbPayload {
                            bounds: b,
                            warm: warm.clone(),
                        },
                    )
                };
                tree.branch(id, bound, vec![mk(false), mk(true)]);
            }
        }
        let _: NodeId = id;
    }

    let status = if tree.has_active() {
        MipStatus::NodeLimit
    } else if incumbent.is_some() {
        MipStatus::Optimal
    } else {
        MipStatus::Infeasible
    };
    let (objective, x) = match incumbent {
        Some((v, p)) => (
            match instance.objective {
                Objective::Maximize => v,
                Objective::Minimize => -v,
            },
            p,
        ),
        None => (f64::NAN, Vec::new()),
    };
    Ok(NodeBnbResult {
        status,
        objective,
        x,
        nodes,
        metrics: engine.take_metrics(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_gpu::Accel;
    use gmip_lp::{
        FirstOrderNodeEngine, IpmConfig, IpmNodeEngine, PdhgConfig, SimplexNodeEngine, StandardLp,
    };
    use gmip_problems::catalog::textbook_mip;
    use gmip_problems::generators::knapsack::{knapsack, knapsack_brute_force};

    fn engines(std: &StandardLp) -> Vec<Box<dyn NodeLpEngine>> {
        vec![
            Box::new(SimplexNodeEngine::host(std.clone())),
            Box::new(IpmNodeEngine::new(std.clone(), IpmConfig::default())),
            Box::new(
                FirstOrderNodeEngine::new(Accel::gpu(1), std.clone(), PdhgConfig::default())
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn every_engine_solves_the_textbook_mip() {
        let m = textbook_mip();
        let std = StandardLp::from_instance(&m, &[]);
        for mut e in engines(&std) {
            let name = e.name();
            let r = solve_with_node_engine(&m, e.as_mut(), &NodeBnbConfig::default()).unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "{name}");
            assert!((r.objective - 20.0).abs() < 1e-5, "{name}: {}", r.objective);
            assert!(m.is_integer_feasible(&r.x, 1e-5), "{name}");
        }
    }

    #[test]
    fn every_engine_matches_brute_force_on_knapsack() {
        let m = knapsack(11, 0.5, 4);
        let expected = knapsack_brute_force(&m);
        let std = StandardLp::from_instance(&m, &[]);
        for mut e in engines(&std) {
            let name = e.name();
            let r = solve_with_node_engine(&m, e.as_mut(), &NodeBnbConfig::default()).unwrap();
            assert_eq!(r.status, MipStatus::Optimal, "{name}");
            assert!(
                (r.objective - expected).abs() < 1e-5,
                "{name}: {} vs {expected}",
                r.objective
            );
        }
    }

    #[test]
    fn first_order_engine_prunes_nodes_in_tree() {
        // A tree deep enough to produce incumbent-dominated nodes: the
        // bound-stating engine must retire at least one of them as Pruned
        // (visible through the fo.bound_pruned counter).
        let m = knapsack(13, 0.5, 1);
        let std = StandardLp::from_instance(&m, &[]);
        let mut e = FirstOrderNodeEngine::new(Accel::gpu(1), std, PdhgConfig::default()).unwrap();
        let r = solve_with_node_engine(&m, &mut e, &NodeBnbConfig::default()).unwrap();
        assert_eq!(r.status, MipStatus::Optimal);
        assert!(
            r.metrics.counter(gmip_trace::names::FO_BOUND_PRUNED) >= 1.0,
            "expected early safe-bound prunes in a nontrivial tree"
        );
    }
}
