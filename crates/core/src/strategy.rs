//! The four parallel execution strategies of Section 3.
//!
//! | # | Strategy | Tree | LP relaxations | Notes |
//! |---|----------|------|----------------|-------|
//! | 1 | [`Strategy::GpuOnly`] | device memory | device | fails/spills when the tree outgrows device memory; no CPU-side cut generation |
//! | 2 | [`Strategy::CpuOrchestrated`] | host memory | device | the paper's recommended design: matrix uploaded once, tree handled by the host |
//! | 3 | [`Strategy::Hybrid`] | host memory | device | host additionally runs heuristics/cut generation concurrently (diving enabled) |
//! | 4 | [`Strategy::BigMip`] | host memory | *distributed* across k devices | each LP operation pays inter-device collective overhead |
//!
//! A strategy resolves to a [`StrategyPlan`]: which accelerator executes
//! LPs, where the tree lives, and which solver features are forced on/off.

use crate::config::MipConfig;
use gmip_gpu::{Accel, CostModel, DeviceConfig};

/// The execution strategy for a MIP solve on an accelerated platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Entirely GPU-based execution (Section 3, item 1).
    GpuOnly,
    /// CPU orchestration of GPU execution (item 2) — the paper's pick for
    /// least complexity with full effectiveness.
    CpuOrchestrated,
    /// Hybrid CPU+GPU execution (item 3).
    Hybrid,
    /// Big-MIP execution (item 4): the LP matrix spans `devices` GPUs and
    /// every linear-algebra operation is a distributed collective.
    BigMip {
        /// Number of devices the matrix is partitioned across.
        devices: usize,
    },
}

impl Strategy {
    /// Short name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::GpuOnly => "gpu-only",
            Strategy::CpuOrchestrated => "cpu-orchestrated",
            Strategy::Hybrid => "hybrid",
            Strategy::BigMip { .. } => "big-mip",
        }
    }
}

/// The concrete resource/feature assignment a strategy resolves to.
#[derive(Debug, Clone)]
pub struct StrategyPlan {
    /// Executor for LP relaxations.
    pub lp_accel: Accel,
    /// Host executor (tree handling, cut generation, heuristics).
    pub host: Accel,
    /// Device that must hold the tree (Strategy 1), if any.
    pub tree_device: Option<Accel>,
    /// Adjusted solver configuration.
    pub config: MipConfig,
    /// Strategy name for stats.
    pub name: &'static str,
    /// Whether host work overlaps device work in the time model
    /// (Strategy 3's concurrency).
    pub overlap_host: bool,
}

/// Builds the Big-MIP "virtual device": `k` devices pooled into one
/// executor. Aggregate compute and memory scale at 85% parallel efficiency;
/// every kernel additionally pays an allreduce-style latency that grows
/// logarithmically with `k` (ring/tree collectives).
pub fn big_mip_cost(base: &CostModel, k: usize) -> CostModel {
    assert!(k >= 1);
    let eff = 0.85;
    let kf = k as f64;
    CostModel {
        name: "big-mip-pool",
        dense_flops_per_ns: base.dense_flops_per_ns * kf * eff,
        sparse_flops_per_ns: base.sparse_flops_per_ns * kf * eff,
        mem_bw_bytes_per_ns: base.mem_bw_bytes_per_ns * kf * eff,
        link_bw_bytes_per_ns: base.link_bw_bytes_per_ns,
        link_latency_ns: base.link_latency_ns,
        launch_latency_ns: base.launch_latency_ns
            + if k > 1 {
                // Per-operation inter-device collective: ~5 µs per hop level.
                5_000.0 * (kf.log2().ceil())
            } else {
                0.0
            },
        concurrency: base.concurrency * k,
        power_w: base.power_w * kf,
    }
}

/// Resolves a strategy into a [`StrategyPlan`] over a platform of
/// `gpu_mem_bytes`-sized devices with the given GPU cost model.
pub fn plan(
    strategy: Strategy,
    mut config: MipConfig,
    gpu_cost: CostModel,
    gpu_mem_bytes: usize,
) -> StrategyPlan {
    let host = Accel::cpu();
    match strategy {
        Strategy::GpuOnly => {
            // No CPU-side cut generation in a GPU-only design (Section 5.2:
            // no GPU cut generators exist), and no host diving.
            config.cuts.enabled = false;
            config.heuristics.diving = false;
            let gpu = Accel::gpu_with(DeviceConfig {
                cost: gpu_cost,
                mem_capacity: gpu_mem_bytes,
                streams: 1,
            });
            StrategyPlan {
                lp_accel: gpu.clone(),
                host,
                tree_device: Some(gpu),
                config,
                name: Strategy::GpuOnly.name(),
                overlap_host: false,
            }
        }
        Strategy::CpuOrchestrated => {
            config.heuristics.diving = false;
            let gpu = Accel::gpu_with(DeviceConfig {
                cost: gpu_cost,
                mem_capacity: gpu_mem_bytes,
                streams: 1,
            });
            StrategyPlan {
                lp_accel: gpu,
                host,
                tree_device: None,
                config,
                name: Strategy::CpuOrchestrated.name(),
                overlap_host: false,
            }
        }
        Strategy::Hybrid => {
            // Host concurrency is exploited: diving on.
            config.heuristics.diving = true;
            let gpu = Accel::gpu_with(DeviceConfig {
                cost: gpu_cost,
                mem_capacity: gpu_mem_bytes,
                streams: 1,
            });
            StrategyPlan {
                lp_accel: gpu,
                host,
                tree_device: None,
                config,
                name: Strategy::Hybrid.name(),
                overlap_host: true,
            }
        }
        Strategy::BigMip { devices } => {
            config.heuristics.diving = false;
            let pooled = Accel::gpu_with(DeviceConfig {
                cost: big_mip_cost(&gpu_cost, devices),
                mem_capacity: gpu_mem_bytes.saturating_mul(devices),
                streams: 1,
            });
            StrategyPlan {
                lp_accel: pooled,
                host,
                tree_device: None,
                config,
                name: Strategy::BigMip { devices }.name(),
                overlap_host: false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_gpu::AccelKind;

    #[test]
    fn names() {
        assert_eq!(Strategy::GpuOnly.name(), "gpu-only");
        assert_eq!(Strategy::BigMip { devices: 4 }.name(), "big-mip");
    }

    #[test]
    fn gpu_only_disables_cuts_and_parks_tree_on_device() {
        let p = plan(
            Strategy::GpuOnly,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 20,
        );
        assert!(!p.config.cuts.enabled);
        assert!(p.tree_device.is_some());
        assert_eq!(p.lp_accel.kind(), AccelKind::Gpu);
    }

    #[test]
    fn cpu_orchestrated_keeps_tree_on_host() {
        let p = plan(
            Strategy::CpuOrchestrated,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 20,
        );
        assert!(p.tree_device.is_none());
        assert!(p.config.cuts.enabled);
        assert!(!p.config.heuristics.diving);
    }

    #[test]
    fn hybrid_enables_diving() {
        let p = plan(
            Strategy::Hybrid,
            MipConfig::default(),
            CostModel::gpu_pcie(),
            1 << 20,
        );
        assert!(p.config.heuristics.diving);
    }

    #[test]
    fn big_mip_pools_memory_and_pays_collectives() {
        let base = CostModel::gpu_pcie();
        let pooled = big_mip_cost(&base, 4);
        assert!(pooled.dense_flops_per_ns > 3.0 * base.dense_flops_per_ns);
        assert!(pooled.launch_latency_ns > base.launch_latency_ns);
        assert_eq!(pooled.concurrency, base.concurrency * 4);
        // Single device adds no collective overhead.
        let single = big_mip_cost(&base, 1);
        assert_eq!(single.launch_latency_ns, base.launch_latency_ns);

        let p = plan(
            Strategy::BigMip { devices: 4 },
            MipConfig::default(),
            base,
            1 << 20,
        );
        assert_eq!(p.lp_accel.mem_capacity(), 4 << 20);
    }
}
