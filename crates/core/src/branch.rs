//! Branching rules.
//!
//! Given a fractional LP point, pick the integral variable to branch on and
//! produce the two child bound changes. The paper (Section 5.3) notes that a
//! GPU-oriented solver's "branching scheme ... and node evaluation ordering
//! scheme" may differ from CPU solvers'; the rules here are the standard
//! ones the experiments hold fixed while varying node *selection*.

use crate::config::BranchRule;
use gmip_problems::MipInstance;
use std::collections::HashMap;

/// Distance of `x` to its nearest integer.
#[inline]
pub fn fractionality(x: f64) -> f64 {
    (x - x.round()).abs()
}

/// Returns the integral-variable indices whose values are fractional beyond
/// `tol`.
pub fn fractional_vars(instance: &MipInstance, x: &[f64], tol: f64) -> Vec<usize> {
    instance
        .integral_indices()
        .into_iter()
        .filter(|&j| fractionality(x[j]) > tol)
        .collect()
}

/// Pseudocost state: per-variable average objective degradation per unit of
/// fractionality, per direction, learned from completed branchings.
#[derive(Debug, Clone, Default)]
pub struct PseudoCosts {
    up: HashMap<usize, (f64, usize)>,
    down: HashMap<usize, (f64, usize)>,
}

impl PseudoCosts {
    /// Records an observed degradation: branching variable `var` in the
    /// given direction reduced the relaxation bound by `degradation ≥ 0`
    /// with parent fractionality `frac`.
    pub fn record(&mut self, var: usize, up: bool, degradation: f64, frac: f64) {
        let per_unit = if up {
            degradation / (1.0 - frac).max(1e-6)
        } else {
            degradation / frac.max(1e-6)
        };
        let slot = if up {
            self.up.entry(var).or_insert((0.0, 0))
        } else {
            self.down.entry(var).or_insert((0.0, 0))
        };
        slot.0 += per_unit;
        slot.1 += 1;
    }

    fn mean(&self, var: usize, up: bool, fallback: f64) -> f64 {
        let map = if up { &self.up } else { &self.down };
        match map.get(&var) {
            Some(&(sum, n)) if n > 0 => sum / n as f64,
            _ => fallback,
        }
    }

    /// Number of recorded observations (both directions).
    pub fn observations(&self) -> usize {
        self.up.values().map(|&(_, n)| n).sum::<usize>()
            + self.down.values().map(|&(_, n)| n).sum::<usize>()
    }
}

/// The branching decision: variable plus the two children's bound intervals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchDecision {
    /// Chosen variable.
    pub var: usize,
    /// Its fractional LP value.
    pub value: f64,
    /// Down child: `var ≤ floor(value)`.
    pub down_ub: f64,
    /// Up child: `var ≥ ceil(value)`.
    pub up_lb: f64,
}

/// Picks a branching variable among `candidates` (must be non-empty).
///
/// * `MostFractional`: maximize distance to the nearest integer.
/// * `PseudoCost`: maximize the product of estimated up/down degradations
///   (falling back to `|c_j|+1` until observations exist).
pub fn decide(
    rule: BranchRule,
    instance: &MipInstance,
    x: &[f64],
    candidates: &[usize],
    pseudo: &PseudoCosts,
) -> BranchDecision {
    assert!(!candidates.is_empty(), "branching on an integral point");
    let var = match rule {
        BranchRule::Strong | BranchRule::MostFractional => candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                fractionality(x[a])
                    .partial_cmp(&fractionality(x[b]))
                    .expect("fractionality is never NaN")
                    .then(b.cmp(&a)) // tie → lowest index
            })
            .expect("non-empty candidates"),
        BranchRule::PseudoCost => candidates
            .iter()
            .copied()
            .max_by(|&a, &b| {
                let score = |j: usize| {
                    let fallback = instance.vars[j].obj.abs() + 1.0;
                    let f = x[j] - x[j].floor();
                    let up = pseudo.mean(j, true, fallback) * (1.0 - f);
                    let down = pseudo.mean(j, false, fallback) * f;
                    // Standard product score with small linear stabilizer.
                    up * down + 1e-6 * (up + down)
                };
                score(a)
                    .partial_cmp(&score(b))
                    .expect("scores are never NaN")
                    .then(b.cmp(&a))
            })
            .expect("non-empty candidates"),
    };
    BranchDecision {
        var,
        value: x[var],
        down_ub: x[var].floor(),
        up_lb: x[var].ceil(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::figure1_knapsack;

    #[test]
    fn fractionality_measures_distance() {
        assert_eq!(fractionality(2.0), 0.0);
        assert!((fractionality(2.5) - 0.5).abs() < 1e-12);
        assert!((fractionality(2.9) - 0.1).abs() < 1e-9);
        assert!((fractionality(-1.25) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fractional_vars_filters() {
        let m = figure1_knapsack();
        let x = [1.0, 0.5, 0.0, 0.999999999];
        let f = fractional_vars(&m, &x, 1e-6);
        assert_eq!(f, vec![1]);
    }

    #[test]
    fn most_fractional_picks_center() {
        let m = figure1_knapsack();
        let x = [0.9, 0.5, 0.2, 0.0];
        let d = decide(
            BranchRule::MostFractional,
            &m,
            &x,
            &[0, 1, 2],
            &PseudoCosts::default(),
        );
        assert_eq!(d.var, 1);
        assert_eq!(d.down_ub, 0.0);
        assert_eq!(d.up_lb, 1.0);
        assert_eq!(d.value, 0.5);
    }

    #[test]
    fn pseudocost_prefers_learned_impact() {
        let m = figure1_knapsack();
        let x = [0.5, 0.5, 0.0, 0.0];
        let mut pc = PseudoCosts::default();
        // Make variable 1 look very impactful.
        pc.record(1, true, 50.0, 0.5);
        pc.record(1, false, 50.0, 0.5);
        // And variable 0 weak.
        pc.record(0, true, 0.01, 0.5);
        pc.record(0, false, 0.01, 0.5);
        let d = decide(BranchRule::PseudoCost, &m, &x, &[0, 1], &pc);
        assert_eq!(d.var, 1);
        assert_eq!(pc.observations(), 4);
    }

    #[test]
    fn pseudocost_fallback_uses_objective() {
        // No observations: fallback |c|+1 → picks the largest-objective var
        // among equally fractional candidates (x0 with c=10).
        let m = figure1_knapsack();
        let x = [0.5, 0.5, 0.5, 0.5];
        let d = decide(
            BranchRule::PseudoCost,
            &m,
            &x,
            &[0, 1, 2, 3],
            &PseudoCosts::default(),
        );
        assert_eq!(d.var, 0);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panic() {
        let m = figure1_knapsack();
        decide(
            BranchRule::MostFractional,
            &m,
            &[0.0; 4],
            &[],
            &PseudoCosts::default(),
        );
    }
}
