//! Runtime dense/sparse code-path dispatch — the "super-MIP solver" of
//! Section 5.4.
//!
//! "the code must handle user-provided inputs differently, based on whether
//! the input matrix happens to be dense or sparse; this decision needs to
//! be made at runtime, depending on the exact problem input by the user.
//! Therefore, for the highest efficiency, two different MIP solver versions
//! would need to be written: one specially built for sparse MIP problems
//! and the other for dense MIP problems. Alternatively, a super-MIP solver
//! for GPUs would need to be written which dynamically takes different code
//! paths based on the input matrix characteristics."
//!
//! Both solver versions exist here — the dense engine
//! ([`gmip_lp::DeviceEngine`]) and the sparse engine
//! ([`gmip_lp::SparseDeviceEngine`]) — and [`solve_with_dispatch`] is the
//! super-solver: it inspects the input's density and nonzero count at
//! runtime and takes the matching path (delegating tiny sparse inputs to
//! the CPU, per Section 3's "sparse matrix computations … can be delegated
//! to the multi-core processors").

use crate::config::MipConfig;
use crate::solver::{MipResult, MipSolver};
use crate::wave::{solve_batched_wave, BatchedWaveConfig, WaveResult};
use gmip_gpu::{Accel, CostModel};
use gmip_lp::LpResult;
use gmip_problems::MipInstance;

/// The chosen code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodePath {
    /// Dense kernels on the accelerator.
    DenseDevice,
    /// Dense kernels on the accelerator, many node LPs per fused batched
    /// launch ([`crate::wave::solve_batched_wave`], Sections 4.3, 5.5).
    BatchedWave,
    /// Sparse (CSR/GLU-class) kernels on the accelerator.
    SparseDevice,
    /// Sparse handling on the host CPU (the input is too small for any
    /// device path to amortize its launch/transfer overheads).
    SparseHost,
}

/// The density at which dense device execution stops paying against the
/// device's own sparse/irregular handling: the ratio of sparse to dense
/// effective throughput.
pub fn break_even_density(cost: &CostModel) -> f64 {
    cost.sparse_flops_per_ns / cost.dense_flops_per_ns
}

/// Minimum nonzero count for the sparse *device* path to be worth a
/// device's launch overheads; below this, sparse work stays on the host.
pub const MIN_DEVICE_NNZ: usize = 4096;

/// Decides the code path for an instance at runtime.
///
/// * density ≥ 2× the break-even (safety factor for the dense path's
///   regular memory traffic) → dense device kernels;
/// * otherwise, if the instance carries at least [`MIN_DEVICE_NNZ`]
///   nonzeros → the sparse device engine;
/// * otherwise → host.
pub fn choose_path(instance: &MipInstance, gpu: &CostModel) -> CodePath {
    let density = instance.density();
    let nnz: usize = instance.cons.iter().map(|c| c.coeffs.len()).sum();
    if density >= 2.0 * break_even_density(gpu) {
        CodePath::DenseDevice
    } else if nnz >= MIN_DEVICE_NNZ {
        CodePath::SparseDevice
    } else {
        CodePath::SparseHost
    }
}

/// The super-MIP solver: dispatches at runtime and solves. Returns the path
/// taken alongside the result.
pub fn solve_with_dispatch(
    instance: MipInstance,
    cfg: MipConfig,
    gpu: Accel,
) -> LpResult<(CodePath, MipResult)> {
    let path = choose_path(&instance, &gpu.with(|d| d.cost_model().clone()));
    let result = match path {
        CodePath::DenseDevice | CodePath::BatchedWave => {
            MipSolver::on_accel(instance, cfg, gpu).solve()?
        }
        CodePath::SparseDevice => MipSolver::on_accel_sparse(instance, cfg, gpu).solve()?,
        CodePath::SparseHost => MipSolver::host_baseline(instance, cfg).solve()?,
    };
    Ok((path, result))
}

/// The outcome of [`solve_with_dispatch_batched`]: the batched wave when
/// the dense path was eligible, otherwise the regular dispatch result.
#[derive(Debug)]
pub enum BatchedDispatch {
    /// The dense path ran as a batched lockstep wave of node LPs.
    Wave(Box<WaveResult>),
    /// The instance dispatched to a non-dense path; the regular solver ran.
    Fallback(Box<MipResult>),
}

/// The super-MIP solver with the batched wave preferred on the dense path:
/// dense inputs run `wave.lanes` node LPs per fused launch; sparse and tiny
/// inputs fall back to [`solve_with_dispatch`]'s paths (the batched wave's
/// shared-matrix trick needs the dense engines).
pub fn solve_with_dispatch_batched(
    instance: MipInstance,
    cfg: MipConfig,
    wave: BatchedWaveConfig,
    gpu: Accel,
) -> LpResult<(CodePath, BatchedDispatch)> {
    let path = choose_path(&instance, &gpu.with(|d| d.cost_model().clone()));
    match path {
        CodePath::DenseDevice | CodePath::BatchedWave => {
            let r = solve_batched_wave(&instance, &wave, gpu)?;
            Ok((CodePath::BatchedWave, BatchedDispatch::Wave(Box::new(r))))
        }
        CodePath::SparseDevice => {
            let r = MipSolver::on_accel_sparse(instance, cfg, gpu).solve()?;
            Ok((path, BatchedDispatch::Fallback(Box::new(r))))
        }
        CodePath::SparseHost => {
            let r = MipSolver::host_baseline(instance, cfg).solve()?;
            Ok((path, BatchedDispatch::Fallback(Box::new(r))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::generators::{knapsack, set_cover};

    #[test]
    fn break_even_matches_cost_ratio() {
        let gpu = CostModel::gpu_pcie();
        let be = break_even_density(&gpu);
        assert!((be - 140.0 / 7000.0).abs() < 1e-12);
    }

    #[test]
    fn dense_instance_goes_to_device() {
        // Knapsack: single fully dense row.
        let m = knapsack(50, 0.5, 1);
        assert_eq!(
            choose_path(&m, &CostModel::gpu_pcie()),
            CodePath::DenseDevice
        );
    }

    #[test]
    fn small_sparse_stays_on_host_large_goes_to_sparse_device() {
        let small = set_cover(200, 200, 0.01, 1);
        assert_eq!(
            choose_path(&small, &CostModel::gpu_pcie()),
            CodePath::SparseHost
        );
        let large = set_cover(500, 500, 0.03, 1);
        assert!(large.density() < 2.0 * break_even_density(&CostModel::gpu_pcie()));
        assert_eq!(
            choose_path(&large, &CostModel::gpu_pcie()),
            CodePath::SparseDevice
        );
    }

    #[test]
    fn cpu_cost_model_shifts_the_boundary() {
        // The CPU's dense/sparse gap is small, so its break-even density is
        // much higher — almost everything counts as "sparse-friendly".
        let cpu = CostModel::cpu_host();
        let gpu = CostModel::gpu_pcie();
        assert!(break_even_density(&cpu) > 5.0 * break_even_density(&gpu));
    }

    #[test]
    fn super_solver_dispatches_and_solves() {
        use gmip_core_solution_check::*;
        // Dense → dense device path.
        let dense = knapsack(12, 0.5, 4);
        let (path, r) =
            solve_with_dispatch(dense.clone(), MipConfig::default(), Accel::gpu(1)).unwrap();
        assert_eq!(path, CodePath::DenseDevice);
        check_optimal(&dense, &r);
        // Small sparse → host path.
        let sparse = set_cover(30, 40, 0.02, 4);
        let (path, r) =
            solve_with_dispatch(sparse.clone(), MipConfig::default(), Accel::gpu(1)).unwrap();
        assert_eq!(path, CodePath::SparseHost);
        check_optimal(&sparse, &r);
    }

    /// Tiny local helpers for the dispatch test.
    mod gmip_core_solution_check {
        use crate::solver::{MipResult, MipStatus};
        use gmip_problems::MipInstance;

        pub fn check_optimal(m: &MipInstance, r: &MipResult) {
            assert_eq!(r.status, MipStatus::Optimal);
            assert!(m.is_integer_feasible(&r.x, 1e-5));
        }
    }
}
