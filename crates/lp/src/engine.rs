//! The simplex *engine* abstraction and its host implementation.
//!
//! The revised simplex driver ([`crate::simplex`], [`crate::dual`]) is
//! written once against [`SimplexEngine`], which exposes exactly the
//! numerical steps of an iteration. Two implementations exist:
//!
//! * [`HostEngine`] — plain vectors and a host eta file; the reference
//!   implementation used for correctness cross-checks;
//! * [`crate::device_engine::DeviceEngine`] — the same steps as simulated
//!   device kernels on a `gmip_gpu::Accel`, with the constraint matrix
//!   resident on the device and only scalars crossing the link per
//!   iteration (the Section 5.1 execution model).
//!
//! Equivalence of the two under identical pivoting rules is a property test
//! in the crate's test suite.

use crate::basis::{Basis, VarStatus};
use crate::{LpError, LpResult};
use gmip_linalg::{DenseMatrix, EtaFile};

/// A read-only view of the (possibly cut-extended) problem data the engine
/// needs at basis-install time. The constraint matrix itself lives inside
/// the engine (it was loaded at construction and only grows via
/// [`SimplexEngine::append_cut`]).
#[derive(Debug, Clone, Copy)]
pub struct ProblemView<'a> {
    /// Objective (maximize).
    pub c: &'a [f64],
    /// Lower bounds.
    pub lb: &'a [f64],
    /// Upper bounds.
    pub ub: &'a [f64],
    /// Right-hand side.
    pub b: &'a [f64],
}

/// Everything the engine must change when a pivot is applied.
#[derive(Debug, Clone, Copy)]
pub struct PivotPlan {
    /// Leaving basis row.
    pub r: usize,
    /// Entering column.
    pub q: usize,
    /// Column previously basic in row `r`.
    pub leaving_j: usize,
    /// Step direction of the entering variable (+1 increasing, −1
    /// decreasing); the basic update is `x_B ← x_B − dir·t·α`.
    pub dir: f64,
    /// Step length (dual pivots pass a signed step with `dir = 1`).
    pub t: f64,
    /// Value the entering variable takes (installed in slot `r`).
    pub entering_val: f64,
    /// σ weight for the leaving variable (−1 to lower, +1 to upper, 0 if it
    /// becomes ineligible, e.g. a fixed artificial).
    pub leaving_sigma: f64,
    /// Objective coefficient of the entering column.
    pub c_q: f64,
    /// Lower bound of the entering column.
    pub lb_q: f64,
    /// Upper bound of the entering column.
    pub ub_q: f64,
}

/// The per-iteration numerical interface of the revised simplex.
///
/// State machine expectations: [`install`](Self::install) before anything
/// else; [`ftran_column`](Self::ftran_column) before
/// [`ratio_test`](Self::ratio_test)/[`apply_pivot`](Self::apply_pivot);
/// [`btran_row`](Self::btran_row) before [`dual_ratio`](Self::dual_ratio)/
/// [`alpha_r_entry`](Self::alpha_r_entry).
pub trait SimplexEngine {
    /// Rows of the engine's matrix.
    fn m(&self) -> usize;
    /// Columns of the engine's matrix.
    fn n(&self) -> usize;

    /// Simulated-time frontier of this engine's executor, ns — used to
    /// timestamp LP trace spans. Engines with no modeled clock (the host
    /// reference engine) return `None` and their spans are suppressed.
    fn sim_now_ns(&self) -> Option<f64> {
        None
    }

    /// Installs a basis: factorizes `B`, computes basic values
    /// `x_B = B⁻¹(b − N x_N)`, and loads objective/status/bound state.
    /// σ is 0 for basic columns *and* for fixed columns (`lb == ub`), which
    /// excludes both from pricing.
    fn install(&mut self, view: ProblemView<'_>, basis: &Basis) -> LpResult<()>;

    /// Appends a cut: `row` spans the current columns, `col` is the new
    /// slack column spanning `m()+1` rows.
    fn append_cut(&mut self, row: &[f64], col: &[f64]) -> LpResult<()>;

    /// Dantzig pricing: the most negative score `σ_j · d_j` over eligible
    /// columns, or `None` when no column prices out (σ-weighted optimality).
    fn price(&mut self) -> LpResult<Option<(usize, f64)>>;

    /// Full reduced-cost vector on the host (Bland fallback; on the device
    /// engine this is an honest n-vector D2H transfer).
    fn reduced_costs_host(&mut self) -> LpResult<Vec<f64>>;

    /// FTRAN of column `q`: `α = B⁻¹ a_q`, kept engine-resident.
    fn ftran_column(&mut self, q: usize) -> LpResult<()>;

    /// Entry `i` of the current FTRAN column (scalar readback).
    fn alpha_entry(&mut self, i: usize) -> LpResult<f64>;

    /// Bounded primal ratio test on the current FTRAN column; returns
    /// `(row, t, leaves_at_upper)` or `None` if no basic variable blocks.
    fn ratio_test(&mut self, dir: f64, tol: f64) -> LpResult<Option<(usize, f64, bool)>>;

    /// Bound flip of the entering column: `x_B ← x_B − dir·t·α`, σ_q set to
    /// `new_sigma`.
    fn apply_flip(&mut self, q: usize, dir: f64, t: f64, new_sigma: f64) -> LpResult<()>;

    /// Applies a pivot (basic update, eta update, σ/c_B/bound bookkeeping).
    fn apply_pivot(&mut self, plan: &PivotPlan) -> LpResult<()>;

    /// Basic values `x_B` (full readback — end of solve).
    fn basic_values(&mut self) -> LpResult<Vec<f64>>;

    /// Entry `i` of `x_B` (scalar readback — dual iterations).
    fn basic_entry(&mut self, i: usize) -> LpResult<f64>;

    /// Number of eta factors accumulated since the last factorization.
    fn eta_count(&self) -> usize;

    /// Largest primal bound violation among basic variables, as
    /// `(row, violation, below_lower)`.
    fn primal_infeas(&mut self, tol: f64) -> LpResult<Option<(usize, f64, bool)>>;

    /// BTRAN row `r`: `ρ = B⁻ᵀ e_r`, then `α_r = Aᵀ ρ`, kept engine-resident.
    fn btran_row(&mut self, r: usize) -> LpResult<()>;

    /// Dual ratio test on the current BTRAN row.
    fn dual_ratio(&mut self, leaving_below: bool, tol: f64) -> LpResult<Option<(usize, f64)>>;

    /// Entry `j` of the current BTRAN row (scalar readback).
    fn alpha_r_entry(&mut self, j: usize) -> LpResult<f64>;

    /// BTRAN row `r` downloaded to the host in one piece — the tableau row
    /// needed by CPU-side cut generation (Section 5.2's device→host leg; on
    /// the device engine this is an honest full-vector transfer).
    fn btran_row_host(&mut self, r: usize) -> LpResult<Vec<f64>>;

    /// The dual prices `y` of the current basis (`Bᵀ y = c_B`), downloaded
    /// to the host — what a column-generation master hands its pricing
    /// subproblem (an honest m-vector transfer on the device engines).
    fn dual_prices(&mut self) -> LpResult<Vec<f64>>;

    /// Devex pricing: among eligible columns (σ_j·d_j < −tol implied by the
    /// caller's threshold check on the returned score), maximizes the Devex
    /// merit `d_j²/γ_j`. Returns `(column, σ·d score)` like
    /// [`price`](Self::price). Engines reset the reference weights γ to 1 at
    /// every [`install`](Self::install).
    fn price_devex(&mut self) -> LpResult<Option<(usize, f64)>>;

    /// Devex reference-weight update for the pivot `(entering q, leaving
    /// row's occupant leaving_j)`. Requires a fresh
    /// [`btran_row`](Self::btran_row) of the leaving row (old basis):
    /// `γ_j ← max(γ_j, (α_r[j]/α_r[q])²·γ_q)` for all columns, then the
    /// leaving variable is re-anchored at `max(γ_q/α_r[q]², 1)`.
    fn devex_update(&mut self, q: usize, leaving_j: usize) -> LpResult<()>;
}

/// Pure-host engine: the reference implementation.
#[derive(Debug)]
pub struct HostEngine {
    a: DenseMatrix,
    b: Vec<f64>,
    c: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    sigma: Vec<f64>,
    cb: Vec<f64>,
    lbb: Vec<f64>,
    ubb: Vec<f64>,
    xb: Vec<f64>,
    gamma: Vec<f64>,
    eta: Option<EtaFile>,
    alpha: Option<Vec<f64>>,
    alpha_r: Option<Vec<f64>>,
}

impl HostEngine {
    /// Creates a host engine over the given constraint matrix.
    pub fn new(a: DenseMatrix) -> Self {
        Self {
            a,
            b: Vec::new(),
            c: Vec::new(),
            lb: Vec::new(),
            ub: Vec::new(),
            sigma: Vec::new(),
            cb: Vec::new(),
            lbb: Vec::new(),
            ubb: Vec::new(),
            xb: Vec::new(),
            gamma: Vec::new(),
            eta: None,
            alpha: None,
            alpha_r: None,
        }
    }

    fn eta(&self) -> LpResult<&EtaFile> {
        self.eta.as_ref().ok_or(LpError::NotInstalled)
    }

    fn alpha(&self) -> LpResult<&Vec<f64>> {
        self.alpha.as_ref().ok_or(LpError::NotInstalled)
    }
}

impl SimplexEngine for HostEngine {
    fn m(&self) -> usize {
        self.a.rows()
    }

    fn n(&self) -> usize {
        self.a.cols()
    }

    fn install(&mut self, view: ProblemView<'_>, basis: &Basis) -> LpResult<()> {
        let m = self.m();
        let n = self.n();
        if view.c.len() != n || view.lb.len() != n || view.ub.len() != n || view.b.len() != m {
            return Err(LpError::Shape(format!(
                "install: engine {}x{}, view c={} b={}",
                m,
                n,
                view.c.len(),
                view.b.len()
            )));
        }
        self.b = view.b.to_vec();
        self.c = view.c.to_vec();
        self.lb = view.lb.to_vec();
        self.ub = view.ub.to_vec();
        self.sigma = basis
            .status
            .iter()
            .enumerate()
            .map(|(j, s)| {
                if self.lb[j] == self.ub[j] {
                    0.0
                } else {
                    s.sigma()
                }
            })
            .collect();
        // Nonbasic point and residual.
        let mut x_nb = vec![0.0; n];
        for (j, s) in basis.status.iter().enumerate() {
            match s {
                VarStatus::AtLower => x_nb[j] = self.lb[j],
                VarStatus::AtUpper => x_nb[j] = self.ub[j],
                VarStatus::Basic(_) => {}
            }
            if !matches!(s, VarStatus::Basic(_)) && !x_nb[j].is_finite() {
                return Err(LpError::FreeVariable(j));
            }
        }
        let ax = self.a.matvec(&x_nb)?;
        let w: Vec<f64> = self.b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        // Factorize the basis.
        let mut bmat = DenseMatrix::zeros(m, m);
        for (i, &j) in basis.cols.iter().enumerate() {
            for r in 0..m {
                bmat.set(r, i, self.a.get(r, j));
            }
        }
        let eta = EtaFile::factorize(&bmat)?;
        self.xb = eta.ftran(&w)?;
        self.eta = Some(eta);
        self.cb = basis.cols.iter().map(|&j| self.c[j]).collect();
        self.lbb = basis.cols.iter().map(|&j| self.lb[j]).collect();
        self.ubb = basis.cols.iter().map(|&j| self.ub[j]).collect();
        self.gamma = vec![1.0; n];
        self.alpha = None;
        self.alpha_r = None;
        Ok(())
    }

    fn append_cut(&mut self, row: &[f64], col: &[f64]) -> LpResult<()> {
        self.a.push_row(row)?;
        self.a.push_col(col)?;
        Ok(())
    }

    fn price(&mut self) -> LpResult<Option<(usize, f64)>> {
        let y = self.eta()?.btran(&self.cb)?;
        let aty = self.a.matvec_transposed(&y)?;
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n() {
            if self.sigma[j] == 0.0 {
                continue;
            }
            let d = self.c[j] - aty[j];
            let score = self.sigma[j] * d;
            if best.is_none_or(|(_, b)| score < b) {
                best = Some((j, score));
            }
        }
        Ok(best)
    }

    fn reduced_costs_host(&mut self) -> LpResult<Vec<f64>> {
        let y = self.eta()?.btran(&self.cb)?;
        let aty = self.a.matvec_transposed(&y)?;
        Ok(self.c.iter().zip(&aty).map(|(ci, ai)| ci - ai).collect())
    }

    fn ftran_column(&mut self, q: usize) -> LpResult<()> {
        let col = self.a.col(q);
        self.alpha = Some(self.eta()?.ftran(&col)?);
        Ok(())
    }

    fn alpha_entry(&mut self, i: usize) -> LpResult<f64> {
        Ok(self.alpha()?[i])
    }

    fn ratio_test(&mut self, dir: f64, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let alpha = self.alpha()?;
        let mut best: Option<(usize, f64, bool)> = None;
        for i in 0..self.m() {
            let ae = dir * alpha[i];
            let (t, upper) = if ae > tol {
                if self.lbb[i].is_infinite() {
                    continue;
                }
                (((self.xb[i] - self.lbb[i]) / ae).max(0.0), false)
            } else if ae < -tol {
                if self.ubb[i].is_infinite() {
                    continue;
                }
                (((self.xb[i] - self.ubb[i]) / ae).max(0.0), true)
            } else {
                continue;
            };
            if best.is_none_or(|(_, bt, _)| t < bt - 1e-12) {
                best = Some((i, t, upper));
            }
        }
        Ok(best)
    }

    fn apply_flip(&mut self, q: usize, dir: f64, t: f64, new_sigma: f64) -> LpResult<()> {
        let alpha = self.alpha()?.clone();
        for (xi, ai) in self.xb.iter_mut().zip(&alpha) {
            *xi -= dir * t * ai;
        }
        self.sigma[q] = new_sigma;
        Ok(())
    }

    fn apply_pivot(&mut self, plan: &PivotPlan) -> LpResult<()> {
        let alpha = self.alpha()?.clone();
        for (xi, ai) in self.xb.iter_mut().zip(&alpha) {
            *xi -= plan.dir * plan.t * ai;
        }
        self.xb[plan.r] = plan.entering_val;
        self.eta
            .as_mut()
            .ok_or(LpError::NotInstalled)?
            .update(plan.r, alpha)?;
        self.sigma[plan.leaving_j] = if self.lb[plan.leaving_j] == self.ub[plan.leaving_j] {
            0.0
        } else {
            plan.leaving_sigma
        };
        self.sigma[plan.q] = 0.0;
        self.cb[plan.r] = plan.c_q;
        self.lbb[plan.r] = plan.lb_q;
        self.ubb[plan.r] = plan.ub_q;
        self.alpha = None;
        self.alpha_r = None;
        Ok(())
    }

    fn basic_values(&mut self) -> LpResult<Vec<f64>> {
        Ok(self.xb.clone())
    }

    fn basic_entry(&mut self, i: usize) -> LpResult<f64> {
        self.xb.get(i).copied().ok_or(LpError::Shape(format!(
            "basic_entry {i} of {}",
            self.xb.len()
        )))
    }

    fn eta_count(&self) -> usize {
        self.eta.as_ref().map_or(0, EtaFile::eta_count)
    }

    fn primal_infeas(&mut self, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let mut best: Option<(usize, f64, bool)> = None;
        for i in 0..self.m() {
            let (viol, below) = if self.xb[i] < self.lbb[i] - tol {
                (self.lbb[i] - self.xb[i], true)
            } else if self.xb[i] > self.ubb[i] + tol {
                (self.xb[i] - self.ubb[i], false)
            } else {
                continue;
            };
            if best.is_none_or(|(_, bv, _)| viol > bv) {
                best = Some((i, viol, below));
            }
        }
        Ok(best)
    }

    fn btran_row(&mut self, r: usize) -> LpResult<()> {
        let m = self.m();
        let mut e = vec![0.0; m];
        e[r] = 1.0;
        let rho = self.eta()?.btran(&e)?;
        self.alpha_r = Some(self.a.matvec_transposed(&rho)?);
        Ok(())
    }

    fn dual_ratio(&mut self, leaving_below: bool, tol: f64) -> LpResult<Option<(usize, f64)>> {
        let d = self.reduced_costs_host()?;
        let ar = self.alpha_r.as_ref().ok_or(LpError::NotInstalled)?;
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.n() {
            let eligible = match (self.sigma[j], leaving_below) {
                (s, true) if s < 0.0 => ar[j] < -tol,
                (s, true) if s > 0.0 => ar[j] > tol,
                (s, false) if s < 0.0 => ar[j] > tol,
                (s, false) if s > 0.0 => ar[j] < -tol,
                _ => false,
            };
            if !eligible {
                continue;
            }
            let ratio = (d[j] / ar[j]).abs();
            if best.is_none_or(|(_, br)| ratio < br - 1e-12) {
                best = Some((j, ratio));
            }
        }
        Ok(best)
    }

    fn alpha_r_entry(&mut self, j: usize) -> LpResult<f64> {
        Ok(self.alpha_r.as_ref().ok_or(LpError::NotInstalled)?[j])
    }

    fn btran_row_host(&mut self, r: usize) -> LpResult<Vec<f64>> {
        self.btran_row(r)?;
        Ok(self.alpha_r.clone().expect("btran_row just set alpha_r"))
    }

    fn dual_prices(&mut self) -> LpResult<Vec<f64>> {
        self.eta()?.btran(&self.cb).map_err(LpError::from)
    }

    fn price_devex(&mut self) -> LpResult<Option<(usize, f64)>> {
        let y = self.eta()?.btran(&self.cb)?;
        let aty = self.a.matvec_transposed(&y)?;
        let mut best: Option<(usize, f64, f64)> = None; // (j, merit, sigma_d)
        for j in 0..self.n() {
            if self.sigma[j] == 0.0 {
                continue;
            }
            let d = self.c[j] - aty[j];
            let sd = self.sigma[j] * d;
            if sd >= 0.0 {
                continue;
            }
            let merit = d * d / self.gamma[j].max(1e-12);
            if best.is_none_or(|(_, bm, _)| merit > bm) {
                best = Some((j, merit, sd));
            }
        }
        Ok(best.map(|(j, _, sd)| (j, sd)))
    }

    fn devex_update(&mut self, q: usize, leaving_j: usize) -> LpResult<()> {
        let ar = self.alpha_r.as_ref().ok_or(LpError::NotInstalled)?;
        let arq = ar[q];
        if arq.abs() < 1e-12 {
            return Err(LpError::Shape("devex update with zero pivot".into()));
        }
        let gamma_q = self.gamma[q];
        for (gj, arj) in self.gamma.iter_mut().zip(ar.iter()) {
            let ratio = arj / arq;
            let cand = ratio * ratio * gamma_q;
            if cand > *gj {
                *gj = cand;
            }
        }
        self.gamma[leaving_j] = (gamma_q / (arq * arq)).max(1.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2x4 system: x0 + x2 = 4, x1 + x3 = 3 (identity slack basis on cols
    /// 2,3). c = [3, 2, 0, 0], all lb 0, ub inf.
    fn setup() -> (HostEngine, Basis, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
        let a =
            DenseMatrix::from_rows(&[vec![1.0, 0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]]).unwrap();
        let engine = HostEngine::new(a);
        let basis = Basis::with_basic_cols(vec![2, 3], 4);
        let c = vec![3.0, 2.0, 0.0, 0.0];
        let lb = vec![0.0; 4];
        let ub = vec![f64::INFINITY; 4];
        let b = vec![4.0, 3.0];
        (engine, basis, c, lb, ub, b)
    }

    #[test]
    fn install_computes_slack_basics() {
        let (mut e, basis, c, lb, ub, b) = setup();
        e.install(
            ProblemView {
                c: &c,
                lb: &lb,
                ub: &ub,
                b: &b,
            },
            &basis,
        )
        .unwrap();
        assert_eq!(e.basic_values().unwrap(), vec![4.0, 3.0]);
        assert_eq!(e.eta_count(), 0);
    }

    #[test]
    fn price_picks_most_improving() {
        let (mut e, basis, c, lb, ub, b) = setup();
        e.install(
            ProblemView {
                c: &c,
                lb: &lb,
                ub: &ub,
                b: &b,
            },
            &basis,
        )
        .unwrap();
        // d = c (y = 0); scores: sigma=-1 → -3 for x0, -2 for x1.
        let (j, score) = e.price().unwrap().unwrap();
        assert_eq!(j, 0);
        assert!((score + 3.0).abs() < 1e-12);
        let d = e.reduced_costs_host().unwrap();
        assert_eq!(d, vec![3.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn ftran_ratio_pivot_cycle() {
        let (mut e, mut basis, c, lb, ub, b) = setup();
        e.install(
            ProblemView {
                c: &c,
                lb: &lb,
                ub: &ub,
                b: &b,
            },
            &basis,
        )
        .unwrap();
        e.ftran_column(0).unwrap();
        assert_eq!(e.alpha_entry(0).unwrap(), 1.0);
        assert_eq!(e.alpha_entry(1).unwrap(), 0.0);
        let (r, t, upper) = e.ratio_test(1.0, 1e-9).unwrap().unwrap();
        assert_eq!(r, 0);
        assert_eq!(t, 4.0);
        assert!(!upper);
        e.apply_pivot(&PivotPlan {
            r,
            q: 0,
            leaving_j: 2,
            dir: 1.0,
            t,
            entering_val: 4.0,
            leaving_sigma: -1.0,
            c_q: 3.0,
            lb_q: 0.0,
            ub_q: f64::INFINITY,
        })
        .unwrap();
        basis.pivot(r, 0, VarStatus::AtLower);
        assert_eq!(e.basic_values().unwrap(), vec![4.0, 3.0]);
        assert_eq!(e.eta_count(), 1);
        // x0 now basic; pricing should propose x1.
        let (j, _) = e.price().unwrap().unwrap();
        assert_eq!(j, 1);
    }

    #[test]
    fn primal_infeasibility_detection() {
        let (mut e, basis, c, lb, mut ub, b) = setup();
        // Force slack 2's upper bound below its basic value 4.
        ub[2] = 1.0;
        e.install(
            ProblemView {
                c: &c,
                lb: &lb,
                ub: &ub,
                b: &b,
            },
            &basis,
        )
        .unwrap();
        let (r, viol, below) = e.primal_infeas(1e-9).unwrap().unwrap();
        assert_eq!(r, 0);
        assert!((viol - 3.0).abs() < 1e-12);
        assert!(!below);
        // BTRAN row of the violated row: identity basis → row 0 of A.
        e.btran_row(0).unwrap();
        assert_eq!(e.alpha_r_entry(0).unwrap(), 1.0);
        assert_eq!(e.alpha_r_entry(1).unwrap(), 0.0);
    }

    #[test]
    fn install_shape_checked() {
        let (mut e, basis, c, lb, ub, _) = setup();
        let bad_b = vec![1.0];
        assert!(e
            .install(
                ProblemView {
                    c: &c,
                    lb: &lb,
                    ub: &ub,
                    b: &bad_b
                },
                &basis
            )
            .is_err());
    }

    #[test]
    fn not_installed_errors() {
        let (mut e, _, _, _, _, _) = setup();
        assert!(matches!(e.price(), Err(LpError::NotInstalled)));
        assert!(e.ftran_column(0).is_err());
    }

    #[test]
    fn state_machine_misuse_is_reported_not_panicking() {
        let (mut e, basis, c, lb, ub, b) = setup();
        e.install(
            ProblemView {
                c: &c,
                lb: &lb,
                ub: &ub,
                b: &b,
            },
            &basis,
        )
        .unwrap();
        // Ratio test / pivot / alpha access before any FTRAN.
        assert!(matches!(
            e.ratio_test(1.0, 1e-9),
            Err(LpError::NotInstalled)
        ));
        assert!(matches!(e.alpha_entry(0), Err(LpError::NotInstalled)));
        assert!(e
            .apply_pivot(&PivotPlan {
                r: 0,
                q: 0,
                leaving_j: 2,
                dir: 1.0,
                t: 0.0,
                entering_val: 0.0,
                leaving_sigma: -1.0,
                c_q: 0.0,
                lb_q: 0.0,
                ub_q: 1.0,
            })
            .is_err());
        // Dual accessors before btran_row.
        assert!(matches!(e.alpha_r_entry(0), Err(LpError::NotInstalled)));
        assert!(e.dual_ratio(true, 1e-9).is_err());
        // Devex update before btran_row.
        assert!(e.devex_update(0, 2).is_err());
        // After a proper FTRAN/BTRAN everything works again.
        e.ftran_column(0).unwrap();
        assert!(e.ratio_test(1.0, 1e-9).is_ok());
        e.btran_row(0).unwrap();
        assert!(e.alpha_r_entry(0).is_ok());
    }

    #[test]
    fn devex_pricing_agrees_with_dantzig_on_direction() {
        let (mut e, basis, c, lb, ub, b) = setup();
        e.install(
            ProblemView {
                c: &c,
                lb: &lb,
                ub: &ub,
                b: &b,
            },
            &basis,
        )
        .unwrap();
        // Fresh weights are all 1, so Devex merit d² picks the same column
        // as Dantzig's |σd| here (d = [3,2,0,0], all at lower).
        let (jd, sd) = e.price().unwrap().unwrap();
        let (jx, sx) = e.price_devex().unwrap().unwrap();
        assert_eq!(jd, jx);
        assert_eq!(sd, sx);
    }

    #[test]
    fn append_cut_grows_engine() {
        let (mut e, _, _, _, _, _) = setup();
        e.append_cut(&[1.0, 1.0, 0.0, 0.0], &[0.0, 0.0, 1.0])
            .unwrap();
        assert_eq!(e.m(), 3);
        assert_eq!(e.n(), 5);
    }
}
