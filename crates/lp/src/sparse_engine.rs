//! The sparse accelerator-resident simplex engine — the second half of
//! Section 5.4's "two different MIP solver versions".
//!
//! Identical orchestration to [`crate::device_engine::DeviceEngine`], but
//! the constraint matrix lives on the device in **CSR** form and every
//! matrix-touching kernel (pricing, residual, column extraction, basis
//! factorization) runs through the sparse kernel set: work proportional to
//! `nnz` instead of `m·n`, charged at the device's (much lower) sparse
//! throughput, and transfers proportional to `nnz`. The basis is held as a
//! sparse LU (GLU-class) plus eta updates.
//!
//! The dense and sparse engines take identical pivot paths on the same
//! problem — only the simulated cost ledger differs — which is what lets
//! the super-solver dispatch of `gmip-core` choose between them purely on
//! cost grounds.

use crate::basis::{Basis, VarStatus};
use crate::engine::{PivotPlan, ProblemView, SimplexEngine};
use crate::{LpError, LpResult};
use gmip_gpu::{
    Accel, GpuDevice, SparseEtaHandle, SparseHandle, VectorHandle, DEFAULT_STREAM as S,
};
use gmip_linalg::{CsrMatrix, DenseMatrix};

/// Simplex engine with a CSR-resident matrix and sparse basis kernels.
#[derive(Debug)]
pub struct SparseDeviceEngine {
    accel: Accel,
    a: SparseHandle,
    m: usize,
    n: usize,
    lb: Vec<f64>,
    ub: Vec<f64>,
    basis_cols: Vec<usize>,
    c: Option<VectorHandle>,
    b: Option<VectorHandle>,
    sigma: Option<VectorHandle>,
    cb: Option<VectorHandle>,
    lbb: Option<VectorHandle>,
    ubb: Option<VectorHandle>,
    xb: Option<VectorHandle>,
    eta: Option<SparseEtaHandle>,
    gamma: Option<VectorHandle>,
    alpha: Option<VectorHandle>,
    alpha_r: Option<VectorHandle>,
}

impl SparseDeviceEngine {
    /// Uploads the extended matrix (converted to CSR) to the accelerator.
    pub fn new(accel: Accel, a: &DenseMatrix) -> LpResult<Self> {
        let csr = CsrMatrix::from_dense(a);
        let handle = accel.with(|d| d.upload_sparse(&csr, S))?;
        Ok(Self {
            accel,
            a: handle,
            m: a.rows(),
            n: a.cols(),
            lb: Vec::new(),
            ub: Vec::new(),
            basis_cols: Vec::new(),
            c: None,
            b: None,
            sigma: None,
            cb: None,
            lbb: None,
            ubb: None,
            xb: None,
            eta: None,
            gamma: None,
            alpha: None,
            alpha_r: None,
        })
    }

    /// The accelerator this engine runs on.
    pub fn accel(&self) -> &Accel {
        &self.accel
    }

    fn with_dev<R>(
        &self,
        f: impl FnOnce(&mut GpuDevice) -> Result<R, gmip_gpu::GpuError>,
    ) -> LpResult<R> {
        self.accel.with(f).map_err(LpError::from)
    }

    fn free_opt(&mut self, h: Option<VectorHandle>) {
        if let Some(h) = h {
            let _ = self.accel.with(|d| d.free_vector(h));
        }
    }

    fn clear_iteration_state(&mut self) {
        let handles = [
            self.c.take(),
            self.b.take(),
            self.sigma.take(),
            self.cb.take(),
            self.lbb.take(),
            self.ubb.take(),
            self.xb.take(),
            self.gamma.take(),
            self.alpha.take(),
            self.alpha_r.take(),
        ];
        for h in handles {
            self.free_opt(h);
        }
        if let Some(e) = self.eta.take() {
            let _ = self.accel.with(|d| d.free_sparse_eta(e));
        }
    }

    fn eta(&self) -> LpResult<SparseEtaHandle> {
        self.eta.ok_or(LpError::NotInstalled)
    }

    fn req(&self, h: Option<VectorHandle>) -> LpResult<VectorHandle> {
        h.ok_or(LpError::NotInstalled)
    }
}

impl Drop for SparseDeviceEngine {
    fn drop(&mut self) {
        self.clear_iteration_state();
        let _ = self.accel.with(|d| d.free_sparse(self.a));
    }
}

impl SimplexEngine for SparseDeviceEngine {
    fn m(&self) -> usize {
        self.m
    }

    fn sim_now_ns(&self) -> Option<f64> {
        Some(self.accel.elapsed_ns())
    }

    fn n(&self) -> usize {
        self.n
    }

    fn install(&mut self, view: ProblemView<'_>, basis: &Basis) -> LpResult<()> {
        if view.c.len() != self.n || view.b.len() != self.m {
            return Err(LpError::Shape(format!(
                "sparse install: engine {}x{}, view c={} b={}",
                self.m,
                self.n,
                view.c.len(),
                view.b.len()
            )));
        }
        self.clear_iteration_state();
        self.lb = view.lb.to_vec();
        self.ub = view.ub.to_vec();
        self.basis_cols = basis.cols.clone();

        let mut sigma = vec![0.0; self.n];
        let mut x_nb = vec![0.0; self.n];
        for (j, s) in basis.status.iter().enumerate() {
            match s {
                VarStatus::Basic(_) => {}
                VarStatus::AtLower => {
                    x_nb[j] = view.lb[j];
                    sigma[j] = if view.lb[j] == view.ub[j] { 0.0 } else { -1.0 };
                }
                VarStatus::AtUpper => {
                    x_nb[j] = view.ub[j];
                    sigma[j] = if view.lb[j] == view.ub[j] { 0.0 } else { 1.0 };
                }
            }
            if !matches!(s, VarStatus::Basic(_)) && !x_nb[j].is_finite() {
                return Err(LpError::FreeVariable(j));
            }
        }
        let cb: Vec<f64> = basis.cols.iter().map(|&j| view.c[j]).collect();
        let lbb: Vec<f64> = basis.cols.iter().map(|&j| view.lb[j]).collect();
        let ubb: Vec<f64> = basis.cols.iter().map(|&j| view.ub[j]).collect();

        let a = self.a;
        let cols = basis.cols.clone();
        let (c_h, b_h, sigma_h, cb_h, lbb_h, ubb_h, eta_h, xb_h) = self.with_dev(|d| {
            let c_h = d.upload_vector(view.c, S)?;
            let b_h = d.upload_vector(view.b, S)?;
            let sigma_h = d.upload_vector(&sigma, S)?;
            let cb_h = d.upload_vector(&cb, S)?;
            let lbb_h = d.upload_vector(&lbb, S)?;
            let ubb_h = d.upload_vector(&ubb, S)?;
            let xnb_h = d.upload_vector(&x_nb, S)?;
            let w = d.residual_sparse(b_h, a, xnb_h, S)?;
            let eta_h = d.sparse_eta_factor(a, &cols, S)?;
            let xb_h = d.sparse_eta_ftran(eta_h, w, S)?;
            d.free_vector(w)?;
            d.free_vector(xnb_h)?;
            Ok((c_h, b_h, sigma_h, cb_h, lbb_h, ubb_h, eta_h, xb_h))
        })?;
        self.c = Some(c_h);
        self.b = Some(b_h);
        self.sigma = Some(sigma_h);
        self.cb = Some(cb_h);
        self.lbb = Some(lbb_h);
        self.ubb = Some(ubb_h);
        self.eta = Some(eta_h);
        self.xb = Some(xb_h);
        let ones = vec![1.0; self.n];
        let g = self.with_dev(|d| d.upload_vector(&ones, S))?;
        self.gamma = Some(g);
        Ok(())
    }

    fn append_cut(&mut self, row: &[f64], _col: &[f64]) -> LpResult<()> {
        // Sparse form: the cut row's nonzeros plus its slack at the new
        // column index (= current n).
        let mut entries: Vec<(usize, f64)> = row
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > 1e-12)
            .map(|(j, &v)| (j, v))
            .collect();
        entries.push((self.n, 1.0));
        let a = self.a;
        let new_cols = self.n + 1;
        self.with_dev(|d| d.append_row_sparse(a, &entries, new_cols, S))?;
        self.m += 1;
        self.n += 1;
        Ok(())
    }

    fn price(&mut self) -> LpResult<Option<(usize, f64)>> {
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let sigma = self.req(self.sigma)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.sparse_eta_btran(eta, cb, S)?;
            let dvec = d.pricing_sparse(a, y, c, S)?;
            let score = d.vec_mul(dvec, sigma, S)?;
            let best = d.argmin_masked(score, sigma, S)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            d.free_vector(score)?;
            Ok(best)
        })
    }

    fn reduced_costs_host(&mut self) -> LpResult<Vec<f64>> {
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.sparse_eta_btran(eta, cb, S)?;
            let dvec = d.pricing_sparse(a, y, c, S)?;
            let out = d.download_vector(dvec, S)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            Ok(out)
        })
    }

    fn ftran_column(&mut self, q: usize) -> LpResult<()> {
        let eta = self.eta()?;
        let a = self.a;
        let alpha = self.with_dev(|d| {
            let col = d.extract_column_sparse(a, q, S)?;
            let alpha = d.sparse_eta_ftran(eta, col, S)?;
            d.free_vector(col)?;
            Ok(alpha)
        })?;
        let old = self.alpha.replace(alpha);
        self.free_opt(old);
        Ok(())
    }

    fn alpha_entry(&mut self, i: usize) -> LpResult<f64> {
        let alpha = self.req(self.alpha)?;
        self.with_dev(|d| d.vec_get(alpha, i, S))
    }

    fn ratio_test(&mut self, dir: f64, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let xb = self.req(self.xb)?;
        let alpha = self.req(self.alpha)?;
        let lbb = self.req(self.lbb)?;
        let ubb = self.req(self.ubb)?;
        self.with_dev(|d| d.ratio_test_bounded(xb, alpha, lbb, ubb, dir, tol, S))
    }

    fn apply_flip(&mut self, q: usize, dir: f64, t: f64, new_sigma: f64) -> LpResult<()> {
        let xb = self.req(self.xb)?;
        let alpha = self.req(self.alpha)?;
        let sigma = self.req(self.sigma)?;
        self.with_dev(|d| {
            d.basic_step(xb, alpha, dir, t, None, S)?;
            d.vec_set(sigma, q, new_sigma, S)
        })
    }

    fn apply_pivot(&mut self, plan: &PivotPlan) -> LpResult<()> {
        let xb = self.req(self.xb)?;
        let alpha = self.req(self.alpha)?;
        let sigma = self.req(self.sigma)?;
        let cb = self.req(self.cb)?;
        let lbb = self.req(self.lbb)?;
        let ubb = self.req(self.ubb)?;
        let eta = self.eta()?;
        let leaving_sigma = if self.lb[plan.leaving_j] == self.ub[plan.leaving_j] {
            0.0
        } else {
            plan.leaving_sigma
        };
        self.with_dev(|d| {
            d.basic_step(
                xb,
                alpha,
                plan.dir,
                plan.t,
                Some((plan.r, plan.entering_val)),
                S,
            )?;
            d.sparse_eta_update(eta, plan.r, alpha, S)?;
            d.vec_set(sigma, plan.leaving_j, leaving_sigma, S)?;
            d.vec_set(sigma, plan.q, 0.0, S)?;
            d.vec_set(cb, plan.r, plan.c_q, S)?;
            d.vec_set(lbb, plan.r, plan.lb_q, S)?;
            d.vec_set(ubb, plan.r, plan.ub_q, S)
        })?;
        self.basis_cols[plan.r] = plan.q;
        let old_alpha = self.alpha.take();
        self.free_opt(old_alpha);
        let old_ar = self.alpha_r.take();
        self.free_opt(old_ar);
        Ok(())
    }

    fn basic_values(&mut self) -> LpResult<Vec<f64>> {
        let xb = self.req(self.xb)?;
        self.with_dev(|d| d.download_vector(xb, S))
    }

    fn basic_entry(&mut self, i: usize) -> LpResult<f64> {
        let xb = self.req(self.xb)?;
        self.with_dev(|d| d.vec_get(xb, i, S))
    }

    fn eta_count(&self) -> usize {
        match self.eta {
            Some(e) => self.accel.with(|d| d.sparse_eta_count(e)).unwrap_or(0),
            None => 0,
        }
    }

    fn primal_infeas(&mut self, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let xb = self.req(self.xb)?;
        let lbb = self.req(self.lbb)?;
        let ubb = self.req(self.ubb)?;
        self.with_dev(|d| d.primal_infeas_argmax(xb, lbb, ubb, tol, S))
    }

    fn btran_row(&mut self, r: usize) -> LpResult<()> {
        let eta = self.eta()?;
        let a = self.a;
        let m = self.m;
        let ar = self.with_dev(|d| {
            let e = d.alloc_unit_vector(m, r, S)?;
            let rho = d.sparse_eta_btran(eta, e, S)?;
            let ar = d.spmv_transposed(a, rho, S)?;
            d.free_vector(e)?;
            d.free_vector(rho)?;
            Ok(ar)
        })?;
        let old = self.alpha_r.replace(ar);
        self.free_opt(old);
        Ok(())
    }

    fn dual_ratio(&mut self, leaving_below: bool, tol: f64) -> LpResult<Option<(usize, f64)>> {
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let sigma = self.req(self.sigma)?;
        let ar = self.req(self.alpha_r)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.sparse_eta_btran(eta, cb, S)?;
            let dvec = d.pricing_sparse(a, y, c, S)?;
            let best = d.dual_ratio_argmin(dvec, ar, sigma, leaving_below, tol, S)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            Ok(best)
        })
    }

    fn alpha_r_entry(&mut self, j: usize) -> LpResult<f64> {
        let ar = self.req(self.alpha_r)?;
        self.with_dev(|d| d.vec_get(ar, j, S))
    }

    fn btran_row_host(&mut self, r: usize) -> LpResult<Vec<f64>> {
        self.btran_row(r)?;
        let ar = self.req(self.alpha_r)?;
        self.with_dev(|d| d.download_vector(ar, S))
    }

    fn dual_prices(&mut self) -> LpResult<Vec<f64>> {
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        self.with_dev(|d| {
            let y = d.sparse_eta_btran(eta, cb, S)?;
            let out = d.download_vector(y, S)?;
            d.free_vector(y)?;
            Ok(out)
        })
    }

    fn price_devex(&mut self) -> LpResult<Option<(usize, f64)>> {
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let sigma = self.req(self.sigma)?;
        let gamma = self.req(self.gamma)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.sparse_eta_btran(eta, cb, S)?;
            let dvec = d.pricing_sparse(a, y, c, S)?;
            let best = d.devex_argmax(dvec, sigma, gamma, 0.0, S)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            Ok(best)
        })
    }

    fn devex_update(&mut self, q: usize, leaving_j: usize) -> LpResult<()> {
        let ar = self.req(self.alpha_r)?;
        let gamma = self.req(self.gamma)?;
        let (arq, gamma_q) = self.with_dev(|d| {
            let arq = d.vec_get(ar, q, S)?;
            let gq = d.vec_get(gamma, q, S)?;
            Ok((arq, gq))
        })?;
        if arq.abs() < 1e-12 {
            return Err(LpError::Shape("devex update with zero pivot".into()));
        }
        self.with_dev(|d| {
            d.devex_weight_update(gamma, ar, arq, gamma_q, S)?;
            d.vec_set(gamma, leaving_j, (gamma_q / (arq * arq)).max(1.0), S)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use crate::problem::StandardLp;
    use crate::solver::{LpConfig, LpSolver, LpStatus};
    use gmip_problems::catalog::{textbook_lp, textbook_mip};
    use gmip_problems::generators::{set_cover, unit_commitment};

    fn sparse_solver(std: StandardLp, accel: Accel) -> LpSolver<SparseDeviceEngine> {
        LpSolver::new(std, LpConfig::standard(), |a| {
            SparseDeviceEngine::new(accel, a).expect("sparse upload")
        })
    }

    #[test]
    fn sparse_engine_solves_textbook_lp() {
        let accel = Accel::gpu(1);
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut solver = sparse_solver(std, accel.clone());
        let sol = solver.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 21.0).abs() < 1e-7);
        // All matrix kernels were sparse-path: flops charged at the sparse
        // rate show up in the ledger.
        assert!(accel.stats().kernel_launches > 0);
    }

    #[test]
    fn sparse_matches_host_pivot_for_pivot() {
        for (name, mip) in [
            ("setcover", set_cover(8, 8, 0.3, 5)),
            ("ucommit", unit_commitment(2, 2, 5)),
            ("textbook", textbook_mip()),
        ] {
            let std = StandardLp::from_instance(&mip, &[]);
            let mut host = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
                HostEngine::new(a.clone())
            });
            let hsol = host.solve().unwrap();
            let mut sparse = sparse_solver(std, Accel::gpu(1));
            let ssol = sparse.solve().unwrap();
            assert_eq!(hsol.status, ssol.status, "{name}");
            if hsol.status == LpStatus::Optimal {
                assert!(
                    (hsol.objective - ssol.objective).abs() < 1e-6,
                    "{name}: host {} vs sparse {}",
                    hsol.objective,
                    ssol.objective
                );
                assert_eq!(
                    hsol.iterations, ssol.iterations,
                    "{name}: pivot paths differ"
                );
            }
        }
    }

    #[test]
    fn sparse_warm_resolve_and_cuts() {
        let accel = Accel::gpu(1);
        let std = StandardLp::from_instance(&textbook_mip(), &[]);
        let mut solver = sparse_solver(std, accel.clone());
        let base = solver.solve().unwrap();
        assert_eq!(base.status, LpStatus::Optimal);
        // Branch bound change + dual re-solve.
        solver
            .apply_node_bounds(&[crate::problem::BoundChange {
                var: 0,
                lb: 0.0,
                ub: 2.0,
            }])
            .unwrap();
        let warm = solver.resolve().unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        assert!(warm.objective < base.objective);
        // Cut flow.
        solver.apply_node_bounds(&[]).unwrap();
        solver.add_cut(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        let cutted = solver.resolve().unwrap();
        assert_eq!(cutted.status, LpStatus::Optimal);
        assert!(cutted.x[0] + cutted.x[1] <= 4.0 + 1e-7);
    }

    #[test]
    fn sparse_engine_frees_memory_on_drop() {
        let accel = Accel::gpu(1);
        {
            let std = StandardLp::from_instance(&textbook_lp(), &[]);
            let mut solver = sparse_solver(std, accel.clone());
            solver.solve().unwrap();
            assert!(accel.mem_used() > 0);
        }
        assert_eq!(accel.mem_used(), 0, "sparse engine leaked device memory");
    }

    #[test]
    fn sparse_transfers_scale_with_nnz_not_size() {
        // A very sparse instance: uploading CSR must move far fewer bytes
        // than the dense extended matrix would.
        let mip = set_cover(40, 40, 0.05, 9);
        let std = StandardLp::from_instance(&mip, &[]);
        let dense_bytes = (std.m() * (std.n() + std.m()) * 8) as u64;
        let accel = Accel::gpu(1);
        let _solver = sparse_solver(std, accel.clone());
        let uploaded = accel.stats().h2d_bytes;
        assert!(
            uploaded < dense_bytes / 2,
            "CSR upload {uploaded} B vs dense {dense_bytes} B"
        );
    }
}
