//! The primal bounded-variable revised simplex driver.
//!
//! Engine-agnostic: every numerical step goes through
//! [`SimplexEngine`], so the same driver runs on the host reference engine
//! and on the simulated device (Section 5.1's GPU-resident iteration).
//! Pricing is Dantzig (most negative σ-weighted reduced cost) with a Bland
//! fallback after a run of degenerate pivots; the basis is refactorized
//! every [`PrimalConfig::refactor_every`] eta updates.

use crate::basis::{Basis, VarStatus};
use crate::engine::{PivotPlan, ProblemView, SimplexEngine};
use crate::{LpError, LpResult};
use gmip_trace::{names, Event, MetricsRegistry, Track};

/// Entering-variable pricing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PricingRule {
    /// Most negative σ-weighted reduced cost. Cheapest per iteration; can
    /// stall on degenerate problems.
    #[default]
    Dantzig,
    /// Devex reference weights: maximizes `d²/γ`. One extra BTRAN row +
    /// weight-update kernel per pivot, typically far fewer iterations on
    /// degenerate LPs.
    Devex,
}

/// Tuning knobs of the primal driver.
#[derive(Debug, Clone)]
pub struct PrimalConfig {
    /// Reduced-cost tolerance: scores above `-price_tol` count as optimal.
    pub price_tol: f64,
    /// Pivot-element tolerance in ratio tests.
    pub ratio_tol: f64,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Refactorize after this many eta updates.
    pub refactor_every: usize,
    /// Switch to Bland's rule after this many consecutive degenerate pivots.
    pub bland_after: usize,
    /// Entering-variable pricing rule.
    pub pricing: PricingRule,
}

impl Default for PrimalConfig {
    fn default() -> Self {
        Self {
            price_tol: 1e-7,
            ratio_tol: 1e-9,
            max_iters: 20_000,
            refactor_every: 60,
            bland_after: 40,
            pricing: PricingRule::Dantzig,
        }
    }
}

/// Terminal outcome of a primal run (errors are separate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimalOutcome {
    /// No column prices out: the basis is optimal.
    Optimal,
    /// An improving direction has no blocking bound: the LP is unbounded.
    Unbounded {
        /// The entering column that witnessed unboundedness.
        entering: usize,
    },
}

/// Runs the primal simplex from `basis` (which must be primal feasible);
/// mutates `basis` in place and returns the outcome plus iteration count.
pub fn primal_solve<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &mut Basis,
    cfg: &PrimalConfig,
) -> LpResult<(PrimalOutcome, usize)> {
    primal_solve_traced(engine, view, basis, cfg, &mut MetricsRegistry::new())
}

/// [`primal_solve`] with instrumentation: iterations and mid-run
/// refactorizations are accumulated into `metrics` (`lp.*` keys), and each
/// refactorization lands as an instant on the LP trace track when the
/// engine has a simulated clock.
pub fn primal_solve_traced<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &mut Basis,
    cfg: &PrimalConfig,
    metrics: &mut MetricsRegistry,
) -> LpResult<(PrimalOutcome, usize)> {
    let out = primal_loop(engine, view, basis, cfg, metrics);
    match &out {
        Ok((_, iters)) => metrics.incr(names::LP_ITERATIONS, *iters as f64),
        Err(LpError::IterationLimit { iterations }) => {
            metrics.incr(names::LP_ITERATIONS, *iterations as f64)
        }
        Err(_) => {}
    }
    out
}

/// Marks a mid-run refactorization: bumps the counter and drops an instant
/// event on the LP track at the engine's simulated-time frontier.
pub(crate) fn note_refactorization<E: SimplexEngine>(engine: &E, metrics: &mut MetricsRegistry) {
    metrics.incr(names::LP_REFACTORIZATIONS, 1.0);
    if let Some(ts) = engine.sim_now_ns() {
        gmip_trace::record(|| Event::instant(Track::lp(), "refactorize", ts));
    }
}

fn primal_loop<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &mut Basis,
    cfg: &PrimalConfig,
    metrics: &mut MetricsRegistry,
) -> LpResult<(PrimalOutcome, usize)> {
    engine.install(view, basis)?;
    let mut degenerate_streak = 0usize;
    let mut bland = false;

    for iter in 0..cfg.max_iters {
        if engine.eta_count() >= cfg.refactor_every {
            engine.install(view, basis)?;
            note_refactorization(engine, metrics);
        }
        // --- entering variable ---
        let q = if bland {
            bland_entering(engine, view, basis, cfg.price_tol)?
        } else {
            let candidate = match cfg.pricing {
                PricingRule::Dantzig => engine.price()?,
                PricingRule::Devex => engine.price_devex()?,
            };
            match candidate {
                Some((j, score)) if score < -cfg.price_tol => Some(j),
                _ => None,
            }
        };
        let Some(q) = q else {
            return Ok((PrimalOutcome::Optimal, iter));
        };
        let dir = match basis.status[q] {
            VarStatus::AtLower => 1.0,
            VarStatus::AtUpper => -1.0,
            VarStatus::Basic(_) => {
                return Err(LpError::Shape(format!("pricing proposed basic column {q}")))
            }
        };

        // --- ratio test (basic blocking vs. bound flip) ---
        engine.ftran_column(q)?;
        let basic_limit = engine.ratio_test(dir, cfg.ratio_tol)?;
        let flip_limit = view.ub[q] - view.lb[q]; // may be +inf

        let t_basic = basic_limit.map(|(_, t, _)| t).unwrap_or(f64::INFINITY);
        if !t_basic.is_finite() && !flip_limit.is_finite() {
            return Ok((PrimalOutcome::Unbounded { entering: q }, iter));
        }

        if flip_limit <= t_basic {
            // Bound flip: the entering variable runs to its opposite bound
            // without any basis change.
            let new_status = match basis.status[q] {
                VarStatus::AtLower => VarStatus::AtUpper,
                VarStatus::AtUpper => VarStatus::AtLower,
                VarStatus::Basic(_) => unreachable!("checked above"),
            };
            engine.apply_flip(q, dir, flip_limit, new_status.sigma())?;
            basis.status[q] = new_status;
            track_degeneracy(flip_limit, &mut degenerate_streak, &mut bland, cfg);
        } else {
            let (r, t, leaves_upper) = basic_limit.expect("t_basic finite implies Some");
            // Devex weights need the leaving row of the OLD basis.
            if cfg.pricing == PricingRule::Devex && !bland {
                engine.btran_row(r)?;
                engine.devex_update(q, basis.cols[r])?;
            }
            let entering_val = if dir > 0.0 {
                view.lb[q] + t
            } else {
                view.ub[q] - t
            };
            let leaving_j = basis.cols[r];
            let leaving_to = if leaves_upper {
                VarStatus::AtUpper
            } else {
                VarStatus::AtLower
            };
            engine.apply_pivot(&PivotPlan {
                r,
                q,
                leaving_j,
                dir,
                t,
                entering_val,
                leaving_sigma: leaving_to.sigma(),
                c_q: view.c[q],
                lb_q: view.lb[q],
                ub_q: view.ub[q],
            })?;
            basis.pivot(r, q, leaving_to);
            track_degeneracy(t, &mut degenerate_streak, &mut bland, cfg);
        }
    }
    Err(LpError::IterationLimit {
        iterations: cfg.max_iters,
    })
}

fn track_degeneracy(t: f64, streak: &mut usize, bland: &mut bool, cfg: &PrimalConfig) {
    if t.abs() < 1e-9 {
        *streak += 1;
        if *streak >= cfg.bland_after {
            *bland = true;
        }
    } else {
        *streak = 0;
        *bland = false;
    }
}

/// Bland's rule: the lowest-index eligible improving column. Requires the
/// full reduced-cost vector on the host (an honest transfer on the device
/// engine) but guarantees termination under degeneracy.
fn bland_entering<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &Basis,
    tol: f64,
) -> LpResult<Option<usize>> {
    let d = engine.reduced_costs_host()?;
    for j in 0..d.len() {
        if view.lb[j] == view.ub[j] {
            continue; // fixed: never eligible
        }
        match basis.status[j] {
            VarStatus::Basic(_) => continue,
            VarStatus::AtLower if d[j] > tol => return Ok(Some(j)),
            VarStatus::AtUpper if d[j] < -tol => return Ok(Some(j)),
            _ => {}
        }
    }
    Ok(None)
}

/// Assembles the full primal point from a basis and the engine's basic
/// values: nonbasic variables sit at their status bound.
pub fn assemble_point<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &Basis,
) -> LpResult<Vec<f64>> {
    let xb = engine.basic_values()?;
    let mut x = vec![0.0; basis.n()];
    for (j, s) in basis.status.iter().enumerate() {
        x[j] = match s {
            VarStatus::Basic(i) => xb[*i],
            VarStatus::AtLower => view.lb[j],
            VarStatus::AtUpper => view.ub[j],
        };
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use gmip_linalg::DenseMatrix;

    /// max 3x0 + 2x1 s.t. x0 + x2 = 4, x1 + x3 = 3, x0 ≤ 4 via row, x1 ≤ 3.
    /// Optimum: x0 = 4, x1 = 3, obj = 18.
    #[test]
    fn separable_problem_reaches_both_bounds() {
        let a =
            DenseMatrix::from_rows(&[vec![1.0, 0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]]).unwrap();
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![2, 3], 4);
        let c = [3.0, 2.0, 0.0, 0.0];
        let lb = [0.0; 4];
        let ub = [f64::INFINITY; 4];
        let b = [4.0, 3.0];
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        let (outcome, iters) =
            primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        assert_eq!(outcome, PrimalOutcome::Optimal);
        assert!(iters <= 4);
        let x = assemble_point(&mut engine, view, &basis).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    /// The textbook LP: max 5x + 4y, 6x + 4y ≤ 24, x + 2y ≤ 6 → (3, 1.5), 21.
    #[test]
    fn textbook_lp_optimum() {
        let a =
            DenseMatrix::from_rows(&[vec![6.0, 4.0, 1.0, 0.0], vec![1.0, 2.0, 0.0, 1.0]]).unwrap();
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![2, 3], 4);
        let c = [5.0, 4.0, 0.0, 0.0];
        let lb = [0.0; 4];
        let ub = [f64::INFINITY; 4];
        let b = [24.0, 6.0];
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        let (outcome, _) =
            primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        assert_eq!(outcome, PrimalOutcome::Optimal);
        let x = assemble_point(&mut engine, view, &basis).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-9, "x = {x:?}");
        assert!((x[1] - 1.5).abs() < 1e-9);
        let obj: f64 = c.iter().zip(&x).map(|(ci, xi)| ci * xi).sum();
        assert!((obj - 21.0).abs() < 1e-9);
    }

    /// Unboundedness: max x with x − s = 0 (s free upward).
    #[test]
    fn unbounded_detected() {
        let a = DenseMatrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![1], 2);
        let c = [1.0, 0.0];
        let lb = [0.0, 0.0];
        let ub = [f64::INFINITY, f64::INFINITY];
        let b = [0.0];
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        let (outcome, _) =
            primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        assert!(matches!(outcome, PrimalOutcome::Unbounded { entering: 0 }));
    }

    /// Bounded variables force a bound flip: max x0 + x1 with x0 ≤ 1 (ub),
    /// x1 slack-bounded. x0 has no matrix interaction that blocks it below
    /// its own upper bound, so it flips to ub without a pivot.
    #[test]
    fn bound_flip_used() {
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0, 1.0]]).unwrap();
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![2], 3);
        let c = [1.0, 1.0, 0.0];
        let lb = [0.0, 0.0, 0.0];
        let ub = [1.0, f64::INFINITY, f64::INFINITY];
        let b = [5.0];
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        let (outcome, _) =
            primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        assert_eq!(outcome, PrimalOutcome::Optimal);
        assert_eq!(basis.status[0], VarStatus::AtUpper);
        let x = assemble_point(&mut engine, view, &basis).unwrap();
        assert_eq!(x[0], 1.0);
        assert!((x[1] - 5.0).abs() < 1e-9);
    }

    /// Fixed variables (lb == ub) are never selected for entering.
    #[test]
    fn fixed_variables_excluded() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![1], 2);
        let c = [100.0, 0.0]; // hugely attractive but fixed
        let lb = [2.0, 0.0];
        let ub = [2.0, f64::INFINITY];
        let b = [10.0];
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        let (outcome, iters) =
            primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        assert_eq!(outcome, PrimalOutcome::Optimal);
        assert_eq!(iters, 0);
        let x = assemble_point(&mut engine, view, &basis).unwrap();
        assert_eq!(x[0], 2.0);
        assert!((x[1] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_limit_enforced() {
        let a =
            DenseMatrix::from_rows(&[vec![6.0, 4.0, 1.0, 0.0], vec![1.0, 2.0, 0.0, 1.0]]).unwrap();
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![2, 3], 4);
        let c = [5.0, 4.0, 0.0, 0.0];
        let lb = [0.0; 4];
        let ub = [f64::INFINITY; 4];
        let b = [24.0, 6.0];
        let cfg = PrimalConfig {
            max_iters: 1,
            ..Default::default()
        };
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        assert!(matches!(
            primal_solve(&mut engine, view, &mut basis, &cfg),
            Err(LpError::IterationLimit { iterations: 1 })
        ));
    }
}
