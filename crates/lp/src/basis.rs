//! Basis bookkeeping for the bounded-variable revised simplex.

/// Status of one variable relative to the current basis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarStatus {
    /// Basic, sitting in the given basis row (position).
    Basic(usize),
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
}

impl VarStatus {
    /// The ±1 status weight used by the device pricing kernel: −1 at lower,
    /// +1 at upper, 0 when basic (excluded from pricing).
    pub fn sigma(self) -> f64 {
        match self {
            VarStatus::Basic(_) => 0.0,
            VarStatus::AtLower => -1.0,
            VarStatus::AtUpper => 1.0,
        }
    }
}

/// A complete basis description: which column occupies each basis row, and
/// every variable's status. This is the warm-start snapshot passed between
/// tree nodes (Section 5.3) and across cut rounds (Section 5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Basis {
    /// `cols[i]` = column index basic in row `i`; length `m`.
    pub cols: Vec<usize>,
    /// Per-variable status; length `n`.
    pub status: Vec<VarStatus>,
}

impl Basis {
    /// Builds a basis with the given basic columns; everything else starts
    /// at its lower bound.
    pub fn with_basic_cols(cols: Vec<usize>, n: usize) -> Self {
        let mut status = vec![VarStatus::AtLower; n];
        for (i, &j) in cols.iter().enumerate() {
            status[j] = VarStatus::Basic(i);
        }
        Self { cols, status }
    }

    /// Number of basic variables (rows).
    pub fn m(&self) -> usize {
        self.cols.len()
    }

    /// Number of variables tracked.
    pub fn n(&self) -> usize {
        self.status.len()
    }

    /// The nonbasic value of variable `j` under bounds `lb`/`ub`
    /// (panics if called on a basic variable — driver bug).
    pub fn nonbasic_value(&self, j: usize, lb: &[f64], ub: &[f64]) -> f64 {
        match self.status[j] {
            VarStatus::AtLower => lb[j],
            VarStatus::AtUpper => ub[j],
            VarStatus::Basic(_) => panic!("nonbasic_value on basic variable {j}"),
        }
    }

    /// Applies a pivot: column `q` becomes basic in row `r`; the previous
    /// occupant moves to the given nonbasic status.
    pub fn pivot(&mut self, r: usize, q: usize, leaving_to: VarStatus) {
        debug_assert!(!matches!(leaving_to, VarStatus::Basic(_)));
        let leaving = self.cols[r];
        self.status[leaving] = leaving_to;
        self.cols[r] = q;
        self.status[q] = VarStatus::Basic(r);
    }

    /// Extends the basis for `k` appended cut rows whose slack columns start
    /// at `first_slack_col`: each new slack becomes basic in its own row
    /// (preserving dual feasibility — the Section 5.2 warm-start pattern).
    pub fn extend_for_cuts(&mut self, first_slack_col: usize, k: usize) {
        for t in 0..k {
            let row = self.cols.len();
            let col = first_slack_col + t;
            if col >= self.status.len() {
                self.status.resize(col + 1, VarStatus::AtLower);
            }
            self.cols.push(col);
            self.status[col] = VarStatus::Basic(row);
        }
    }

    /// Internal consistency check: every basic column's status points back
    /// at its row, and nonbasic statuses are not referenced by `cols`.
    pub fn is_consistent(&self) -> bool {
        for (i, &j) in self.cols.iter().enumerate() {
            if j >= self.status.len() || self.status[j] != VarStatus::Basic(i) {
                return false;
            }
        }
        let basics = self
            .status
            .iter()
            .filter(|s| matches!(s, VarStatus::Basic(_)))
            .count();
        basics == self.cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_consistency() {
        let b = Basis::with_basic_cols(vec![3, 4], 5);
        assert_eq!(b.m(), 2);
        assert_eq!(b.n(), 5);
        assert!(b.is_consistent());
        assert_eq!(b.status[3], VarStatus::Basic(0));
        assert_eq!(b.status[0], VarStatus::AtLower);
    }

    #[test]
    fn sigma_weights() {
        assert_eq!(VarStatus::AtLower.sigma(), -1.0);
        assert_eq!(VarStatus::AtUpper.sigma(), 1.0);
        assert_eq!(VarStatus::Basic(0).sigma(), 0.0);
    }

    #[test]
    fn pivot_swaps_roles() {
        let mut b = Basis::with_basic_cols(vec![3, 4], 5);
        b.pivot(0, 1, VarStatus::AtUpper);
        assert_eq!(b.cols[0], 1);
        assert_eq!(b.status[1], VarStatus::Basic(0));
        assert_eq!(b.status[3], VarStatus::AtUpper);
        assert!(b.is_consistent());
    }

    #[test]
    fn nonbasic_value_reads_bounds() {
        let mut b = Basis::with_basic_cols(vec![2], 3);
        b.status[1] = VarStatus::AtUpper;
        let lb = [0.0, 0.0, 0.0];
        let ub = [5.0, 7.0, 9.0];
        assert_eq!(b.nonbasic_value(0, &lb, &ub), 0.0);
        assert_eq!(b.nonbasic_value(1, &lb, &ub), 7.0);
    }

    #[test]
    #[should_panic]
    fn nonbasic_value_panics_on_basic() {
        let b = Basis::with_basic_cols(vec![0], 2);
        b.nonbasic_value(0, &[0.0, 0.0], &[1.0, 1.0]);
    }

    #[test]
    fn cut_extension_keeps_consistency() {
        let mut b = Basis::with_basic_cols(vec![0, 1], 4);
        b.extend_for_cuts(4, 2);
        assert_eq!(b.m(), 4);
        assert_eq!(b.n(), 6);
        assert_eq!(b.cols[2], 4);
        assert_eq!(b.cols[3], 5);
        assert!(b.is_consistent());
    }

    #[test]
    fn inconsistency_detected() {
        let mut b = Basis::with_basic_cols(vec![0], 2);
        b.status[0] = VarStatus::AtLower; // corrupt
        assert!(!b.is_consistent());
    }
}
