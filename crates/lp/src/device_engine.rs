//! The accelerator-resident simplex engine.
//!
//! Implements [`SimplexEngine`] with every numerical step executed as a
//! simulated device kernel on a [`gmip_gpu::Accel`]. The execution model is
//! Section 5.1 of the paper:
//!
//! * the constraint matrix is uploaded **once** at engine construction and
//!   never re-transferred; cuts extend it in place (Section 5.2);
//! * basis assembly ([`GpuDevice::gather_columns`]), factorization, eta
//!   updates, FTRAN/BTRAN, pricing, and both ratio tests run on the device;
//! * per iteration, only O(1) scalars (argmin results, pivot values) cross
//!   the link — "rank-1 updates and resolving the updated matrix repeatedly
//!   with no data transfer from host to device or vice versa";
//! * per basis **install** (node start, refactorization), only small
//!   vectors (`c`, `b`, statuses, basic bounds) are uploaded.
//!
//! Running the same driver over [`crate::engine::HostEngine`] and this
//! engine yields identical pivots; the difference is the simulated cost
//! ledger, which the experiments read.

use crate::basis::{Basis, VarStatus};
use crate::engine::{PivotPlan, ProblemView, SimplexEngine};
use crate::{LpError, LpResult};
use gmip_gpu::{Accel, EtaHandle, GpuDevice, MatrixHandle, StreamId, VectorHandle, DEFAULT_STREAM};
use gmip_linalg::DenseMatrix;

/// Simplex engine whose numerical state lives on a simulated accelerator.
#[derive(Debug)]
pub struct DeviceEngine {
    accel: Accel,
    a: MatrixHandle,
    stream: StreamId,
    m: usize,
    n: usize,
    // Host copies needed for install-time assembly and fixed-column checks.
    lb: Vec<f64>,
    ub: Vec<f64>,
    // Device-resident iteration state.
    c: Option<VectorHandle>,
    b: Option<VectorHandle>,
    sigma: Option<VectorHandle>,
    cb: Option<VectorHandle>,
    lbb: Option<VectorHandle>,
    ubb: Option<VectorHandle>,
    xb: Option<VectorHandle>,
    eta: Option<EtaHandle>,
    gamma: Option<VectorHandle>,
    alpha: Option<VectorHandle>,
    alpha_r: Option<VectorHandle>,
}

impl DeviceEngine {
    /// Uploads the extended matrix to the accelerator and builds an engine
    /// on the default stream.
    pub fn new(accel: Accel, a: &DenseMatrix) -> LpResult<Self> {
        Self::new_on_stream(accel, a, DEFAULT_STREAM)
    }

    /// Uploads the matrix and binds every subsequent operation to `stream`
    /// — the Section 5.5 mechanism that lets several engines share one
    /// device with overlapping execution.
    pub fn new_on_stream(accel: Accel, a: &DenseMatrix, stream: StreamId) -> LpResult<Self> {
        let handle = accel.with(|d| d.upload_matrix(a, stream))?;
        Ok(Self {
            accel,
            a: handle,
            stream,
            m: a.rows(),
            n: a.cols(),
            lb: Vec::new(),
            ub: Vec::new(),
            c: None,
            b: None,
            sigma: None,
            cb: None,
            lbb: None,
            ubb: None,
            xb: None,
            eta: None,
            gamma: None,
            alpha: None,
            alpha_r: None,
        })
    }

    /// The accelerator this engine runs on (for stats queries).
    pub fn accel(&self) -> &Accel {
        &self.accel
    }

    fn with_dev<R>(
        &self,
        f: impl FnOnce(&mut GpuDevice) -> Result<R, gmip_gpu::GpuError>,
    ) -> LpResult<R> {
        self.accel.with(f).map_err(LpError::from)
    }

    fn free_opt(&mut self, h: Option<VectorHandle>) {
        if let Some(h) = h {
            // Ignore failures: a handle could be gone only via engine bugs,
            // and freeing is best-effort cleanup.
            let _ = self.accel.with(|d| d.free_vector(h));
        }
    }

    fn clear_iteration_state(&mut self) {
        let handles = [
            self.c.take(),
            self.b.take(),
            self.sigma.take(),
            self.cb.take(),
            self.lbb.take(),
            self.ubb.take(),
            self.xb.take(),
            self.gamma.take(),
            self.alpha.take(),
            self.alpha_r.take(),
        ];
        for h in handles {
            self.free_opt(h);
        }
        if let Some(e) = self.eta.take() {
            let _ = self.accel.with(|d| d.free_eta(e));
        }
    }

    fn eta(&self) -> LpResult<EtaHandle> {
        self.eta.ok_or(LpError::NotInstalled)
    }

    fn req(&self, h: Option<VectorHandle>) -> LpResult<VectorHandle> {
        h.ok_or(LpError::NotInstalled)
    }
}

impl Drop for DeviceEngine {
    fn drop(&mut self) {
        self.clear_iteration_state();
        let _ = self.accel.with(|d| d.free_matrix(self.a));
    }
}

impl SimplexEngine for DeviceEngine {
    fn m(&self) -> usize {
        self.m
    }

    fn sim_now_ns(&self) -> Option<f64> {
        Some(self.accel.elapsed_ns())
    }

    fn n(&self) -> usize {
        self.n
    }

    fn install(&mut self, view: ProblemView<'_>, basis: &Basis) -> LpResult<()> {
        let st = self.stream;
        if view.c.len() != self.n || view.b.len() != self.m {
            return Err(LpError::Shape(format!(
                "install: engine {}x{}, view c={} b={}",
                self.m,
                self.n,
                view.c.len(),
                view.b.len()
            )));
        }
        self.clear_iteration_state();
        self.lb = view.lb.to_vec();
        self.ub = view.ub.to_vec();

        // Host-side assembly of the small per-install vectors.
        let mut sigma = vec![0.0; self.n];
        let mut x_nb = vec![0.0; self.n];
        for (j, s) in basis.status.iter().enumerate() {
            match s {
                VarStatus::Basic(_) => {}
                VarStatus::AtLower => {
                    x_nb[j] = view.lb[j];
                    sigma[j] = if view.lb[j] == view.ub[j] { 0.0 } else { -1.0 };
                }
                VarStatus::AtUpper => {
                    x_nb[j] = view.ub[j];
                    sigma[j] = if view.lb[j] == view.ub[j] { 0.0 } else { 1.0 };
                }
            }
            if !matches!(s, VarStatus::Basic(_)) && !x_nb[j].is_finite() {
                return Err(LpError::FreeVariable(j));
            }
        }
        let cb: Vec<f64> = basis.cols.iter().map(|&j| view.c[j]).collect();
        let lbb: Vec<f64> = basis.cols.iter().map(|&j| view.lb[j]).collect();
        let ubb: Vec<f64> = basis.cols.iter().map(|&j| view.ub[j]).collect();

        let a = self.a;
        let cols = basis.cols.clone();
        let (c_h, b_h, sigma_h, cb_h, lbb_h, ubb_h, eta_h, xb_h) = self.with_dev(|d| {
            let c_h = d.upload_vector(view.c, st)?;
            let b_h = d.upload_vector(view.b, st)?;
            let sigma_h = d.upload_vector(&sigma, st)?;
            let cb_h = d.upload_vector(&cb, st)?;
            let lbb_h = d.upload_vector(&lbb, st)?;
            let ubb_h = d.upload_vector(&ubb, st)?;
            // Residual w = b − A x_nb, fully on device.
            let xnb_h = d.upload_vector(&x_nb, st)?;
            let w = d.residual(b_h, a, xnb_h, st)?;
            // Basis gather + factorization, on device.
            let bmat = d.gather_columns(a, &cols, st)?;
            let eta_h = d.eta_factor(bmat, st)?;
            d.free_matrix(bmat)?;
            let xb_h = d.eta_ftran(eta_h, w, st)?;
            d.free_vector(w)?;
            d.free_vector(xnb_h)?;
            Ok((c_h, b_h, sigma_h, cb_h, lbb_h, ubb_h, eta_h, xb_h))
        })?;
        self.c = Some(c_h);
        self.b = Some(b_h);
        self.sigma = Some(sigma_h);
        self.cb = Some(cb_h);
        self.lbb = Some(lbb_h);
        self.ubb = Some(ubb_h);
        self.eta = Some(eta_h);
        self.xb = Some(xb_h);
        let ones = vec![1.0; self.n];
        let gst = self.stream;
        let g = self.with_dev(|d| d.upload_vector(&ones, gst))?;
        self.gamma = Some(g);
        Ok(())
    }

    fn append_cut(&mut self, row: &[f64], col: &[f64]) -> LpResult<()> {
        let st = self.stream;
        let a = self.a;
        self.with_dev(|d| {
            d.append_row(a, row, st)?;
            d.append_column(a, col, st)
        })?;
        self.m += 1;
        self.n += 1;
        Ok(())
    }

    fn price(&mut self) -> LpResult<Option<(usize, f64)>> {
        let st = self.stream;
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let sigma = self.req(self.sigma)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.eta_btran(eta, cb, st)?;
            let dvec = d.pricing(a, y, c, st)?;
            let score = d.vec_mul(dvec, sigma, st)?;
            let best = d.argmin_masked(score, sigma, st)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            d.free_vector(score)?;
            Ok(best)
        })
    }

    fn reduced_costs_host(&mut self) -> LpResult<Vec<f64>> {
        let st = self.stream;
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.eta_btran(eta, cb, st)?;
            let dvec = d.pricing(a, y, c, st)?;
            // Honest full-vector D2H transfer (the Bland fallback's cost).
            let out = d.download_vector(dvec, st)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            Ok(out)
        })
    }

    fn ftran_column(&mut self, q: usize) -> LpResult<()> {
        let st = self.stream;
        let eta = self.eta()?;
        let a = self.a;
        let alpha = self.with_dev(|d| {
            let col = d.extract_column(a, q, st)?;
            let alpha = d.eta_ftran(eta, col, st)?;
            d.free_vector(col)?;
            Ok(alpha)
        })?;
        let old = self.alpha.replace(alpha);
        self.free_opt(old);
        Ok(())
    }

    fn alpha_entry(&mut self, i: usize) -> LpResult<f64> {
        let st = self.stream;
        let alpha = self.req(self.alpha)?;
        self.with_dev(|d| d.vec_get(alpha, i, st))
    }

    fn ratio_test(&mut self, dir: f64, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let st = self.stream;
        let xb = self.req(self.xb)?;
        let alpha = self.req(self.alpha)?;
        let lbb = self.req(self.lbb)?;
        let ubb = self.req(self.ubb)?;
        self.with_dev(|d| d.ratio_test_bounded(xb, alpha, lbb, ubb, dir, tol, st))
    }

    fn apply_flip(&mut self, q: usize, dir: f64, t: f64, new_sigma: f64) -> LpResult<()> {
        let st = self.stream;
        let xb = self.req(self.xb)?;
        let alpha = self.req(self.alpha)?;
        let sigma = self.req(self.sigma)?;
        self.with_dev(|d| {
            d.basic_step(xb, alpha, dir, t, None, st)?;
            d.vec_set(sigma, q, new_sigma, st)
        })
    }

    fn apply_pivot(&mut self, plan: &PivotPlan) -> LpResult<()> {
        let st = self.stream;
        let xb = self.req(self.xb)?;
        let alpha = self.req(self.alpha)?;
        let sigma = self.req(self.sigma)?;
        let cb = self.req(self.cb)?;
        let lbb = self.req(self.lbb)?;
        let ubb = self.req(self.ubb)?;
        let eta = self.eta()?;
        let leaving_sigma = if self.lb[plan.leaving_j] == self.ub[plan.leaving_j] {
            0.0
        } else {
            plan.leaving_sigma
        };
        self.with_dev(|d| {
            d.basic_step(
                xb,
                alpha,
                plan.dir,
                plan.t,
                Some((plan.r, plan.entering_val)),
                st,
            )?;
            d.eta_update(eta, plan.r, alpha, st)?;
            d.vec_set(sigma, plan.leaving_j, leaving_sigma, st)?;
            d.vec_set(sigma, plan.q, 0.0, st)?;
            d.vec_set(cb, plan.r, plan.c_q, st)?;
            d.vec_set(lbb, plan.r, plan.lb_q, st)?;
            d.vec_set(ubb, plan.r, plan.ub_q, st)
        })?;
        let old_alpha = self.alpha.take();
        self.free_opt(old_alpha);
        let old_ar = self.alpha_r.take();
        self.free_opt(old_ar);
        Ok(())
    }

    fn basic_values(&mut self) -> LpResult<Vec<f64>> {
        let st = self.stream;
        let xb = self.req(self.xb)?;
        self.with_dev(|d| d.download_vector(xb, st))
    }

    fn basic_entry(&mut self, i: usize) -> LpResult<f64> {
        let st = self.stream;
        let xb = self.req(self.xb)?;
        self.with_dev(|d| d.vec_get(xb, i, st))
    }

    fn eta_count(&self) -> usize {
        match self.eta {
            Some(e) => self.accel.with(|d| d.eta_count(e)).unwrap_or(0),
            None => 0,
        }
    }

    fn primal_infeas(&mut self, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let st = self.stream;
        let xb = self.req(self.xb)?;
        let lbb = self.req(self.lbb)?;
        let ubb = self.req(self.ubb)?;
        self.with_dev(|d| d.primal_infeas_argmax(xb, lbb, ubb, tol, st))
    }

    fn btran_row(&mut self, r: usize) -> LpResult<()> {
        let st = self.stream;
        let eta = self.eta()?;
        let a = self.a;
        let m = self.m;
        let ar = self.with_dev(|d| {
            let e = d.alloc_unit_vector(m, r, st)?;
            let rho = d.eta_btran(eta, e, st)?;
            let ar = d.gemv_transposed(a, rho, st)?;
            d.free_vector(e)?;
            d.free_vector(rho)?;
            Ok(ar)
        })?;
        let old = self.alpha_r.replace(ar);
        self.free_opt(old);
        Ok(())
    }

    fn dual_ratio(&mut self, leaving_below: bool, tol: f64) -> LpResult<Option<(usize, f64)>> {
        let st = self.stream;
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let sigma = self.req(self.sigma)?;
        let ar = self.req(self.alpha_r)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.eta_btran(eta, cb, st)?;
            let dvec = d.pricing(a, y, c, st)?;
            let best = d.dual_ratio_argmin(dvec, ar, sigma, leaving_below, tol, st)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            Ok(best)
        })
    }

    fn alpha_r_entry(&mut self, j: usize) -> LpResult<f64> {
        let st = self.stream;
        let ar = self.req(self.alpha_r)?;
        self.with_dev(|d| d.vec_get(ar, j, st))
    }

    fn btran_row_host(&mut self, r: usize) -> LpResult<Vec<f64>> {
        let st = self.stream;
        self.btran_row(r)?;
        let ar = self.req(self.alpha_r)?;
        // The Section 5.2 device→host leg: the tableau row crosses the link
        // so the CPU-side cut generator can read it.
        self.with_dev(|d| d.download_vector(ar, st))
    }

    fn dual_prices(&mut self) -> LpResult<Vec<f64>> {
        let st = self.stream;
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        self.with_dev(|d| {
            let y = d.eta_btran(eta, cb, st)?;
            let out = d.download_vector(y, st)?;
            d.free_vector(y)?;
            Ok(out)
        })
    }

    fn price_devex(&mut self) -> LpResult<Option<(usize, f64)>> {
        let st = self.stream;
        let eta = self.eta()?;
        let cb = self.req(self.cb)?;
        let c = self.req(self.c)?;
        let sigma = self.req(self.sigma)?;
        let gamma = self.req(self.gamma)?;
        let a = self.a;
        self.with_dev(|d| {
            let y = d.eta_btran(eta, cb, st)?;
            let dvec = d.pricing(a, y, c, st)?;
            let best = d.devex_argmax(dvec, sigma, gamma, 0.0, st)?;
            d.free_vector(y)?;
            d.free_vector(dvec)?;
            Ok(best)
        })
    }

    fn devex_update(&mut self, q: usize, leaving_j: usize) -> LpResult<()> {
        let st = self.stream;
        let ar = self.req(self.alpha_r)?;
        let gamma = self.req(self.gamma)?;
        let (arq, gamma_q) = self.with_dev(|d| {
            let arq = d.vec_get(ar, q, st)?;
            let gq = d.vec_get(gamma, q, st)?;
            Ok((arq, gq))
        })?;
        if arq.abs() < 1e-12 {
            return Err(LpError::Shape("devex update with zero pivot".into()));
        }
        self.with_dev(|d| {
            d.devex_weight_update(gamma, ar, arq, gamma_q, st)?;
            d.vec_set(gamma, leaving_j, (gamma_q / (arq * arq)).max(1.0), st)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use crate::problem::StandardLp;
    use crate::solver::{LpConfig, LpSolver, LpStatus};
    use gmip_problems::catalog::{textbook_lp, textbook_mip};
    use gmip_problems::generators::{knapsack, set_cover};

    fn device_solver(std: StandardLp, accel: Accel) -> LpSolver<DeviceEngine> {
        LpSolver::new(std, LpConfig::standard(), |a| {
            DeviceEngine::new(accel, a).expect("device upload")
        })
    }

    #[test]
    fn device_solves_textbook_lp() {
        let accel = Accel::gpu(1);
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut solver = device_solver(std, accel.clone());
        let sol = solver.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 21.0).abs() < 1e-7);
        // The matrix was uploaded exactly once; iteration traffic is
        // vector/scalar-sized.
        let stats = accel.stats();
        assert!(stats.h2d_transfers > 0);
        assert!(stats.kernel_launches > 0);
    }

    #[test]
    fn device_matches_host_on_instances() {
        for (name, mip) in [
            ("knapsack", knapsack(10, 0.5, 3)),
            ("setcover", set_cover(6, 6, 0.4, 3)),
            ("textbook", textbook_mip()),
        ] {
            let std = StandardLp::from_instance(&mip, &[]);
            let mut host = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
                HostEngine::new(a.clone())
            });
            let hsol = host.solve().unwrap();
            let mut dev = device_solver(std, Accel::gpu(1));
            let dsol = dev.solve().unwrap();
            assert_eq!(hsol.status, dsol.status, "{name}");
            if hsol.status == LpStatus::Optimal {
                assert!(
                    (hsol.objective - dsol.objective).abs() < 1e-6,
                    "{name}: host {} vs device {}",
                    hsol.objective,
                    dsol.objective
                );
                assert_eq!(
                    hsol.iterations, dsol.iterations,
                    "{name}: pivot paths differ"
                );
            }
        }
    }

    #[test]
    fn matrix_uploaded_once_across_warm_resolves() {
        let accel = Accel::gpu(1);
        let std = StandardLp::from_instance(&textbook_mip(), &[]);
        let mut solver = device_solver(std, accel.clone());
        solver.solve().unwrap();
        let bytes_after_solve = accel.stats().h2d_bytes;
        // Several warm re-solves with different branch bounds.
        for ub0 in [3.0, 2.0, 1.0] {
            solver
                .apply_node_bounds(&[crate::problem::BoundChange {
                    var: 0,
                    lb: 0.0,
                    ub: ub0,
                }])
                .unwrap();
            let sol = solver.resolve().unwrap();
            assert_eq!(sol.status, LpStatus::Optimal);
        }
        let bytes_after_resolves = accel.stats().h2d_bytes;
        // The matrix (largest object) must not have been re-sent: per-resolve
        // traffic is small vectors only. The extended matrix is 4x8 doubles
        // = 256B+; allow the three resolves a small-vector budget each.
        let per_resolve = (bytes_after_resolves - bytes_after_solve) / 3;
        let matrix_bytes = (4 * 8 * 8) as u64;
        assert!(
            per_resolve < matrix_bytes * 4,
            "per-resolve H2D {per_resolve}B looks like matrix re-uploads"
        );
    }

    #[test]
    fn device_engine_frees_memory_on_drop() {
        let accel = Accel::gpu(1);
        {
            let std = StandardLp::from_instance(&textbook_lp(), &[]);
            let mut solver = device_solver(std, accel.clone());
            solver.solve().unwrap();
            assert!(accel.mem_used() > 0);
        }
        assert_eq!(accel.mem_used(), 0, "engine leaked device memory");
    }

    #[test]
    fn device_cut_flow() {
        let accel = Accel::gpu(1);
        let std = StandardLp::from_instance(&textbook_mip(), &[]);
        let mut solver = device_solver(std, accel.clone());
        let base = solver.solve().unwrap();
        let d2h_before = accel.stats().h2d_transfers;
        solver.add_cut(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        let cutted = solver.resolve().unwrap();
        assert_eq!(cutted.status, LpStatus::Optimal);
        assert!(cutted.objective < base.objective - 1e-6);
        // The cut arrived via H2D (row + slack column), per Section 5.2.
        assert!(accel.stats().h2d_transfers > d2h_before);
    }
}
