//! The batched first-order node-LP engine: restarted PDHG waves.
//!
//! Where the simplex wave ([`crate::wave`]) replays per-lane pivot journals
//! whose kernel classes desynchronize as lanes progress, a first-order lane
//! has exactly one iteration shape — two SpMVs against the one shared
//! device-resident CSR matrix plus vector axpy/projection work — so *every*
//! active lane is always on the same kernel class and a superstep is three
//! fused launches (`fo.spmv_t`, `fo.axpy`, `fo.spmv`), four on KKT-check
//! steps (`fo.norm`). No factorization state exists at all: per-lane memory
//! is a handful of vectors, which is what lets the wave scale to hundreds
//! of lanes ("Batched First-Order Methods for Parallel LP Solving in MIP").
//!
//! Numerically each lane runs **restarted PDHG** (primal-dual hybrid
//! gradient) on the internal maximize form `max cᵀx, Ax = b, l ≤ x ≤ u`:
//!
//! ```text
//! x⁺ = proj_[l,u](x − τ(−c + Aᵀy))        τ = η/ω
//! y⁺ = y + σ(A(2x⁺ − x) − b)              σ = η·ω
//! ```
//!
//! with `η = 1/‖A‖_F` (the Frobenius norm upper-bounds the spectral norm,
//! so `τσ‖A‖₂² ≤ 1` holds unconditionally and deterministically) and a
//! per-lane primal weight `ω` adapted at restarts from the observed
//! primal/dual movement ratio. Every `check_every` iterations the lane
//! evaluates its **running average** iterate: if the KKT merit decayed by
//! `restart_beta` since the last restart the lane restarts *to* the
//! average (Halpern-style, the PDLP recipe).
//!
//! First-order iterates are inexact, so per-node bounds are stated
//! **safely**: [`safe_dual_bound`] clamps the dual sign on inequality-slack
//! rows (dual-feasibility adjustment) and evaluates the Lagrangian box
//! bound, which is a valid upper bound on the node optimum for *any* dual
//! vector — an inexact iterate can therefore never prune a true optimum,
//! and a `+∞` bound (when a free column's reduced cost has the wrong sign)
//! is simply a bound that prunes nothing. The moment a lane's safe bound
//! falls below the incumbent cutoff it retires as
//! [`FoOutcome::BoundPruned`] — *without* solving its LP to optimality,
//! which is the structural advantage over a simplex lane that must pivot
//! to optimality before it can state any bound. Converged (or
//! iteration-capped) survivors are handed to exact simplex cleanup by the
//! driver before branching, as the paper does.

use crate::problem::StandardLp;
use crate::{LpError, LpResult};
use gmip_gpu::cost::flops;
use gmip_gpu::{
    Accel, AxpyLane, RawHandle, SparseHandle, SpmvLane, SpmvTLane, StreamId, WaveCharge,
    DEFAULT_STREAM,
};
use gmip_linalg::CsrMatrix;
use gmip_trace::{names, MetricsRegistry};

/// Tuning parameters of the restarted-PDHG lanes.
#[derive(Debug, Clone)]
pub struct PdhgConfig {
    /// Relative KKT tolerance at which a lane counts as converged and is
    /// handed to simplex cleanup (loose on purpose: cleanup is exact, the
    /// first-order pass only needs to get *close* and to state safe
    /// bounds).
    pub tol: f64,
    /// Per-lane iteration cap; capped lanes retire as
    /// [`FoOutcome::IterLimit`] and cleanup decides the node.
    pub max_iters: usize,
    /// KKT-check cadence in iterations (each check is one extra fused
    /// `fo.norm` launch for the checking lanes).
    pub check_every: usize,
    /// Restart when the average's KKT merit decayed by this factor since
    /// the last restart.
    pub restart_beta: f64,
}

impl Default for PdhgConfig {
    fn default() -> Self {
        Self {
            tol: 1e-4,
            max_iters: 20_000,
            check_every: 4,
            restart_beta: 0.5,
        }
    }
}

/// Why a lane left the wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoOutcome {
    /// KKT residuals of the running average met `tol`: the iterate is a
    /// near-optimal warm start and the node needs exact simplex cleanup
    /// before branching.
    Converged,
    /// The safe dual bound fell below the incumbent cutoff: the node is
    /// pruned outright, no cleanup needed.
    BoundPruned,
    /// The load-time activity-bound check proved the node's row system
    /// infeasible under its branch bounds.
    Infeasible,
    /// The iteration cap was hit before convergence; cleanup decides.
    IterLimit,
}

/// A retired lane's report: outcome, safe bound, and the (averaged)
/// iterates that warm-start the node's children.
#[derive(Debug, Clone)]
pub struct FoLaneReport {
    /// Caller's node token (the id passed to [`FirstOrderWaveEngine::load_lane`]).
    pub token: u64,
    /// Why the lane retired.
    pub outcome: FoOutcome,
    /// PDHG iterations this lane ran.
    pub iterations: usize,
    /// Restarts triggered.
    pub restarts: usize,
    /// Best (smallest) safe dual bound observed, in the internal maximize
    /// sense; `+∞` until the first finite bound. Never below the node's
    /// true optimum.
    pub safe_bound: f64,
    /// Final primal iterate (length `n`, the running average at retire).
    pub x: Vec<f64>,
    /// Final dual iterate (length `m`).
    pub y: Vec<f64>,
}

/// One lane's PDHG state.
#[derive(Debug)]
struct FoLane {
    token: u64,
    lb: Vec<f64>,
    ub: Vec<f64>,
    x: Vec<f64>,
    y: Vec<f64>,
    x_sum: Vec<f64>,
    y_sum: Vec<f64>,
    sum_count: usize,
    iters: usize,
    restarts: usize,
    /// Primal weight ω; τ = η/ω, σ = η·ω.
    omega: f64,
    /// KKT merit at the last restart point (`+∞` until first measured).
    merit0: f64,
    x_restart: Vec<f64>,
    y_restart: Vec<f64>,
    /// Best safe dual bound seen (monotone min; every sample is valid).
    safe_bound: f64,
    outcome: Option<FoOutcome>,
    reported: bool,
    /// Executing-kernel buffers (`Aᵀy`, the over-relaxed point `x̂`, and
    /// `Ax̂`): host memory backing the lane's share of the fused
    /// dispatches. Per-lane (not engine-shared) so backends may run lanes
    /// concurrently; the modeled device footprint is unchanged
    /// ([`FirstOrderWaveEngine::per_lane_bytes`] already charges these
    /// vectors as lane state).
    aty: Vec<f64>,
    xhat: Vec<f64>,
    ax: Vec<f64>,
}

/// KKT quantities a `fo.norm` check body computes for one lane; consumed
/// sequentially by the retire/restart decision at the superstep boundary.
#[derive(Debug, Default)]
struct CheckOut {
    x_avg: Vec<f64>,
    y_avg: Vec<f64>,
    primal_res: f64,
    obj: f64,
    bound: f64,
}

/// Borrowed lane state a `fo.norm` check body works on.
struct CheckCell<'a> {
    slot: usize,
    inv: f64,
    lb: &'a [f64],
    ub: &'a [f64],
    x_sum: &'a [f64],
    y_sum: &'a [f64],
    ax: &'a mut [f64],
    out: CheckOut,
}

/// Activity-based implied-bound tightening over the equality rows.
///
/// For row `i` (`Σₖ aᵢₖxₖ = bᵢ`) and a column `j` with `aᵢⱼ ≠ 0`,
/// the row implies `aᵢⱼxⱼ = bᵢ − Σ_{k≠j} aᵢₖxₖ`, so the min/max
/// activity of the *other* terms caps `xⱼ` from above/below. Implied
/// bounds never shrink the feasible region — any feasible point already
/// satisfies them — so the node optimum is untouched; what they buy is
/// **finite** column boxes, without which the safe Lagrangian bound of
/// [`safe_dual_bound`] degenerates to `+∞` whenever an unbounded
/// column's reduced cost has the wrong (inexact) sign. Two passes are
/// enough in practice to make every column the generators emit finite.
/// Returns `false` if tightening crossed a bound pair — an infeasibility
/// proof for the node.
pub fn tighten_bounds(a: &CsrMatrix, b: &[f64], lb: &mut [f64], ub: &mut [f64]) -> bool {
    for _ in 0..2 {
        for i in 0..a.rows() {
            // Min/max activity of the full row, with infinite
            // contributions counted separately so a single unbounded
            // column can still receive an implied bound.
            let (mut sum_min, mut sum_max) = (0.0f64, 0.0f64);
            let (mut n_min_inf, mut n_max_inf) = (0usize, 0usize);
            for (j, v) in a.row_iter(i) {
                let (p, q) = (v * lb[j], v * ub[j]);
                let (t_min, t_max) = (p.min(q), p.max(q));
                if t_min.is_finite() {
                    sum_min += t_min;
                } else {
                    n_min_inf += 1;
                }
                if t_max.is_finite() {
                    sum_max += t_max;
                } else {
                    n_max_inf += 1;
                }
            }
            for (j, v) in a.row_iter(i) {
                let (p, q) = (v * lb[j], v * ub[j]);
                let (t_min, t_max) = (p.min(q), p.max(q));
                // Upper cap from the other terms' min activity.
                let others_min = if n_min_inf == 0 {
                    Some(sum_min - t_min)
                } else if n_min_inf == 1 && !t_min.is_finite() {
                    Some(sum_min)
                } else {
                    None
                };
                if let Some(o) = others_min {
                    let cap = (b[i] - o) / v;
                    if v > 0.0 {
                        ub[j] = ub[j].min(cap);
                    } else {
                        lb[j] = lb[j].max(cap);
                    }
                }
                // Lower cap from the other terms' max activity.
                let others_max = if n_max_inf == 0 {
                    Some(sum_max - t_max)
                } else if n_max_inf == 1 && !t_max.is_finite() {
                    Some(sum_max)
                } else {
                    None
                };
                if let Some(o) = others_max {
                    let floor = (b[i] - o) / v;
                    if v > 0.0 {
                        lb[j] = lb[j].max(floor);
                    } else {
                        ub[j] = ub[j].min(floor);
                    }
                }
            }
        }
    }
    lb.iter().zip(ub.iter()).all(|(&l, &u)| l <= u + 1e-9)
}

/// The safe Lagrangian box bound, dual-feasibility-adjusted.
///
/// For the internal maximize form `max cᵀx, Ax = b, l ≤ x ≤ u` and **any**
/// dual vector `y`, weak duality gives the upper bound
///
/// ```text
/// bound(y) = bᵀy + Σⱼ sup_{xⱼ ∈ [lⱼ,uⱼ]} rⱼ xⱼ,      r = c − Aᵀy,
/// ```
///
/// which is finite only if every column with an infinite bound has the
/// right reduced-cost sign. Inequality-slack columns (`ub = +∞`) would
/// make raw PDHG iterates useless here, so the dual is first *clamped* on
/// slack rows — `yᵢ ≥ 0` where the slack coefficient is `+1` (a `≤` row),
/// `yᵢ ≤ 0` where it is `−1` (a `≥` row) — which zeroes every slack
/// contribution exactly. Clamping only changes *which* valid bound is
/// evaluated, never its validity. Any remaining infinite term yields
/// `+∞`: a bound that prunes nothing, which is the safe direction.
/// `slack_rows` lists `(row, coefficient)` per inequality slack.
pub fn safe_dual_bound(
    a: &CsrMatrix,
    b: &[f64],
    c: &[f64],
    lb: &[f64],
    ub: &[f64],
    slack_rows: &[(usize, f64)],
    y: &[f64],
) -> f64 {
    let mut yc = y.to_vec();
    for &(row, coef) in slack_rows {
        if coef > 0.0 {
            yc[row] = yc[row].max(0.0);
        } else {
            yc[row] = yc[row].min(0.0);
        }
    }
    let aty = a.matvec_transposed(&yc).expect("engine shapes match");
    let mut bound: f64 = b.iter().zip(&yc).map(|(&bi, &yi)| bi * yi).sum();
    for j in 0..c.len() {
        let r = c[j] - aty[j];
        let term = if r > 0.0 {
            if ub[j].is_finite() {
                r * ub[j]
            } else {
                return f64::INFINITY;
            }
        } else if r < 0.0 {
            if lb[j].is_finite() {
                r * lb[j]
            } else {
                return f64::INFINITY;
            }
        } else {
            0.0
        };
        bound += term;
    }
    bound
}

/// The lockstep restarted-PDHG wave: all lanes iterate against one shared
/// device-resident CSR matrix; each superstep is one PDHG iteration for
/// every busy lane, issued as at most four fused batched launches.
#[derive(Debug)]
pub struct FirstOrderWaveEngine {
    accel: Accel,
    stream: StreamId,
    csr: CsrMatrix,
    matrix: SparseHandle,
    matrix_bytes: usize,
    b: Vec<f64>,
    /// Internal maximize objective.
    c: Vec<f64>,
    /// `−c`: the minimization gradient the x-step descends.
    c_tilde: Vec<f64>,
    /// `(row, coefficient)` of each inequality slack (dual sign clamps).
    slack_rows: Vec<(usize, f64)>,
    /// Base step scale `η = 1/‖A‖_F`.
    eta: f64,
    b_norm: f64,
    /// Incumbent cutoff in the internal maximize sense: lanes whose safe
    /// bound drops to or below this retire pruned.
    cutoff: f64,
    cfg: PdhgConfig,
    lanes: Vec<Option<FoLane>>,
    lane_state: Vec<RawHandle>,
    metrics: MetricsRegistry,
}

impl FirstOrderWaveEngine {
    /// Uploads the shared CSR matrix of `std.a` once and reserves `width`
    /// lane states. The standard form must be cut-free (the wave drivers
    /// never add cuts mid-wave).
    pub fn new(accel: Accel, std: &StandardLp, width: usize, cfg: PdhgConfig) -> LpResult<Self> {
        assert!(width >= 1, "need at least one lane");
        let csr = CsrMatrix::from_dense(&std.a);
        let matrix_bytes = csr.size_bytes();
        let (m, n) = (csr.rows(), csr.cols());
        let per_lane = Self::per_lane_bytes(m, n);
        let (matrix, lane_state) = accel.with(|d| -> gmip_gpu::device::Result<_> {
            let matrix = d.upload_sparse(&csr, DEFAULT_STREAM)?;
            let mut lanes = Vec::with_capacity(width);
            for _ in 0..width {
                lanes.push(d.alloc_raw(per_lane)?);
            }
            Ok((matrix, lanes))
        })?;
        let fro = csr.frobenius_norm();
        let eta = if fro > 0.0 { 1.0 / fro } else { 1.0 };
        let b_norm = std.b.iter().map(|v| v * v).sum::<f64>().sqrt();
        let mut metrics = MetricsRegistry::new();
        metrics.max_gauge(names::FO_WIDTH, width as f64);
        metrics.max_gauge(names::FO_MATRIX_BYTES, matrix_bytes as f64);
        Ok(Self {
            accel,
            stream: DEFAULT_STREAM,
            matrix,
            matrix_bytes,
            b: std.b.clone(),
            c: std.c.clone(),
            c_tilde: std.c.iter().map(|&v| -v).collect(),
            slack_rows: std
                .slacks
                .iter()
                .map(|&(_, row, coef)| (row, coef))
                .collect(),
            eta,
            b_norm,
            cutoff: f64::NEG_INFINITY,
            cfg,
            lanes: (0..width).map(|_| None).collect(),
            lane_state,
            csr,
            metrics,
        })
    }

    /// Device bytes of one lane's iteration state: `x`, `x̄`-sum, bounds
    /// (4·n), duals + `ȳ`-sum + residual scratch (3·m), plus fixed
    /// per-lane bookkeeping. No factorization state — the reason hundreds
    /// of first-order lanes fit where tens of simplex lanes do.
    pub fn per_lane_bytes(m: usize, n: usize) -> usize {
        8 * (4 * n + 3 * m) + 128
    }

    /// Bytes of the shared device-resident CSR matrix.
    pub fn matrix_bytes(&self) -> usize {
        self.matrix_bytes
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// Rows of the standard form.
    pub fn m(&self) -> usize {
        self.b.len()
    }

    /// Columns of the standard form.
    pub fn n(&self) -> usize {
        self.c.len()
    }

    /// Whether `slot` holds a lane still iterating.
    pub fn lane_busy(&self, slot: usize) -> bool {
        self.lanes[slot]
            .as_ref()
            .is_some_and(|l| l.outcome.is_none())
    }

    /// Whether any lane is still iterating.
    pub fn any_busy(&self) -> bool {
        (0..self.lanes.len()).any(|s| self.lane_busy(s))
    }

    /// Whether `slot` is free for [`Self::load_lane`].
    pub fn lane_idle(&self, slot: usize) -> bool {
        self.lanes[slot].is_none()
    }

    /// Updates the incumbent cutoff (internal maximize sense). Lanes whose
    /// safe bound is at or below the cutoff retire pruned at their next
    /// KKT check — incumbents found mid-wave start pruning *in-flight*
    /// lanes immediately, not just future refills.
    pub fn set_cutoff(&mut self, cutoff: f64) {
        self.cutoff = cutoff;
    }

    /// Wave counters (`fo.*`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Takes (and resets) the accumulated `fo.*` counters.
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.metrics, MetricsRegistry::new())
    }

    /// Marks a refill (frontier node loaded into a previously retired
    /// lane).
    pub fn note_refill(&mut self) {
        self.metrics.incr(names::FO_REFILLS, 1.0);
    }

    /// Records a host-simplex cleanup of a converged (or capped) lane:
    /// `fo.cleanups` and the pivots it spent (`fo.cleanup.iterations`).
    pub fn note_cleanup(&mut self, simplex_iterations: usize) {
        self.metrics.incr(names::FO_CLEANUPS, 1.0);
        self.metrics
            .incr(names::FO_CLEANUP_ITERS, simplex_iterations as f64);
    }

    /// Loads a node into idle `slot`: per-node bounds (length `n`,
    /// including slack columns), an optional `(x, y)` warm start (the
    /// parent's averaged iterates), and the caller's `token` to identify
    /// the lane's report. Charges the H2D transfer of the lane's vectors
    /// and runs the load-time activity-bound infeasibility check; an
    /// infeasible lane retires at the next superstep boundary without
    /// iterating.
    pub fn load_lane(
        &mut self,
        slot: usize,
        token: u64,
        lb: &[f64],
        ub: &[f64],
        warm: Option<(&[f64], &[f64])>,
    ) -> LpResult<()> {
        let (m, n) = (self.m(), self.n());
        if !self.lane_idle(slot) {
            return Err(LpError::Shape(format!("lane {slot} loaded while occupied")));
        }
        if lb.len() != n || ub.len() != n {
            return Err(LpError::Shape(format!(
                "lane bounds: engine n={n}, lb {} ub {}",
                lb.len(),
                ub.len()
            )));
        }
        let mut lb = lb.to_vec();
        let mut ub = ub.to_vec();
        // Implied-bound tightening: gives every column a finite box (so
        // safe bounds stay finite) and doubles as a cheap infeasibility
        // proof when branch bounds cross.
        let tight_ok = tighten_bounds(&self.csr, &self.b, &mut lb, &mut ub);
        let mut h2d = 8 * 2 * n;
        let (mut x, y) = match warm {
            Some((wx, wy)) => {
                if wx.len() != n || wy.len() != m {
                    return Err(LpError::Shape(format!(
                        "warm start: engine {m}x{n}, x {} y {}",
                        wx.len(),
                        wy.len()
                    )));
                }
                h2d += 8 * (n + m);
                (wx.to_vec(), wy.to_vec())
            }
            None => {
                let x0 = (0..n)
                    .map(|j| match (lb[j].is_finite(), ub[j].is_finite()) {
                        (true, true) => 0.5 * (lb[j] + ub[j]),
                        (true, false) => lb[j],
                        (false, true) => ub[j],
                        (false, false) => 0.0,
                    })
                    .collect();
                (x0, vec![0.0; m])
            }
        };
        for j in 0..n {
            x[j] = x[j].max(lb[j]).min(ub[j]);
        }
        let stream = self.stream;
        self.accel.exec().transfer(h2d, true, stream);

        // Activity-bound infeasibility check: a row whose minimal (or
        // maximal) activity over the box already misses `b` can never be
        // satisfied — the branch bounds fixed this node dead. Catches the
        // common case (conflicting binary fixings) for the cost of one
        // host pass over the nonzeros.
        let infeasible = !tight_ok
            || (0..m).any(|i| {
                let (mut lo, mut hi) = (0.0f64, 0.0f64);
                for (j, v) in self.csr.row_iter(i) {
                    let (p, q) = (v * lb[j], v * ub[j]);
                    lo += p.min(q);
                    hi += p.max(q);
                }
                lo > self.b[i] + 1e-9 || hi < self.b[i] - 1e-9
            });

        let lane = FoLane {
            token,
            lb,
            ub,
            x_sum: vec![0.0; n],
            y_sum: vec![0.0; m],
            sum_count: 0,
            iters: 0,
            restarts: 0,
            omega: 1.0,
            merit0: f64::INFINITY,
            x_restart: x.clone(),
            y_restart: y.clone(),
            safe_bound: f64::INFINITY,
            outcome: infeasible.then_some(FoOutcome::Infeasible),
            reported: false,
            aty: vec![0.0; n],
            xhat: vec![0.0; n],
            ax: vec![0.0; m],
            x,
            y,
        };
        if infeasible {
            self.metrics.incr(names::FO_INFEASIBLE, 1.0);
        }
        self.lanes[slot] = Some(lane);
        Ok(())
    }

    /// Executes one lockstep superstep: every busy lane advances by one
    /// PDHG iteration via fused `fo.spmv_t` / `fo.axpy` / `fo.spmv`
    /// launches (plus `fo.norm` for lanes on a KKT check), then
    /// convergence / safe-bound-prune / restart decisions fire at the
    /// boundary. Returns the slots that retired (including lanes found
    /// infeasible at load time).
    pub fn superstep(&mut self) -> Vec<usize> {
        let mut retired = Vec::new();
        for slot in 0..self.lanes.len() {
            if let Some(l) = self.lanes[slot].as_mut() {
                if l.outcome.is_some() && !l.reported {
                    l.reported = true;
                    retired.push(slot);
                }
            }
        }
        let busy: Vec<usize> = (0..self.lanes.len())
            .filter(|&s| self.lane_busy(s))
            .collect();
        let exec = self.accel.exec();
        let stream = self.stream;
        if busy.is_empty() {
            if !retired.is_empty() {
                self.metrics.incr(names::FO_RETIRES, retired.len() as f64);
                exec.record_event(stream);
            }
            return retired;
        }

        self.metrics.incr(names::FO_SUPERSTEPS, 1.0);
        self.metrics.incr(names::FO_ITERATIONS, busy.len() as f64);
        let (m, n) = (self.m(), self.n());
        let nnz = self.csr.nnz();

        // The fused launches of this superstep: every busy lane is on the
        // identical kernel class — perfect lockstep, three launches, plus
        // one `fo.norm` reduction for the lanes on a check boundary. Each
        // class is one executing dispatch through the backend, which also
        // applies the simulated charge; within a lane the operation order
        // is fixed by the `gmip_gpu::kernels` bodies, so outcomes are
        // backend- and thread-count-independent.
        let spmv: Vec<(f64, f64)> = busy
            .iter()
            .map(|_| (flops::spmv(nnz), (16 * nnz + 8 * (m + n)) as f64))
            .collect();
        let axpy: Vec<(f64, f64)> = busy
            .iter()
            .map(|_| ((6 * n + 4 * m) as f64, (8 * (4 * n + 3 * m)) as f64))
            .collect();

        let eta = self.eta;
        {
            let mut lanes: Vec<SpmvTLane<'_>> = self
                .lanes
                .iter_mut()
                .filter_map(|o| o.as_mut())
                .filter(|l| l.outcome.is_none())
                .map(|l| SpmvTLane {
                    y: &l.y,
                    aty: &mut l.aty,
                })
                .collect();
            exec.fo_spmv_t(&self.csr, &mut lanes, &spmv, stream);
        }
        {
            let c_tilde = &self.c_tilde;
            let mut lanes: Vec<AxpyLane<'_>> = self
                .lanes
                .iter_mut()
                .filter_map(|o| o.as_mut())
                .filter(|l| l.outcome.is_none())
                .map(|l| AxpyLane {
                    tau: eta / l.omega,
                    x: &mut l.x,
                    xhat: &mut l.xhat,
                    aty: &l.aty,
                    lb: &l.lb,
                    ub: &l.ub,
                })
                .collect();
            exec.fo_axpy(c_tilde, &mut lanes, &axpy, stream);
        }
        {
            let mut lanes: Vec<SpmvLane<'_>> = self
                .lanes
                .iter_mut()
                .filter_map(|o| o.as_mut())
                .filter(|l| l.outcome.is_none())
                .map(|l| SpmvLane {
                    sigma: eta * l.omega,
                    xhat: &l.xhat,
                    ax: &mut l.ax,
                    x: &l.x,
                    y: &mut l.y,
                    x_sum: &mut l.x_sum,
                    y_sum: &mut l.y_sum,
                })
                .collect();
            exec.fo_spmv(&self.csr, &self.b, &mut lanes, &spmv, stream);
        }

        // Host bookkeeping at the iteration boundary.
        let (check_every, max_iters) = (self.cfg.check_every, self.cfg.max_iters);
        let mut checking = 0usize;
        for &slot in &busy {
            let lane = self.lanes[slot].as_mut().expect("busy slot occupied");
            lane.sum_count += 1;
            lane.iters += 1;
            if lane.iters.is_multiple_of(check_every) || lane.iters >= max_iters {
                checking += 1;
            }
        }
        let norm: Vec<(f64, f64)> = (0..checking)
            .map(|_| ((4 * (n + m)) as f64, (8 * (n + m)) as f64))
            .collect();
        self.metrics.incr(
            names::FO_FUSED_LAUNCHES,
            if norm.is_empty() { 3.0 } else { 4.0 },
        );

        // `fo.norm` phase: KKT evaluation of the running average for the
        // checking lanes, one executing dispatch; retire/restart decisions
        // are applied sequentially afterwards (they mutate shared engine
        // state and must stay in ascending slot order).
        let mut checks: Vec<(usize, f64, CheckOut)> = Vec::with_capacity(checking);
        if checking > 0 {
            let csr = &self.csr;
            let b = &self.b;
            let c = &self.c;
            let slack_rows = &self.slack_rows;
            let mut cells: Vec<CheckCell<'_>> = self
                .lanes
                .iter_mut()
                .enumerate()
                .filter_map(|(slot, o)| o.as_mut().map(|l| (slot, l)))
                .filter(|(_, l)| l.outcome.is_none())
                .filter(|(_, l)| l.iters.is_multiple_of(check_every) || l.iters >= max_iters)
                .map(|(slot, l)| CheckCell {
                    slot,
                    inv: 1.0 / l.sum_count.max(1) as f64,
                    lb: &l.lb,
                    ub: &l.ub,
                    x_sum: &l.x_sum,
                    y_sum: &l.y_sum,
                    ax: &mut l.ax,
                    out: CheckOut::default(),
                })
                .collect();
            let mut closures: Vec<_> = cells
                .iter_mut()
                .map(|cell| {
                    move || {
                        let x_avg: Vec<f64> = cell.x_sum.iter().map(|&v| v * cell.inv).collect();
                        let y_avg: Vec<f64> = cell.y_sum.iter().map(|&v| v * cell.inv).collect();
                        csr.matvec_into(&x_avg, cell.ax)
                            .expect("lane shapes fixed at load");
                        let primal_res = cell
                            .ax
                            .iter()
                            .zip(b)
                            .map(|(&axi, &bi)| (axi - bi) * (axi - bi))
                            .sum::<f64>()
                            .sqrt();
                        let obj: f64 = c.iter().zip(&x_avg).map(|(&cj, &xj)| cj * xj).sum();
                        let bound =
                            safe_dual_bound(csr, b, c, cell.lb, cell.ub, slack_rows, &y_avg);
                        cell.out = CheckOut {
                            x_avg,
                            y_avg,
                            primal_res,
                            obj,
                            bound,
                        };
                    }
                })
                .collect();
            let mut bodies: Vec<gmip_gpu::LaneBody<'_>> = closures
                .iter_mut()
                .map(|c| c as &mut (dyn FnMut() + Send))
                .collect();
            exec.fused_dispatch(
                "fo.norm",
                &mut bodies,
                &[WaveCharge {
                    name: "fo.norm",
                    per_lane: &norm,
                    sparse: false,
                }],
                stream,
            );
            drop(bodies);
            drop(closures);
            checks = cells
                .into_iter()
                .map(|cell| (cell.slot, cell.inv, cell.out))
                .collect();
        }

        for (slot, inv, chk) in checks {
            if let Some(outcome) = self.decide_lane(slot, inv, &chk) {
                let lane = self.lanes[slot].as_mut().expect("busy slot occupied");
                lane.outcome = Some(outcome);
                lane.reported = true;
                retired.push(slot);
                let counter = match outcome {
                    FoOutcome::Converged => names::FO_CONVERGED,
                    FoOutcome::BoundPruned => names::FO_BOUND_PRUNED,
                    FoOutcome::Infeasible => names::FO_INFEASIBLE,
                    FoOutcome::IterLimit => names::FO_ITER_LIMIT,
                };
                self.metrics.incr(counter, 1.0);
            }
        }
        if !retired.is_empty() {
            self.metrics.incr(names::FO_RETIRES, retired.len() as f64);
        }
        // Retire boundaries are stream events, not device barriers.
        exec.record_event(stream);
        retired
    }

    /// Retire/restart decision for one checking lane, fed by the KKT
    /// quantities its `fo.norm` body computed. Returns the outcome if the
    /// lane retires at this boundary.
    fn decide_lane(&mut self, slot: usize, inv: f64, chk: &CheckOut) -> Option<FoOutcome> {
        let (m, n) = (self.m(), self.n());
        let cutoff = self.cutoff;
        let lane = self.lanes[slot].as_mut().expect("busy slot occupied");
        let at_cap = lane.iters >= self.cfg.max_iters;
        lane.safe_bound = lane.safe_bound.min(chk.bound);

        // Early safe-bound prune: the wave's structural advantage — the
        // lane states a valid bound after a handful of iterations and
        // retires the moment the incumbent dominates it.
        if lane.safe_bound <= cutoff {
            self.adopt_average(slot, inv, &chk.y_avg);
            return Some(FoOutcome::BoundPruned);
        }

        let gap = (chk.bound - chk.obj).max(0.0);
        let converged = chk.primal_res <= self.cfg.tol * (1.0 + self.b_norm)
            && chk.bound.is_finite()
            && gap <= self.cfg.tol * (1.0 + chk.obj.abs());
        if converged {
            self.adopt_average(slot, inv, &chk.y_avg);
            return Some(FoOutcome::Converged);
        }
        if at_cap {
            self.adopt_average(slot, inv, &chk.y_avg);
            return Some(FoOutcome::IterLimit);
        }

        let merit = if chk.bound.is_finite() {
            chk.primal_res.hypot(gap)
        } else {
            f64::INFINITY
        };
        let lane = self.lanes[slot].as_mut().expect("busy slot occupied");
        if lane.merit0.is_infinite() {
            if merit.is_finite() {
                lane.merit0 = merit;
            }
        } else if merit <= self.cfg.restart_beta * lane.merit0 {
            // Restart to the running average, and adapt the primal weight
            // from the movement ratio since the last restart point.
            let mut dx = 0.0;
            let mut dy = 0.0;
            for j in 0..n {
                let d = chk.x_avg[j] - lane.x_restart[j];
                dx += d * d;
            }
            for i in 0..m {
                let d = chk.y_avg[i] - lane.y_restart[i];
                dy += d * d;
            }
            let (dx, dy) = (dx.sqrt(), dy.sqrt());
            if dx > 1e-12 && dy > 1e-12 {
                lane.omega = (lane.omega * dy / dx).sqrt().clamp(1e-4, 1e4);
            }
            lane.x.copy_from_slice(&chk.x_avg[..n]);
            lane.y.copy_from_slice(&chk.y_avg);
            lane.x_restart.copy_from_slice(&lane.x);
            lane.y_restart.copy_from_slice(&lane.y);
            for v in lane.x_sum.iter_mut() {
                *v = 0.0;
            }
            for v in lane.y_sum.iter_mut() {
                *v = 0.0;
            }
            lane.sum_count = 0;
            lane.merit0 = merit;
            lane.restarts += 1;
            self.metrics.incr(names::FO_RESTARTS, 1.0);
        }
        None
    }

    /// Writes the running average into the lane's iterates (the vectors a
    /// retired lane reports).
    fn adopt_average(&mut self, slot: usize, inv: f64, y_avg: &[f64]) {
        let n = self.c.len();
        let lane = self.lanes[slot].as_mut().expect("slot occupied");
        if lane.sum_count > 0 {
            for j in 0..n {
                lane.x[j] = lane.x_sum[j] * inv;
            }
            lane.y.copy_from_slice(y_avg);
        }
    }

    /// Runs supersteps until at least one lane retires (or nothing is
    /// busy). Returns the retired slots.
    pub fn run_to_retire(&mut self) -> Vec<usize> {
        loop {
            let retired = self.superstep();
            if !retired.is_empty() {
                return retired;
            }
            if !self.any_busy() {
                return Vec::new();
            }
        }
    }

    /// Takes the report of a retired lane, freeing `slot` for a refill.
    /// Charges the D2H transfer of the reported iterates.
    pub fn take_lane(&mut self, slot: usize) -> LpResult<FoLaneReport> {
        let lane = self.lanes[slot]
            .take()
            .ok_or_else(|| LpError::Shape(format!("take_lane on empty slot {slot}")))?;
        let outcome = lane
            .outcome
            .ok_or_else(|| LpError::Shape(format!("take_lane on busy slot {slot}")))?;
        let bytes = 8 * (lane.x.len() + lane.y.len());
        let stream = self.stream;
        self.accel.exec().transfer(bytes, false, stream);
        Ok(FoLaneReport {
            token: lane.token,
            outcome,
            iterations: lane.iters,
            restarts: lane.restarts,
            safe_bound: lane.safe_bound,
            x: lane.x,
            y: lane.y,
        })
    }
}

impl Drop for FirstOrderWaveEngine {
    fn drop(&mut self) {
        self.accel.with(|d| {
            let _ = d.free_sparse(self.matrix);
            for &h in &self.lane_state {
                let _ = d.free_raw(h);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use crate::solver::{LpConfig, LpSolver, LpStatus};
    use gmip_problems::catalog::{textbook_lp, textbook_mip};

    fn engine(std: &StandardLp, width: usize, cfg: PdhgConfig) -> FirstOrderWaveEngine {
        FirstOrderWaveEngine::new(Accel::gpu(1), std, width, cfg).expect("engine")
    }

    fn host_optimum(std: &StandardLp) -> f64 {
        let mut lp = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
            HostEngine::new(a.clone())
        });
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        // Internal maximize value.
        if std.negated {
            -sol.objective
        } else {
            sol.objective
        }
    }

    #[test]
    fn pdhg_converges_to_lp_optimum_and_restarts() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let expected = host_optimum(&std);
        let mut fo = engine(&std, 1, PdhgConfig::default());
        fo.load_lane(0, 7, &std.lb, &std.ub, None).unwrap();
        let retired = fo.run_to_retire();
        assert_eq!(retired, vec![0]);
        let r = fo.take_lane(0).unwrap();
        assert_eq!(r.token, 7);
        assert_eq!(r.outcome, FoOutcome::Converged);
        assert!(
            r.restarts >= 1,
            "adaptive restarts must trigger on a real solve"
        );
        let obj: f64 = std.c.iter().zip(&r.x).map(|(c, x)| c * x).sum();
        assert!(
            (obj - expected).abs() <= 1e-3 * (1.0 + expected.abs()),
            "pdhg {obj} vs simplex {expected}"
        );
        // The safe bound never dips below the true optimum.
        assert!(
            r.safe_bound >= expected - 1e-9,
            "{} < {expected}",
            r.safe_bound
        );
    }

    #[test]
    fn safe_bound_is_valid_at_arbitrary_duals() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let opt = host_optimum(&std);
        let csr = CsrMatrix::from_dense(&std.a);
        let slack_rows: Vec<(usize, f64)> = std.slacks.iter().map(|&(_, r, cf)| (r, cf)).collect();
        // Any dual vector — including wildly wrong ones — must bound the
        // optimum from above.
        for y in [
            vec![0.0; std.m()],
            vec![1.0; std.m()],
            vec![-3.5; std.m()],
            (0..std.m()).map(|i| (i as f64) - 1.7).collect(),
        ] {
            let b = safe_dual_bound(&csr, &std.b, &std.c, &std.lb, &std.ub, &slack_rows, &y);
            assert!(b >= opt - 1e-9, "bound {b} < optimum {opt} at y={y:?}");
        }
    }

    #[test]
    fn infeasible_bounds_detected_at_load() {
        let mip = textbook_mip();
        let std = StandardLp::from_instance(&mip, &[]);
        let mut fo = engine(&std, 2, PdhgConfig::default());
        // Fix x0 beyond what row feasibility allows: lb far above any
        // attainable activity.
        let mut lb = std.lb.clone();
        let mut ub = std.ub.clone();
        lb[0] = 1e6;
        ub[0] = 1e6;
        fo.load_lane(0, 1, &lb, &ub, None).unwrap();
        let retired = fo.run_to_retire();
        assert_eq!(retired, vec![0]);
        let r = fo.take_lane(0).unwrap();
        assert_eq!(r.outcome, FoOutcome::Infeasible);
        assert_eq!(r.iterations, 0, "infeasible lanes never iterate");
        assert_eq!(fo.metrics().counter(names::FO_INFEASIBLE), 1.0);
    }

    #[test]
    fn cutoff_prunes_lane_early_without_convergence() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let expected = host_optimum(&std);
        let mut fo = engine(&std, 1, PdhgConfig::default());
        // An incumbent far above the optimum dominates every node bound.
        fo.set_cutoff(expected + 1e3);
        fo.load_lane(0, 3, &std.lb, &std.ub, None).unwrap();
        let retired = fo.run_to_retire();
        assert_eq!(retired, vec![0]);
        let r = fo.take_lane(0).unwrap();
        assert_eq!(r.outcome, FoOutcome::BoundPruned);
        assert!(
            r.iterations < 200,
            "prune must fire at an early check, ran {}",
            r.iterations
        );
        assert!(r.safe_bound <= expected + 1e3);
    }

    #[test]
    fn retire_refill_bookkeeping() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut fo = engine(&std, 2, PdhgConfig::default());
        fo.load_lane(0, 10, &std.lb, &std.ub, None).unwrap();
        fo.load_lane(1, 11, &std.lb, &std.ub, None).unwrap();
        assert!(fo.any_busy());
        // Loading an occupied slot is rejected.
        assert!(fo.load_lane(0, 12, &std.lb, &std.ub, None).is_err());
        let mut taken = 0;
        while fo.any_busy() || (0..fo.width()).any(|s| !fo.lane_idle(s)) {
            for slot in fo.run_to_retire() {
                let r = fo.take_lane(slot).unwrap();
                taken += 1;
                // Refill once with a warm start from the retired lane.
                if taken <= 1 {
                    fo.load_lane(slot, 12, &std.lb, &std.ub, Some((&r.x, &r.y)))
                        .unwrap();
                    fo.note_refill();
                }
            }
            if !fo.any_busy() {
                break;
            }
        }
        assert_eq!(taken, 3, "two initial lanes + one refill");
        let m = fo.metrics();
        assert_eq!(m.counter(names::FO_RETIRES), 3.0);
        assert_eq!(m.counter(names::FO_REFILLS), 1.0);
        assert_eq!(m.counter(names::FO_CONVERGED), 3.0);
        // Taking an empty slot is rejected.
        assert!(fo.take_lane(0).is_err());
    }

    #[test]
    fn warm_started_lane_converges_faster() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut fo = engine(&std, 1, PdhgConfig::default());
        fo.load_lane(0, 0, &std.lb, &std.ub, None).unwrap();
        fo.run_to_retire();
        let cold = fo.take_lane(0).unwrap();
        assert_eq!(cold.outcome, FoOutcome::Converged);
        // Re-solve the same node from the parent's iterates.
        fo.load_lane(0, 1, &std.lb, &std.ub, Some((&cold.x, &cold.y)))
            .unwrap();
        fo.run_to_retire();
        let warm = fo.take_lane(0).unwrap();
        assert_eq!(warm.outcome, FoOutcome::Converged);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn supersteps_fuse_launches_in_lockstep() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let accel = Accel::gpu(1);
        let mut fo =
            FirstOrderWaveEngine::new(accel.clone(), &std, 4, PdhgConfig::default()).unwrap();
        for slot in 0..4 {
            fo.load_lane(slot, slot as u64, &std.lb, &std.ub, None)
                .unwrap();
        }
        let before = accel.stats().kernel_launches;
        fo.superstep();
        let after = accel.stats().kernel_launches;
        // Four lanes, one iteration each: 3 fused launches (spmv_t, axpy,
        // spmv) — not 12 per-lane ones. (First check lands later.)
        assert_eq!(after - before, 3, "lockstep fuses all lanes per class");
        assert_eq!(fo.metrics().counter(names::FO_SUPERSTEPS), 1.0);
        assert_eq!(fo.metrics().counter(names::FO_ITERATIONS), 4.0);
    }
}
