//! The batched wave evaluator — Section 5.5's lockstep node-LP batching.
//!
//! "In modern GPUs, the memory capacity has increased sufficiently to
//! consider housing and solving multiple branch-and-cut nodes concurrently
//! on the same GPU" — and Section 4.3 adds that *batched* small-matrix
//! routines (Rennich-style) are the right kernel shape for it, because one
//! fused launch amortizes the launch latency that per-lane engines pay per
//! kernel per lane per pivot.
//!
//! The per-lane baseline ([`crate::DeviceEngine`] lanes in
//! `gmip_core::concurrent`) parks one private matrix copy per lane and
//! charges one launch per FTRAN/BTRAN/pricing kernel per lane. This module
//! inverts both decisions:
//!
//! * **one shared device-resident `[A | I]` matrix** serves every lane
//!   (per-lane state is a small reservation), so the wave width is bounded
//!   by `batch ≈ device_mem / matrix_mem` ([`wave_width`]) instead of
//!   `device_mem / (lanes × matrix_mem)`;
//! * **one fused batched launch per kernel class per superstep**
//!   ([`gmip_gpu::GpuDevice::batched_wave_kernel`]): every active lane
//!   contributes
//!   its instance of the class (BTRAN, FTRAN, pricing scan, ratio
//!   reduction, pivot update) and the batch pays a single launch latency;
//! * **event-based retire-and-refill**: a lane whose node LP reaches
//!   optimality exits the wave at a superstep boundary (a stream event,
//!   *not* a device-wide `synchronize`) and is refilled immediately, so
//!   short lanes never wait for the longest lane in a join-all;
//! * a **device-resident warm-basis pool** ([`BatchedWaveEngine`] LRU)
//!   keeps parent bases on the device across refills; evictions are
//!   charged as real D2H spills and re-loads as H2D transfers.
//!
//! Numerically, each lane is a [`RecordingEngine`]: a [`HostEngine`] that
//! takes the exact pivot path of the reference implementation while
//! journaling one [`WaveOp`] per device kernel the equivalent
//! [`crate::DeviceEngine`] would have launched. The wave engine then
//! replays those journals in lockstep against the simulated device, which
//! is where the simulated-ns clock and the kernel/transfer ledger accrue.
//! Identical pivot paths are the repository's standing engine-equivalence
//! property, so the batched strategy reproduces host objectives bit-for-bit
//! while the *platform* cost model changes underneath.

use crate::basis::Basis;
use crate::engine::{HostEngine, PivotPlan, ProblemView, SimplexEngine};
use crate::LpResult;
use gmip_gpu::cost::flops;
use gmip_gpu::{Accel, MatrixHandle, RawHandle, StreamId, DEFAULT_STREAM};
use gmip_linalg::DenseMatrix;
use gmip_trace::{names, MetricsRegistry};
use std::collections::VecDeque;

/// The kernel classes a wave superstep can fuse. Each class maps to one
/// fused batched launch when at least one lane's next op belongs to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WaveClass {
    /// Basis gather + LU/eta factorization (install, refactorization).
    Factor,
    /// Eta-file FTRAN of an entering column.
    Ftran,
    /// Eta-file BTRAN of duals or a leaving row.
    Btran,
    /// Reduced-cost / pricing scan over all columns.
    Pricing,
    /// Ratio-test / infeasibility argmin-argmax reductions.
    Ratio,
    /// Basic-value step, eta append, status writes after a pivot or flip.
    Update,
    /// O(1) scalar gathers crossing the link (pivot entries).
    Gather,
}

/// Deterministic fusion order within a superstep.
const CLASS_ORDER: [WaveClass; 7] = [
    WaveClass::Factor,
    WaveClass::Ftran,
    WaveClass::Btran,
    WaveClass::Pricing,
    WaveClass::Ratio,
    WaveClass::Update,
    WaveClass::Gather,
];

impl WaveClass {
    /// The trace span name of this class's fused launch.
    pub fn span_name(self) -> &'static str {
        match self {
            WaveClass::Factor => "wave.factor",
            WaveClass::Ftran => "wave.ftran",
            WaveClass::Btran => "wave.btran",
            WaveClass::Pricing => "wave.pricing",
            WaveClass::Ratio => "wave.ratio",
            WaveClass::Update => "wave.update",
            WaveClass::Gather => "wave.gather",
        }
    }
}

/// One journaled device operation of a lane's node-LP solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WaveOp {
    /// A kernel instance: fused with same-class instances of other lanes.
    Kernel {
        /// Kernel class (decides which fused launch it joins).
        class: WaveClass,
        /// Floating-point operations of this lane's instance.
        flops: f64,
        /// Memory traffic of this lane's instance, bytes.
        bytes: f64,
    },
    /// A host↔device transfer (charged per lane; transfers are latency, not
    /// launches, and per-lane engines pay the identical ones).
    Transfer {
        /// Payload bytes.
        bytes: usize,
        /// Direction (`true` = host to device).
        h2d: bool,
    },
}

/// A [`SimplexEngine`] that runs the reference host numerics while
/// journaling the device kernels an equivalent [`crate::DeviceEngine`]
/// would have launched, one [`WaveOp`] per kernel.
///
/// `sim_now_ns` stays `None`: the eager host solve is *planning*, not
/// execution — simulated time accrues only when the journal is replayed
/// through [`BatchedWaveEngine`] (this also keeps stray `lp.*` spans off
/// the trace during planning).
#[derive(Debug)]
pub struct RecordingEngine {
    inner: HostEngine,
    ops: Vec<WaveOp>,
}

impl RecordingEngine {
    /// Wraps a host engine over the extended matrix.
    pub fn new(a: DenseMatrix) -> Self {
        Self {
            inner: HostEngine::new(a),
            ops: Vec::new(),
        }
    }

    /// Drains the journal accumulated since the last call.
    pub fn take_ops(&mut self) -> Vec<WaveOp> {
        std::mem::take(&mut self.ops)
    }

    fn kernel(&mut self, class: WaveClass, flops: f64, bytes: f64) {
        self.ops.push(WaveOp::Kernel {
            class,
            flops,
            bytes,
        });
    }

    fn transfer(&mut self, bytes: usize, h2d: bool) {
        self.ops.push(WaveOp::Transfer { bytes, h2d });
    }

    /// Etas currently in the inner engine's file (sizes FTRAN/BTRAN work).
    fn k(&self) -> usize {
        self.inner.eta_count()
    }

    fn btran_op(&mut self) {
        let (m, k) = (self.inner.m(), self.k());
        self.kernel(
            WaveClass::Btran,
            flops::eta_apply(k + 1, m),
            8.0 * (m * (k + 2)) as f64,
        );
    }

    fn pricing_op(&mut self, extra_flops: f64) {
        let (m, n) = (self.inner.m(), self.inner.n());
        self.kernel(
            WaveClass::Pricing,
            flops::gemv(m, n) + extra_flops,
            8.0 * (m * n + 2 * n) as f64,
        );
    }
}

impl SimplexEngine for RecordingEngine {
    fn m(&self) -> usize {
        self.inner.m()
    }

    fn n(&self) -> usize {
        self.inner.n()
    }

    fn install(&mut self, view: ProblemView<'_>, basis: &Basis) -> LpResult<()> {
        let (m, n) = (self.inner.m(), self.inner.n());
        // The DeviceEngine install leg: seven small vectors up (c, b, σ,
        // c_B, l_B, u_B, x_N), then residual + basis gather + factorization
        // + the initial FTRAN, then γ up.
        self.transfer(8 * (3 * n + 4 * m), true);
        self.kernel(
            WaveClass::Factor,
            flops::gemv(m, n) + flops::lu(m) + flops::lu_solve(m),
            8.0 * (m * n + 2 * m * m) as f64,
        );
        self.inner.install(view, basis)
    }

    fn append_cut(&mut self, row: &[f64], col: &[f64]) -> LpResult<()> {
        self.transfer(8 * (row.len() + col.len()), true);
        let m = self.inner.m();
        self.kernel(WaveClass::Update, 0.0, 8.0 * (row.len() + m) as f64);
        self.inner.append_cut(row, col)
    }

    fn price(&mut self) -> LpResult<Option<(usize, f64)>> {
        self.btran_op();
        // Pricing scan + σ-mask multiply + argmin reduction, fused.
        self.pricing_op(2.0 * self.inner.n() as f64);
        self.inner.price()
    }

    fn reduced_costs_host(&mut self) -> LpResult<Vec<f64>> {
        self.btran_op();
        self.pricing_op(0.0);
        self.transfer(8 * self.inner.n(), false);
        self.inner.reduced_costs_host()
    }

    fn ftran_column(&mut self, q: usize) -> LpResult<()> {
        let (m, k) = (self.inner.m(), self.k());
        self.kernel(
            WaveClass::Ftran,
            flops::eta_apply(k + 1, m),
            8.0 * (m * (k + 2)) as f64,
        );
        self.inner.ftran_column(q)
    }

    fn alpha_entry(&mut self, i: usize) -> LpResult<f64> {
        self.kernel(WaveClass::Gather, 1.0, 8.0);
        self.inner.alpha_entry(i)
    }

    fn ratio_test(&mut self, dir: f64, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let m = self.inner.m();
        self.kernel(WaveClass::Ratio, 4.0 * m as f64, 8.0 * (4 * m) as f64);
        self.inner.ratio_test(dir, tol)
    }

    fn apply_flip(&mut self, q: usize, dir: f64, t: f64, new_sigma: f64) -> LpResult<()> {
        let m = self.inner.m();
        self.kernel(WaveClass::Update, 2.0 * m as f64, 8.0 * (2 * m) as f64);
        self.inner.apply_flip(q, dir, t, new_sigma)
    }

    fn apply_pivot(&mut self, plan: &PivotPlan) -> LpResult<()> {
        let m = self.inner.m();
        // Basic step + eta append + the five status/bound writes.
        self.kernel(
            WaveClass::Update,
            2.0 * m as f64 + 8.0,
            8.0 * (2 * m + 8) as f64,
        );
        self.inner.apply_pivot(plan)
    }

    fn basic_values(&mut self) -> LpResult<Vec<f64>> {
        self.transfer(8 * self.inner.m(), false);
        self.inner.basic_values()
    }

    fn basic_entry(&mut self, i: usize) -> LpResult<f64> {
        self.kernel(WaveClass::Gather, 1.0, 8.0);
        self.inner.basic_entry(i)
    }

    fn eta_count(&self) -> usize {
        self.inner.eta_count()
    }

    fn primal_infeas(&mut self, tol: f64) -> LpResult<Option<(usize, f64, bool)>> {
        let m = self.inner.m();
        self.kernel(WaveClass::Ratio, 2.0 * m as f64, 8.0 * (2 * m) as f64);
        self.inner.primal_infeas(tol)
    }

    fn btran_row(&mut self, r: usize) -> LpResult<()> {
        self.btran_op();
        self.pricing_op(0.0);
        self.inner.btran_row(r)
    }

    fn dual_ratio(&mut self, leaving_below: bool, tol: f64) -> LpResult<Option<(usize, f64)>> {
        let n = self.inner.n();
        self.kernel(WaveClass::Ratio, 4.0 * n as f64, 8.0 * (2 * n) as f64);
        self.inner.dual_ratio(leaving_below, tol)
    }

    fn alpha_r_entry(&mut self, j: usize) -> LpResult<f64> {
        self.kernel(WaveClass::Gather, 1.0, 8.0);
        self.inner.alpha_r_entry(j)
    }

    fn btran_row_host(&mut self, r: usize) -> LpResult<Vec<f64>> {
        self.btran_op();
        self.pricing_op(0.0);
        self.transfer(8 * self.inner.n(), false);
        self.inner.btran_row_host(r)
    }

    fn dual_prices(&mut self) -> LpResult<Vec<f64>> {
        self.btran_op();
        self.transfer(8 * self.inner.m(), false);
        self.inner.dual_prices()
    }

    fn price_devex(&mut self) -> LpResult<Option<(usize, f64)>> {
        self.btran_op();
        self.pricing_op(3.0 * self.inner.n() as f64);
        self.inner.price_devex()
    }

    fn devex_update(&mut self, q: usize, leaving_j: usize) -> LpResult<()> {
        let n = self.inner.n();
        self.kernel(WaveClass::Gather, 2.0, 16.0);
        self.kernel(WaveClass::Update, 2.0 * n as f64, 8.0 * (2 * n) as f64);
        self.inner.devex_update(q, leaving_j)
    }
}

/// Sizes the wave: how many lanes fit next to the shared matrix, per the
/// paper's `batch ≈ device_mem / matrix_mem` rule (Section 5.5) — except
/// the matrix is shared, so the divisor is the *per-lane state*, not a
/// per-lane matrix copy. Clamped to `[1, requested]`.
pub fn wave_width(
    requested: usize,
    mem_capacity: usize,
    matrix_bytes: usize,
    per_lane_bytes: usize,
) -> usize {
    let free = mem_capacity.saturating_sub(matrix_bytes);
    let fit = free / per_lane_bytes.max(1);
    requested.max(1).min(fit.max(1))
}

/// An entry in the device-resident warm-basis pool.
#[derive(Debug)]
struct PoolEntry {
    key: u64,
    bytes: usize,
    handle: RawHandle,
}

/// The lockstep replayer: owns the shared device matrix, the per-lane
/// journals, and the warm-basis pool; every superstep issues at most one
/// fused launch per [`WaveClass`] present across the active lanes.
#[derive(Debug)]
pub struct BatchedWaveEngine {
    accel: Accel,
    stream: StreamId,
    matrix: MatrixHandle,
    matrix_bytes: usize,
    lane_state: Vec<RawHandle>,
    logs: Vec<VecDeque<WaveOp>>,
    /// LRU, most-recent first.
    pool: Vec<PoolEntry>,
    pool_budget: usize,
    metrics: MetricsRegistry,
}

impl BatchedWaveEngine {
    /// Uploads the shared `[A | I]` matrix once, reserves `width` lane
    /// states, and sets up an empty warm-basis pool with `pool_budget`
    /// device bytes.
    pub fn new(
        accel: Accel,
        ext: &DenseMatrix,
        width: usize,
        pool_budget: usize,
    ) -> LpResult<Self> {
        assert!(width >= 1, "need at least one lane");
        let matrix_bytes = ext.size_bytes();
        let (m, n) = (ext.rows(), ext.cols());
        let per_lane = Self::per_lane_bytes(m, n);
        let (matrix, lane_state) = accel.with(|d| -> gmip_gpu::device::Result<_> {
            let matrix = d.upload_matrix(ext, DEFAULT_STREAM)?;
            let mut lanes = Vec::with_capacity(width);
            for _ in 0..width {
                lanes.push(d.alloc_raw(per_lane)?);
            }
            Ok((matrix, lanes))
        })?;
        let mut metrics = MetricsRegistry::new();
        metrics.max_gauge(names::BATCH_MATRIX_BYTES, matrix_bytes as f64);
        metrics.max_gauge(names::WAVE_WIDTH, width as f64);
        Ok(Self {
            accel,
            stream: DEFAULT_STREAM,
            matrix,
            matrix_bytes,
            lane_state,
            logs: (0..width).map(|_| VecDeque::new()).collect(),
            pool: Vec::new(),
            pool_budget,
            metrics,
        })
    }

    /// Device bytes a lane's iteration state occupies (basic values,
    /// statuses, bounds, duals — everything but the shared matrix).
    pub fn per_lane_bytes(m: usize, n: usize) -> usize {
        8 * (4 * m + 3 * n) + 128
    }

    /// Bytes of the shared device-resident matrix.
    pub fn matrix_bytes(&self) -> usize {
        self.matrix_bytes
    }

    /// Number of lanes.
    pub fn width(&self) -> usize {
        self.logs.len()
    }

    /// Whether `slot` still has journaled ops to replay.
    pub fn lane_busy(&self, slot: usize) -> bool {
        !self.logs[slot].is_empty()
    }

    /// Whether any lane has work left.
    pub fn any_busy(&self) -> bool {
        self.logs.iter().any(|l| !l.is_empty())
    }

    /// Loads a freshly journaled node LP into `slot` (a refill when the
    /// lane retired earlier; counted as such by the caller).
    pub fn load_lane(&mut self, slot: usize, ops: Vec<WaveOp>) {
        debug_assert!(self.logs[slot].is_empty(), "lane refilled while busy");
        self.metrics.incr(names::WAVE_LANE_OPS, ops.len() as f64);
        self.logs[slot] = ops.into();
    }

    /// Wave-level counters (`wave.*` / `batch.*`).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Marks a refill (frontier node loaded into a retired lane).
    pub fn note_refill(&mut self) {
        self.metrics.incr(names::WAVE_REFILLS, 1.0);
    }

    /// Touches the warm-basis pool for `key` (a node id whose basis warm
    /// starts a child). A hit costs nothing — the basis is already device
    /// resident; a miss uploads it (H2D) and may LRU-evict older bases,
    /// each spill charged as a real D2H transfer.
    pub fn touch_basis(&mut self, key: u64, bytes: usize) -> LpResult<()> {
        if let Some(pos) = self.pool.iter().position(|e| e.key == key) {
            let e = self.pool.remove(pos);
            self.pool.insert(0, e);
            self.metrics.incr(names::BATCH_BASIS_HITS, 1.0);
            return Ok(());
        }
        self.metrics.incr(names::BATCH_BASIS_MISSES, 1.0);
        let stream = self.stream;
        let handle = self.accel.with(|d| -> gmip_gpu::device::Result<_> {
            d.charge_transfer(bytes, true, stream);
            d.alloc_raw(bytes)
        })?;
        self.pool.insert(0, PoolEntry { key, bytes, handle });
        let mut used: usize = self.pool.iter().map(|e| e.bytes).sum();
        while used > self.pool_budget && self.pool.len() > 1 {
            let victim = self.pool.pop().expect("len > 1");
            used -= victim.bytes;
            self.metrics.incr(names::BATCH_BASIS_EVICTIONS, 1.0);
            self.metrics
                .incr(names::BATCH_BASIS_SPILL_BYTES, victim.bytes as f64);
            self.accel.with(|d| -> gmip_gpu::device::Result<_> {
                d.charge_transfer(victim.bytes, false, stream);
                d.free_raw(victim.handle)?;
                Ok(())
            })?;
        }
        Ok(())
    }

    /// Executes one lockstep superstep: every busy lane advances by exactly
    /// one journaled op; same-class kernels fuse into one batched launch;
    /// transfers are charged per lane. Returns the slots that retired
    /// (journal exhausted) at this step's boundary — the stream-event
    /// moment the driver refills them, with no device-wide barrier.
    pub fn superstep(&mut self) -> Vec<usize> {
        let mut kernels: Vec<(WaveClass, f64, f64)> = Vec::new();
        let mut transfers: Vec<(usize, bool)> = Vec::new();
        let mut retired = Vec::new();
        for slot in 0..self.logs.len() {
            let Some(op) = self.logs[slot].pop_front() else {
                continue;
            };
            match op {
                WaveOp::Kernel {
                    class,
                    flops,
                    bytes,
                } => kernels.push((class, flops, bytes)),
                WaveOp::Transfer { bytes, h2d } => transfers.push((bytes, h2d)),
            }
            if self.logs[slot].is_empty() {
                retired.push(slot);
            }
        }
        if kernels.is_empty() && transfers.is_empty() {
            return retired;
        }
        self.metrics.incr(names::WAVE_SUPERSTEPS, 1.0);
        let stream = self.stream;
        self.accel.with(|d| {
            for &(bytes, h2d) in &transfers {
                d.charge_transfer(bytes, h2d, stream);
            }
            for class in CLASS_ORDER {
                let lanes: Vec<(f64, f64)> = kernels
                    .iter()
                    .filter(|k| k.0 == class)
                    .map(|k| (k.1, k.2))
                    .collect();
                if !lanes.is_empty() {
                    d.batched_wave_kernel(class.span_name(), &lanes, stream);
                }
            }
        });
        let fused = CLASS_ORDER
            .iter()
            .filter(|&&c| kernels.iter().any(|k| k.0 == c))
            .count();
        self.metrics.incr(names::WAVE_FUSED_LAUNCHES, fused as f64);
        self.metrics.incr(names::WAVE_RETIRES, retired.len() as f64);
        // The retire boundary is a stream event, not a synchronize: the
        // host observes it on this stream's timeline only.
        let _ = self.accel.with(|d| d.record_event(stream));
        retired
    }

    /// Runs supersteps until at least one lane retires (or nothing is
    /// busy). Returns the retired slots.
    pub fn run_to_retire(&mut self) -> Vec<usize> {
        while self.any_busy() {
            let retired = self.superstep();
            if !retired.is_empty() {
                return retired;
            }
        }
        Vec::new()
    }
}

impl Drop for BatchedWaveEngine {
    fn drop(&mut self) {
        self.accel.with(|d| {
            let _ = d.free_matrix(self.matrix);
            for &h in &self.lane_state {
                let _ = d.free_raw(h);
            }
            for e in &self.pool {
                let _ = d.free_raw(e.handle);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{LpConfig, LpSolver, LpStatus};
    use crate::HostEngine;
    use gmip_gpu::{CostModel, DeviceConfig};
    use gmip_problems::catalog::textbook_mip;

    fn textbook_std() -> crate::StandardLp {
        crate::StandardLp::from_instance(&textbook_mip(), &[])
    }

    #[test]
    fn recording_engine_takes_host_pivot_path() {
        let std = textbook_std();
        let mut host = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
            HostEngine::new(a.clone())
        });
        let mut rec = LpSolver::new(std, LpConfig::standard(), |a| {
            RecordingEngine::new(a.clone())
        });
        let hs = host.solve().unwrap();
        let rs = rec.solve().unwrap();
        assert_eq!(hs.status, LpStatus::Optimal);
        assert_eq!(rs.status, LpStatus::Optimal);
        assert!((hs.objective - rs.objective).abs() < 1e-9);
        assert_eq!(hs.iterations, rs.iterations, "pivot paths must match");
        let ops = rec.engine_mut().take_ops();
        assert!(!ops.is_empty(), "solve must journal device ops");
        assert!(ops.iter().any(|o| matches!(
            o,
            WaveOp::Kernel {
                class: WaveClass::Pricing,
                ..
            }
        )));
    }

    #[test]
    fn width_respects_device_memory() {
        // Plenty of memory: the request wins.
        assert_eq!(wave_width(8, 1 << 30, 1 << 20, 1 << 10), 8);
        // Shrinking memory shrinks the wave.
        let matrix = 1 << 20;
        let lane = 64 << 10;
        let roomy = wave_width(16, (1 << 20) + 16 * lane, matrix, lane);
        let tight = wave_width(16, (1 << 20) + 4 * lane, matrix, lane);
        let none = wave_width(16, 1 << 10, matrix, lane);
        assert_eq!(roomy, 16);
        assert_eq!(tight, 4);
        assert_eq!(none, 1, "always at least one lane");
        assert!(tight < roomy);
    }

    #[test]
    fn fused_replay_charges_fewer_launches_than_per_lane() {
        let std = textbook_std();
        // Journal one node LP.
        let mut rec = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
            RecordingEngine::new(a.clone())
        });
        rec.solve().unwrap();
        let ops = rec.engine_mut().take_ops();
        let kernel_ops = ops
            .iter()
            .filter(|o| matches!(o, WaveOp::Kernel { .. }))
            .count();

        // Replay the same journal on 4 lanes of one wave; the shared matrix
        // only needs the extended dimensions, not its numbers (the journal
        // already carries each op's flop/byte weights).
        let accel = Accel::gpu_with(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1 << 26,
            streams: 1,
        });
        let ext = DenseMatrix::zeros(rec.engine().m(), rec.engine().n());
        let mut wave = BatchedWaveEngine::new(accel.clone(), &ext, 4, 1 << 16).unwrap();
        for slot in 0..4 {
            wave.load_lane(slot, ops.clone());
        }
        while wave.any_busy() {
            wave.superstep();
        }
        let launches = accel.stats().kernel_launches as usize;
        // Per-lane engines would pay ≥ one launch per kernel op per lane.
        let per_lane_floor = 4 * kernel_ops;
        assert!(
            launches < per_lane_floor,
            "fused {launches} vs per-lane floor {per_lane_floor}"
        );
    }

    #[test]
    fn basis_pool_hits_avoid_transfers_and_evictions_spill() {
        let accel = Accel::gpu_with(DeviceConfig {
            cost: CostModel::gpu_pcie(),
            mem_capacity: 1 << 24,
            streams: 1,
        });
        let ext = DenseMatrix::zeros(4, 8);
        let mut wave = BatchedWaveEngine::new(accel.clone(), &ext, 2, 300).unwrap();
        wave.touch_basis(1, 128).unwrap(); // miss
        let h2d_after_first = accel.stats().h2d_transfers;
        wave.touch_basis(1, 128).unwrap(); // hit: no new transfer
        assert_eq!(accel.stats().h2d_transfers, h2d_after_first);
        wave.touch_basis(2, 128).unwrap(); // miss, fits
        wave.touch_basis(3, 128).unwrap(); // miss: evicts key 1 (LRU)
        let m = wave.metrics();
        assert_eq!(m.counter(names::BATCH_BASIS_HITS), 1.0);
        assert_eq!(m.counter(names::BATCH_BASIS_MISSES), 3.0);
        assert!(m.counter(names::BATCH_BASIS_EVICTIONS) >= 1.0);
        assert!(m.counter(names::BATCH_BASIS_SPILL_BYTES) >= 128.0);
        assert!(accel.stats().d2h_transfers >= 1, "spill must be charged");
    }
}
