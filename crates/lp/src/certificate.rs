//! LP result *certificates*: the data an exact checker needs to validate a
//! float solve without trusting any float code path.
//!
//! A certificate pins down the node LP (bound changes over the instance,
//! cuts present at solve time) plus the dual evidence the engine produced:
//!
//! * an optimal node emits a [`CertKind::DualBound`] — the dual prices `y`
//!   of the optimal basis. Weak duality makes
//!   `yᵀb + Σⱼ max(dⱼ·lⱼ, dⱼ·uⱼ)` (with `dⱼ = cⱼ − yᵀaⱼ`) a valid upper
//!   bound on the node LP for *any* `y`, so an exact evaluator can confirm
//!   the claimed objective and hence the pruning decisions made from it;
//! * an infeasible node emits a [`CertKind::Farkas`] — a row multiplier
//!   vector `w` with `Σⱼ min(zⱼ·lⱼ, zⱼ·uⱼ) > wᵀb` where `zⱼ = wᵀaⱼ`,
//!   an exact witness that no point in the bound box satisfies `Ax = b`.
//!
//! Certificates are collected by `gmip-core` when
//! `MipConfig::collect_certificates` is set and checked exactly by the
//! `gmip-verify` crate.

use crate::problem::BoundChange;

/// The dual evidence attached to one node LP outcome.
#[derive(Debug, Clone)]
pub enum CertKind {
    /// Optimal node: dual prices and the claimed objective, both in the
    /// **internal maximize** sense (minimize sources are negated).
    DualBound {
        /// Dual prices of the optimal basis, one per row (cut rows last).
        y: Vec<f64>,
        /// Claimed optimal objective of the node LP (internal sense).
        objective: f64,
    },
    /// Infeasible node: a Farkas row-multiplier vector, one per row.
    Farkas {
        /// The infeasibility witness `w`.
        w: Vec<f64>,
    },
}

/// A self-contained, exactly-checkable record of one node LP outcome.
#[derive(Debug, Clone)]
pub struct LpCertificate {
    /// The node's cumulative bound changes over the instance.
    pub bounds: Vec<BoundChange>,
    /// Cuts present in the LP at solve time: `(coeffs, rhs)` over
    /// structural variables, each a `≤` row.
    pub cuts: Vec<(Vec<(usize, f64)>, f64)>,
    /// The dual evidence.
    pub kind: CertKind,
}
