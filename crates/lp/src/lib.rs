//! # gmip-lp
//!
//! Revised simplex linear programming for the `gmip` stack: the LP
//! relaxation engine of the branch-and-cut solver (paper Section 5.1).
//!
//! * [`problem`] — lowering MIP relaxations to bounded-variable equality
//!   form, with per-node bound overrides and appended cut rows;
//! * [`basis`] — basis/status bookkeeping and warm-start snapshots;
//! * [`certificate`] — exactly-checkable result certificates (weak-duality
//!   bounds, Farkas infeasibility witnesses) consumed by `gmip-verify`;
//! * [`engine`] — the per-iteration numerical interface
//!   ([`engine::SimplexEngine`]) with the pure-host reference engine;
//! * [`device_engine`] — the same interface executed as simulated device
//!   kernels, matrix resident on the accelerator, only scalars crossing the
//!   link per iteration;
//! * [`simplex`] — the primal bounded-variable revised simplex driver
//!   (two-phase, Dantzig pricing with Bland anti-cycling fallback,
//!   periodic refactorization);
//! * [`dual`] — the dual simplex driver used for warm re-solves after
//!   branching bound changes and cut rounds (Sections 5.2, 5.3);
//! * [`ipm`] — a primal-dual interior-point method over normal equations +
//!   Cholesky, the alternative LP algorithm of the paper's related work;
//! * [`wave`] — the batched wave evaluator: host-journaled node LPs
//!   replayed in lockstep with one fused launch per kernel class per
//!   superstep on a shared device-resident matrix (Sections 4.3, 5.5);
//! * [`solver`] — the [`solver::LpSolver`] facade tying it together.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod basis;
pub mod certificate;
pub mod device_engine;
pub mod dual;
pub mod engine;
pub mod firstorder;
pub mod ipm;
pub mod node_engine;
pub mod problem;
pub mod simplex;
pub mod solver;
pub mod sparse_engine;
pub mod wave;

pub use basis::{Basis, VarStatus};
pub use certificate::{CertKind, LpCertificate};
pub use device_engine::DeviceEngine;
pub use engine::{HostEngine, ProblemView, SimplexEngine};
pub use firstorder::{safe_dual_bound, FirstOrderWaveEngine, FoLaneReport, FoOutcome, PdhgConfig};
pub use ipm::{solve_ipm, IpmConfig, IpmSolution};
pub use node_engine::{
    FirstOrderNodeEngine, IpmNodeEngine, NodeLpEngine, NodeLpOutcome, NodeWarmHandoff,
    NodeWarmStart, SimplexNodeEngine,
};
pub use problem::{BoundChange, StandardLp};
pub use simplex::{PricingRule, PrimalConfig};
pub use solver::{ColKind, LpConfig, LpSolution, LpSolver, LpStatus};
pub use sparse_engine::SparseDeviceEngine;
pub use wave::{wave_width, BatchedWaveEngine, RecordingEngine, WaveClass, WaveOp};

use gmip_gpu::GpuError;
use gmip_linalg::LinalgError;

/// Errors from LP solving (distinct from *statuses* like infeasible or
/// unbounded, which are normal outcomes reported in [`LpSolution`]).
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// An engine operation was called before `install`.
    NotInstalled,
    /// Shape/dimension mismatch between engine and problem data.
    Shape(String),
    /// A nonbasic variable has an infinite bound on its assigned side.
    FreeVariable(usize),
    /// Numerical kernel failure.
    Numerics(LinalgError),
    /// Simulated device failure (OOM, invalid handle).
    Device(GpuError),
    /// The iteration limit was exceeded (possible cycling or a too-small
    /// limit for the instance).
    IterationLimit {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::NotInstalled => write!(f, "engine used before basis install"),
            LpError::Shape(s) => write!(f, "shape mismatch: {s}"),
            LpError::FreeVariable(j) => {
                write!(
                    f,
                    "variable {j} is nonbasic with an infinite bound on its status side"
                )
            }
            LpError::Numerics(e) => write!(f, "numerical failure: {e}"),
            LpError::Device(e) => write!(f, "device failure: {e}"),
            LpError::IterationLimit { iterations } => {
                write!(f, "simplex iteration limit reached after {iterations}")
            }
        }
    }
}

impl std::error::Error for LpError {}

impl From<LinalgError> for LpError {
    fn from(e: LinalgError) -> Self {
        LpError::Numerics(e)
    }
}

impl From<GpuError> for LpError {
    fn from(e: GpuError) -> Self {
        match e {
            GpuError::Linalg(l) => LpError::Numerics(l),
            other => LpError::Device(other),
        }
    }
}

/// Result alias for LP operations.
pub type LpResult<T> = std::result::Result<T, LpError>;
