//! The [`LpSolver`] facade: two-phase primal solve, dual warm re-solves
//! after bound changes, and cut-row extension — over any
//! [`SimplexEngine`].
//!
//! ## Column layout
//!
//! The engine's matrix is append-only, so the solver fixes this layout:
//!
//! ```text
//! [ structural + slack columns (n₀) | artificials (m₀) | cut slacks ... ]
//! ```
//!
//! Artificial columns are `+e_i` identity columns used only by the
//! from-scratch phase-1 solve; in phase 2 and all re-solves they are fixed
//! to `[0, 0]` and excluded from pricing. Cut slacks are appended as cuts
//! arrive (Section 5.2); the matrix is uploaded to the device **once** and
//! only grows — never re-transferred — matching the paper's reuse doctrine.

use crate::basis::{Basis, VarStatus};
use crate::dual::{dual_solve_traced, DualConfig, DualOutcome};
use crate::engine::{ProblemView, SimplexEngine};
use crate::problem::{BoundChange, StandardLp};
use crate::simplex::{assemble_point, primal_solve_traced, PrimalConfig, PrimalOutcome};
use crate::{LpError, LpResult};
use gmip_linalg::DenseMatrix;
use gmip_trace::{names, Event, MetricsRegistry, Track};

/// Solver configuration.
#[derive(Debug, Clone, Default)]
pub struct LpConfig {
    /// Primal driver knobs.
    pub primal: PrimalConfig,
    /// Dual driver knobs.
    pub dual: DualConfig,
}

impl LpConfig {
    /// The standard configuration.
    pub fn standard() -> Self {
        Self {
            primal: PrimalConfig::default(),
            dual: DualConfig::standard(),
        }
    }
}

/// Terminal status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// The LP is infeasible.
    Infeasible,
    /// The LP is unbounded.
    Unbounded,
}

/// The result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Terminal status.
    pub status: LpStatus,
    /// Objective in the *source* sense (only meaningful for `Optimal`).
    pub objective: f64,
    /// Structural variable values (empty unless `Optimal`).
    pub x: Vec<f64>,
    /// Simplex iterations spent (all phases).
    pub iterations: usize,
}

/// Classification of an engine-layout column (see the module docs for the
/// layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// A structural (instance) variable.
    Structural,
    /// An original inequality slack.
    Slack,
    /// A phase-1 artificial (fixed to 0 outside phase 1).
    Artificial,
    /// The slack of the k-th appended cut.
    CutSlack(usize),
}

/// An LP solver instance bound to one engine and one (growing) problem.
#[derive(Debug)]
pub struct LpSolver<E: SimplexEngine> {
    engine: E,
    std: StandardLp,
    /// Host mirror of the engine's matrix (residual computation & tests).
    mirror: DenseMatrix,
    /// Extended arrays in engine layout.
    c_real: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    b: Vec<f64>,
    /// Core column count (structural + original slacks).
    n_core: usize,
    /// Original row count (artificial block size).
    m_core: usize,
    /// Number of appended cut rows.
    n_cuts: usize,
    /// Cut bookkeeping: `(coeffs, rhs)` over structural variables.
    cut_rows: Vec<(Vec<(usize, f64)>, f64)>,
    cfg: LpConfig,
    basis: Option<Basis>,
    /// Farkas infeasibility witness of the most recent solve, if it ended
    /// `Infeasible` (row multipliers, one per row). Cleared on every solve.
    farkas: Option<Vec<f64>>,
    /// Accumulated `lp.*` metrics (solves, iterations, refactorizations).
    metrics: MetricsRegistry,
}

impl<E: SimplexEngine> LpSolver<E> {
    /// Creates a solver; `make_engine` receives the extended matrix
    /// `[A | I]` (e.g. `HostEngine::new`, or a closure uploading to a
    /// device).
    pub fn new(
        std: StandardLp,
        cfg: LpConfig,
        make_engine: impl FnOnce(&DenseMatrix) -> E,
    ) -> Self {
        let ext = Self::extended_matrix(&std);
        let engine = make_engine(&ext);
        Self::assemble(std, cfg, engine, ext)
    }

    /// Fallible variant of [`Self::new`] for engines whose construction can
    /// fail (e.g. a device engine hitting out-of-memory at matrix upload).
    pub fn try_new(
        std: StandardLp,
        cfg: LpConfig,
        make_engine: impl FnOnce(&DenseMatrix) -> LpResult<E>,
    ) -> LpResult<Self> {
        let ext = Self::extended_matrix(&std);
        let engine = make_engine(&ext)?;
        Ok(Self::assemble(std, cfg, engine, ext))
    }

    /// Builds the `[A | I]` extended matrix for a standard-form problem.
    fn extended_matrix(std: &StandardLp) -> DenseMatrix {
        let n_core = std.n();
        let m_core = std.m();
        let mut ext = DenseMatrix::zeros(m_core, n_core + m_core);
        for i in 0..m_core {
            for j in 0..n_core {
                ext.set(i, j, std.a.get(i, j));
            }
            ext.set(i, n_core + i, 1.0);
        }
        ext
    }

    fn assemble(std: StandardLp, cfg: LpConfig, engine: E, ext: DenseMatrix) -> Self {
        let n_core = std.n();
        let m_core = std.m();
        let mut c_real = std.c.clone();
        c_real.extend(std::iter::repeat_n(0.0, m_core));
        let mut lb = std.lb.clone();
        lb.extend(std::iter::repeat_n(0.0, m_core));
        let mut ub = std.ub.clone();
        ub.extend(std::iter::repeat_n(0.0, m_core));
        let b = std.b.clone();
        Self {
            engine,
            std,
            mirror: ext,
            c_real,
            lb,
            ub,
            b,
            n_core,
            m_core,
            n_cuts: 0,
            cut_rows: Vec::new(),
            cfg,
            basis: None,
            farkas: None,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Number of structural variables.
    pub fn n_structural(&self) -> usize {
        self.std.n_structural
    }

    /// Immutable access to the engine (e.g. to read device stats).
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable engine access (cut generators pull tableau rows through it).
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// The solver's accumulated `lp.*` metrics: solve/re-solve counts,
    /// simplex iterations, refactorizations, iterations-per-solve histogram.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Drains the metrics registry (e.g. to merge into a session summary
    /// and reset the window).
    pub fn take_metrics(&mut self) -> MetricsRegistry {
        std::mem::take(&mut self.metrics)
    }

    /// Records one facade-level call: counter bump, per-solve iteration
    /// histogram, and a span on the LP trace track (engines without a
    /// simulated clock produce metrics but no span).
    fn note_lp_call(
        &mut self,
        counter: &'static str,
        span: &'static str,
        t0: Option<f64>,
        out: &LpResult<LpSolution>,
    ) {
        self.metrics.incr(counter, 1.0);
        if let Ok(sol) = out {
            self.metrics
                .observe(names::LP_ITERATIONS_PER_SOLVE, sol.iterations as f64);
            if let Some(t0) = t0 {
                let t1 = self.engine.sim_now_ns().unwrap_or(t0);
                let iters = sol.iterations as u64;
                gmip_trace::record(|| {
                    Event::complete(Track::lp(), span, (t1 - t0).max(0.0), t0)
                        .arg("iterations", iters)
                });
            }
        }
    }

    /// The lowered standard-form problem this solver was built from.
    pub fn standard(&self) -> &StandardLp {
        &self.std
    }

    /// Current extended bounds `(lb, ub)` in engine column layout.
    pub fn bounds(&self) -> (&[f64], &[f64]) {
        (&self.lb, &self.ub)
    }

    /// Current extended right-hand side.
    pub fn rhs(&self) -> &[f64] {
        &self.b
    }

    /// Cuts added so far, as `(coeffs, rhs)` over structural variables.
    pub fn cuts(&self) -> &[(Vec<(usize, f64)>, f64)] {
        &self.cut_rows
    }

    /// Classifies an engine-layout column.
    pub fn col_kind(&self, j: usize) -> ColKind {
        if j < self.std.n_structural {
            ColKind::Structural
        } else if j < self.n_core {
            ColKind::Slack
        } else if j < self.n_core + self.m_core {
            ColKind::Artificial
        } else {
            ColKind::CutSlack(j - self.n_core - self.m_core)
        }
    }

    /// Converts a solution objective to the internal maximize sense used for
    /// bound comparisons.
    pub fn internal_objective(&self, source_objective: f64) -> f64 {
        if self.std.negated {
            -source_objective
        } else {
            source_objective
        }
    }

    /// Dual prices of the current optimal basis, in the **source** sense
    /// (negated back for minimize problems). One value per row; cut rows
    /// included at the end. Requires a prior solve.
    pub fn dual_prices(&mut self) -> LpResult<Vec<f64>> {
        if self.basis.is_none() {
            return Err(LpError::NotInstalled);
        }
        let y = self.engine.dual_prices()?;
        Ok(if self.std.negated {
            y.iter().map(|v| -v).collect()
        } else {
            y
        })
    }

    /// Dual prices in the **internal maximize** sense (no source-sense
    /// negation) — the sense certificate checks are stated in. Requires a
    /// prior solve.
    pub fn dual_prices_internal(&mut self) -> LpResult<Vec<f64>> {
        if self.basis.is_none() {
            return Err(LpError::NotInstalled);
        }
        self.engine.dual_prices()
    }

    /// The host mirror of the engine's extended matrix
    /// `[A | I | cut slacks]` (rows: core + cuts).
    pub fn matrix(&self) -> &DenseMatrix {
        &self.mirror
    }

    /// The Farkas infeasibility witness of the most recent solve, if that
    /// solve ended `Infeasible` and a witness could be extracted: row
    /// multipliers `w` with `Σⱼ min(zⱼlⱼ, zⱼuⱼ) > wᵀb`, `zⱼ = wᵀaⱼ`.
    pub fn farkas_ray(&self) -> Option<&[f64]> {
        self.farkas.as_deref()
    }

    /// Current basis snapshot (after a successful solve).
    pub fn basis(&self) -> Option<&Basis> {
        self.basis.as_ref()
    }

    /// Installs a warm-start basis (e.g. the parent node's, Section 5.3).
    /// The basis must match the current column count.
    pub fn set_warm_basis(&mut self, basis: Basis) -> LpResult<()> {
        if basis.n() != self.total_cols() || basis.m() != self.total_rows() {
            return Err(LpError::Shape(format!(
                "warm basis {}x{} vs problem {}x{}",
                basis.m(),
                basis.n(),
                self.total_rows(),
                self.total_cols()
            )));
        }
        self.basis = Some(basis);
        Ok(())
    }

    /// Overrides the bounds of a structural variable (a branch decision).
    pub fn set_var_bounds(&mut self, var: usize, lb: f64, ub: f64) -> LpResult<()> {
        if var >= self.std.n_structural {
            return Err(LpError::Shape(format!(
                "bound change on non-structural column {var}"
            )));
        }
        self.lb[var] = lb;
        self.ub[var] = ub;
        Ok(())
    }

    /// Applies a set of bound changes after restoring instance bounds — the
    /// "reuse the engine across tree nodes" entry point.
    pub fn apply_node_bounds(&mut self, changes: &[BoundChange]) -> LpResult<()> {
        for j in 0..self.std.n_structural {
            self.lb[j] = self.std.lb[j];
            self.ub[j] = self.std.ub[j];
        }
        for bc in changes {
            self.set_var_bounds(bc.var, bc.lb, bc.ub)?;
        }
        Ok(())
    }

    /// Appends a (globally valid) cut `coeffsᵀ x ≤ rhs` over structural
    /// variables; extends the current basis with the cut's slack so a warm
    /// dual re-solve remains possible.
    pub fn add_cut(&mut self, coeffs: &[(usize, f64)], rhs: f64) -> LpResult<()> {
        let n_before = self.total_cols();
        let mut row = vec![0.0; n_before];
        for &(j, v) in coeffs {
            if j >= self.std.n_structural {
                return Err(LpError::Shape(format!("cut coefficient on column {j}")));
            }
            row[j] = v;
        }
        let m_after = self.total_rows() + 1;
        let mut col = vec![0.0; m_after];
        col[m_after - 1] = 1.0;
        self.engine.append_cut(&row, &col)?;
        self.mirror.push_row(&row)?;
        self.mirror.push_col(&col)?;
        self.b.push(rhs);
        self.c_real.push(0.0);
        self.lb.push(0.0);
        self.ub.push(f64::INFINITY);
        self.n_cuts += 1;
        self.cut_rows.push((coeffs.to_vec(), rhs));
        if let Some(basis) = &mut self.basis {
            basis.extend_for_cuts(n_before, 1);
        }
        Ok(())
    }

    fn total_cols(&self) -> usize {
        self.n_core + self.m_core + self.n_cuts
    }

    fn total_rows(&self) -> usize {
        self.m_core + self.n_cuts
    }

    fn art_col(&self, row: usize) -> usize {
        self.n_core + row
    }

    fn cut_slack_col(&self, k: usize) -> usize {
        self.n_core + self.m_core + k
    }

    /// Solves from scratch (two-phase primal).
    pub fn solve(&mut self) -> LpResult<LpSolution> {
        let t0 = self.engine.sim_now_ns();
        let out = self.solve_inner();
        self.note_lp_call(names::LP_SOLVES, "lp.solve", t0, &out);
        out
    }

    fn solve_inner(&mut self) -> LpResult<LpSolution> {
        self.farkas = None;
        let n = self.total_cols();
        // Initial basis: artificial per core row, cut slack per cut row.
        let mut cols = Vec::with_capacity(self.total_rows());
        for i in 0..self.m_core {
            cols.push(self.art_col(i));
        }
        for k in 0..self.n_cuts {
            cols.push(self.cut_slack_col(k));
        }
        let mut basis = Basis::with_basic_cols(cols, n);
        // Nonbasic statuses: prefer the finite bound.
        for j in 0..n {
            if matches!(basis.status[j], VarStatus::Basic(_)) {
                continue;
            }
            if self.lb[j].is_finite() {
                basis.status[j] = VarStatus::AtLower;
            } else if self.ub[j].is_finite() {
                basis.status[j] = VarStatus::AtUpper;
            } else {
                return Err(LpError::FreeVariable(j));
            }
        }

        // Residual at the nonbasic point decides the phase-1 relaxations.
        let mut x_nb = vec![0.0; n];
        for (j, s) in basis.status.iter().enumerate() {
            match s {
                VarStatus::AtLower => x_nb[j] = self.lb[j],
                VarStatus::AtUpper => x_nb[j] = self.ub[j],
                VarStatus::Basic(_) => {}
            }
        }
        let ax = self.mirror.matvec(&x_nb)?;
        let resid: Vec<f64> = self.b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();

        // Phase-1 vectors.
        let mut c1 = vec![0.0; n];
        let mut lb1 = self.lb.clone();
        let mut ub1 = self.ub.clone();
        for i in 0..self.m_core {
            let j = self.art_col(i);
            if resid[i] >= 0.0 {
                lb1[j] = 0.0;
                ub1[j] = f64::INFINITY;
                c1[j] = -1.0;
            } else {
                lb1[j] = f64::NEG_INFINITY;
                ub1[j] = 0.0;
                c1[j] = 1.0;
            }
        }
        for k in 0..self.n_cuts {
            let j = self.cut_slack_col(k);
            let r = resid[self.m_core + k];
            if r < 0.0 {
                lb1[j] = f64::NEG_INFINITY;
                ub1[j] = 0.0;
                c1[j] = 1.0;
            }
        }

        let view1 = ProblemView {
            c: &c1,
            lb: &lb1,
            ub: &ub1,
            b: &self.b,
        };
        let (out1, it1) = primal_solve_traced(
            &mut self.engine,
            view1,
            &mut basis,
            &self.cfg.primal,
            &mut self.metrics,
        )?;
        if let PrimalOutcome::Unbounded { entering } = out1 {
            return Err(LpError::Shape(format!(
                "phase 1 reported unbounded at column {entering} (internal error)"
            )));
        }
        // Feasibility: phase-1 objective must be ~0.
        let x1 = assemble_point(&mut self.engine, view1, &basis)?;
        let infeasibility: f64 = -c1.iter().zip(&x1).map(|(ci, xi)| ci * xi).sum::<f64>();
        if infeasibility > self.cfg.dual.feas_tol.max(1e-7) * (1.0 + self.b.len() as f64) {
            // Phase-1 duals are a Farkas witness: with the phase-1 costs
            // still installed, y = c1_B B⁻¹ satisfies
            // Σⱼ min(zⱼlⱼ, zⱼuⱼ) = yᵀb + δ > yᵀb (δ = phase-1 infeasibility)
            // over the real columns (artificial/relaxed terms vanish by
            // phase-1 complementary slackness). That cancellation argument
            // covers artificials but NOT phase-1-relaxed cut slacks, whose
            // unbounded side can carry a wrong-sign zⱼ — so no witness is
            // published when cut rows are installed.
            self.farkas = if self.n_cuts == 0 {
                self.engine.dual_prices().ok()
            } else {
                None
            };
            self.basis = Some(basis);
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                x: Vec::new(),
                iterations: it1,
            });
        }

        // Transition to phase 2: relaxed columns whose phase-1 status was
        // AtUpper at a bound that phase 2 moves must be re-anchored. Cut
        // slacks AtUpper(0) become AtLower (same value, finite bound).
        for k in 0..self.n_cuts {
            let j = self.cut_slack_col(k);
            if basis.status[j] == VarStatus::AtUpper {
                basis.status[j] = VarStatus::AtLower;
            }
        }
        let (out2, it2) = self.run_phase2(&mut basis)?;
        self.finish(basis, out2, it1 + it2)
    }

    fn run_phase2(&mut self, basis: &mut Basis) -> LpResult<(PrimalOutcome, usize)> {
        let view = ProblemView {
            c: &self.c_real,
            lb: &self.lb,
            ub: &self.ub,
            b: &self.b,
        };
        primal_solve_traced(
            &mut self.engine,
            view,
            basis,
            &self.cfg.primal,
            &mut self.metrics,
        )
    }

    /// Like [`Self::resolve`], but with both drivers capped at `max_iters`
    /// iterations — the strong-branching probe mode. An iteration-limit hit
    /// is returned as `Err(LpError::IterationLimit)`; the stored basis is
    /// left at whatever state the probe reached (callers re-install warm
    /// bases per node anyway).
    pub fn resolve_limited(&mut self, max_iters: usize) -> LpResult<LpSolution> {
        let saved = self.cfg.clone();
        self.cfg.primal.max_iters = max_iters;
        self.cfg.dual.base.max_iters = max_iters;
        let out = self.resolve();
        self.cfg = saved;
        out
    }

    /// Warm re-solve after bound changes and/or added cuts: dual simplex to
    /// restore feasibility, then a primal polish. Requires a prior solve (or
    /// [`Self::set_warm_basis`]); falls back to [`Self::solve`] otherwise.
    pub fn resolve(&mut self) -> LpResult<LpSolution> {
        if self.basis.is_none() {
            return self.solve();
        }
        let t0 = self.engine.sim_now_ns();
        let out = self.resolve_inner();
        self.note_lp_call(names::LP_RESOLVES, "lp.resolve", t0, &out);
        out
    }

    fn resolve_inner(&mut self) -> LpResult<LpSolution> {
        self.farkas = None;
        let Some(mut basis) = self.basis.take() else {
            return self.solve_inner();
        };
        // Status repair: a bound relaxation can leave a nonbasic variable
        // "at" a bound that is now infinite. Re-anchor it to the finite side
        // (this may dent dual feasibility; the primal polish after the dual
        // pass restores optimality regardless).
        for j in 0..self.total_cols() {
            match basis.status[j] {
                VarStatus::AtLower if !self.lb[j].is_finite() => {
                    if self.ub[j].is_finite() {
                        basis.status[j] = VarStatus::AtUpper;
                    } else {
                        return Err(LpError::FreeVariable(j));
                    }
                }
                VarStatus::AtUpper if !self.ub[j].is_finite() => {
                    if self.lb[j].is_finite() {
                        basis.status[j] = VarStatus::AtLower;
                    } else {
                        return Err(LpError::FreeVariable(j));
                    }
                }
                _ => {}
            }
        }
        let view = ProblemView {
            c: &self.c_real,
            lb: &self.lb,
            ub: &self.ub,
            b: &self.b,
        };
        let (dout, dit) = match dual_solve_traced(
            &mut self.engine,
            view,
            &mut basis,
            &self.cfg.dual,
            &mut self.metrics,
        ) {
            Ok(r) => r,
            Err(LpError::IterationLimit { .. }) => {
                // Dual stall: highly degenerate bases (dense cut rows are
                // the usual culprit) can cycle the dual ratio test, which
                // has no Bland fallback. Discard the stalled basis and
                // re-solve cold — the two-phase primal driver carries
                // anti-cycling and the cost is one scratch solve.
                return self.solve_inner();
            }
            Err(e) => {
                // Keep the (partially pivoted) basis so the solver object
                // stays warm-startable after iteration-limit probes.
                self.basis = Some(basis);
                return Err(e);
            }
        };
        if let DualOutcome::Infeasible { row, below } = dout {
            // Extract the Farkas witness from the terminal dual row: with
            // ρ = B⁻ᵀe_row, the row `ρᵀA x = ρᵀb` restricted to the bound
            // box is violated (the failed ratio test proves the box-extreme
            // of ρᵀAx still misses ρᵀb). `below` ⇒ w = ρ, else w = −ρ.
            self.farkas = self.dual_ray(&basis, row, below);
            self.basis = Some(basis);
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: f64::NAN,
                x: Vec::new(),
                iterations: dit,
            });
        }
        let (pout, pit) = match self.run_phase2(&mut basis) {
            Ok(r) => r,
            Err(e) => {
                self.basis = Some(basis);
                return Err(e);
            }
        };
        self.finish(basis, pout, dit + pit)
    }

    /// Computes the Farkas witness `w = ±B⁻ᵀe_row` from the host mirror
    /// (best-effort: `None` on a singular basis snapshot).
    fn dual_ray(&self, basis: &Basis, row: usize, below: bool) -> Option<Vec<f64>> {
        let m = self.total_rows();
        let mut bmat = DenseMatrix::zeros(m, m);
        for (i, &j) in basis.cols.iter().enumerate() {
            for r in 0..m {
                bmat.set(r, i, self.mirror.get(r, j));
            }
        }
        let lu = gmip_linalg::LuFactors::factorize(&bmat).ok()?;
        let mut e_r = vec![0.0; m];
        e_r[row] = 1.0;
        let rho = lu.solve_transposed(&e_r).ok()?;
        Some(if below {
            rho
        } else {
            rho.iter().map(|v| -v).collect()
        })
    }

    fn finish(
        &mut self,
        basis: Basis,
        outcome: PrimalOutcome,
        iterations: usize,
    ) -> LpResult<LpSolution> {
        let view = ProblemView {
            c: &self.c_real,
            lb: &self.lb,
            ub: &self.ub,
            b: &self.b,
        };
        let solution = match outcome {
            PrimalOutcome::Unbounded { .. } => LpSolution {
                status: LpStatus::Unbounded,
                objective: f64::NAN,
                x: Vec::new(),
                iterations,
            },
            PrimalOutcome::Optimal => {
                let x_full = assemble_point(&mut self.engine, view, &basis)?;
                let x: Vec<f64> = x_full[..self.std.n_structural].to_vec();
                let objective = self.std.source_objective(&x);
                LpSolution {
                    status: LpStatus::Optimal,
                    objective,
                    x,
                    iterations,
                }
            }
        };
        self.basis = Some(basis);
        Ok(solution)
    }
}

/// Convenience: solves an instance's LP relaxation on the host engine.
pub fn solve_relaxation_host(
    mip: &gmip_problems::MipInstance,
    bound_changes: &[BoundChange],
) -> LpResult<LpSolution> {
    let std = StandardLp::from_instance(mip, bound_changes);
    let mut solver = LpSolver::new(std, LpConfig::standard(), |a| {
        crate::engine::HostEngine::new(a.clone())
    });
    solver.solve()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use gmip_problems::catalog::{
        infeasible_instance, textbook_lp, textbook_mip, unbounded_instance,
    };
    use gmip_problems::generators::{knapsack, set_cover, unit_commitment};

    fn host_solver(std: StandardLp) -> LpSolver<HostEngine> {
        LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()))
    }

    #[test]
    fn textbook_lp_solves_to_21() {
        let sol = solve_relaxation_host(&textbook_lp(), &[]).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective - 21.0).abs() < 1e-7,
            "obj = {}",
            sol.objective
        );
        assert!((sol.x[0] - 3.0).abs() < 1e-7);
        assert!((sol.x[1] - 1.5).abs() < 1e-7);
    }

    #[test]
    fn infeasible_and_unbounded_detected() {
        let sol = solve_relaxation_host(&infeasible_instance(), &[]).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
        let sol = solve_relaxation_host(&unbounded_instance(), &[]).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn knapsack_relaxation_bounds_brute_force() {
        use gmip_problems::generators::knapsack::knapsack_brute_force;
        for seed in 0..5 {
            let m = knapsack(12, 0.5, seed);
            let lp = solve_relaxation_host(&m, &[]).unwrap();
            assert_eq!(lp.status, LpStatus::Optimal, "seed {seed}");
            let best_int = knapsack_brute_force(&m);
            assert!(
                lp.objective >= best_int - 1e-7,
                "LP bound {} below integer optimum {} (seed {seed})",
                lp.objective,
                best_int
            );
            // LP relaxation of a knapsack has at most one fractional var, and
            // its value is the greedy bound — sanity: within the total value.
            assert!(lp.objective <= m.obj_coeffs().iter().sum::<f64>() + 1e-9);
        }
    }

    #[test]
    fn minimize_problem_reports_source_objective() {
        let m = set_cover(6, 5, 0.5, 3);
        let lp = solve_relaxation_host(&m, &[]).unwrap();
        assert_eq!(lp.status, LpStatus::Optimal);
        // A cover's LP bound is positive and at most the all-ones cost.
        let all_cost: f64 = m.obj_coeffs().iter().sum();
        assert!(lp.objective > 0.0);
        assert!(lp.objective <= all_cost + 1e-9);
    }

    #[test]
    fn mixed_instance_with_equalities() {
        // Unit commitment has only inequalities; build an Eq-row case via GAP.
        let m = gmip_problems::generators::generalized_assignment(2, 3, 5);
        let lp = solve_relaxation_host(&m, &[]).unwrap();
        assert_eq!(lp.status, LpStatus::Optimal);
        // Relaxation bound at least the best integer assignment's profit:
        // crude lower bound — any feasible fractional has obj ≤ LP bound.
        assert!(lp.objective > 0.0);
    }

    #[test]
    fn bound_changes_shrink_objective() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut solver = host_solver(std);
        let base = solver.solve().unwrap();
        solver.set_var_bounds(0, 0.0, 2.0).unwrap();
        let tightened = solver.resolve().unwrap();
        assert_eq!(tightened.status, LpStatus::Optimal);
        assert!(tightened.objective < base.objective);
        assert!((tightened.x[0] - 2.0).abs() < 1e-7);
        // Restore: objective returns.
        solver.apply_node_bounds(&[]).unwrap();
        let restored = solver.resolve().unwrap();
        assert!((restored.objective - base.objective).abs() < 1e-6);
    }

    #[test]
    fn warm_resolve_cheaper_than_scratch() {
        let m = unit_commitment(3, 3, 7);
        let std = StandardLp::from_instance(&m, &[]);
        let mut solver = host_solver(std.clone());
        let first = solver.solve().unwrap();
        assert_eq!(first.status, LpStatus::Optimal);
        // Tighten one binary to 1 (branch up) and re-solve warm.
        solver
            .apply_node_bounds(&[BoundChange {
                var: 0,
                lb: 1.0,
                ub: 1.0,
            }])
            .unwrap();
        let warm = solver.resolve().unwrap();
        assert_eq!(warm.status, LpStatus::Optimal);
        // From-scratch comparison.
        let mut fresh = host_solver(StandardLp::from_instance(
            &m,
            &[BoundChange {
                var: 0,
                lb: 1.0,
                ub: 1.0,
            }],
        ));
        let scratch = fresh.solve().unwrap();
        assert!((warm.objective - scratch.objective).abs() < 1e-6);
        assert!(
            warm.iterations <= scratch.iterations,
            "warm {} vs scratch {}",
            warm.iterations,
            scratch.iterations
        );
    }

    #[test]
    fn cuts_tighten_the_relaxation() {
        // Textbook MIP: LP optimum 21 at (3, 1.5). The cut x1 ≤ 1 is valid
        // for the integer hull side we care about… use a simple valid cut:
        // x0 + x1 ≤ 4 (holds at integer optimum (4,0)? 4+0=4 ✓; cuts off
        // (3,1.5) with 4.5 > 4).
        let std = StandardLp::from_instance(&textbook_mip(), &[]);
        let mut solver = host_solver(std);
        let base = solver.solve().unwrap();
        assert!((base.objective - 21.0).abs() < 1e-6);
        solver.add_cut(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        let cutted = solver.resolve().unwrap();
        assert_eq!(cutted.status, LpStatus::Optimal);
        assert!(cutted.objective < base.objective - 1e-6);
        // The cut must hold.
        assert!(cutted.x[0] + cutted.x[1] <= 4.0 + 1e-7);
    }

    #[test]
    fn cut_then_scratch_solve_also_works() {
        let std = StandardLp::from_instance(&textbook_mip(), &[]);
        let mut solver = host_solver(std);
        solver.add_cut(&[(0, 1.0), (1, 1.0)], 4.0).unwrap();
        let sol = solver.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(sol.x[0] + sol.x[1] <= 4.0 + 1e-7);
    }

    #[test]
    fn infeasible_after_branching() {
        let std = StandardLp::from_instance(&textbook_mip(), &[]);
        let mut solver = host_solver(std);
        solver.solve().unwrap();
        // x0 ≥ 5 conflicts with 6x0 ≤ 24.
        solver
            .apply_node_bounds(&[BoundChange {
                var: 0,
                lb: 5.0,
                ub: 10.0,
            }])
            .unwrap();
        let sol = solver.resolve().unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn dual_prices_satisfy_strong_duality() {
        // Textbook LP: max 5x+4y, 6x+4y ≤ 24, x+2y ≤ 6 → primal 21 at
        // (3, 1.5); duals y = (0.75, 0.5) (bᵀy = 24·0.75 + 6·0.5 = 21).
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut lp = host_solver(std);
        let sol = lp.solve().unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        let y = lp.dual_prices().unwrap();
        assert_eq!(y.len(), 2);
        assert!((y[0] - 0.75).abs() < 1e-7, "y = {y:?}");
        assert!((y[1] - 0.5).abs() < 1e-7);
        // Strong duality: bᵀy == primal objective.
        let by: f64 = lp.rhs().iter().zip(&y).map(|(b, yi)| b * yi).sum();
        assert!((by - sol.objective).abs() < 1e-7);
        // Unsolved solver refuses.
        let std2 = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut fresh = host_solver(std2);
        assert!(fresh.dual_prices().is_err());
    }

    #[test]
    fn dual_prices_agree_across_engines() {
        use crate::device_engine::DeviceEngine;
        use gmip_gpu::Accel;
        let m = set_cover(8, 8, 0.4, 6);
        let std = StandardLp::from_instance(&m, &[]);
        let mut host = host_solver(std.clone());
        host.solve().unwrap();
        let hy = host.dual_prices().unwrap();
        let accel = Accel::gpu(1);
        let mut dev = LpSolver::new(std, LpConfig::standard(), |a| {
            DeviceEngine::new(accel.clone(), a).unwrap()
        });
        dev.solve().unwrap();
        let dy = dev.dual_prices().unwrap();
        for (a, b) in hy.iter().zip(&dy) {
            assert!((a - b).abs() < 1e-9, "host {hy:?} vs device {dy:?}");
        }
    }

    #[test]
    fn devex_pricing_matches_dantzig_and_cuts_iterations() {
        use crate::simplex::PricingRule;
        use gmip_problems::generators::set_cover;
        // Degenerate covering LP: Devex should need no more (and usually far
        // fewer) iterations than Dantzig, at the same optimum.
        let m = set_cover(40, 40, 0.15, 3);
        let std = StandardLp::from_instance(&m, &[]);
        let run = |rule: PricingRule| {
            let mut cfg = LpConfig::standard();
            cfg.primal.pricing = rule;
            let mut lp = LpSolver::new(std.clone(), cfg, |a| HostEngine::new(a.clone()));
            lp.solve().unwrap()
        };
        let dantzig = run(PricingRule::Dantzig);
        let devex = run(PricingRule::Devex);
        assert_eq!(dantzig.status, LpStatus::Optimal);
        assert_eq!(devex.status, LpStatus::Optimal);
        assert!(
            (dantzig.objective - devex.objective).abs() < 1e-6,
            "dantzig {} vs devex {}",
            dantzig.objective,
            devex.objective
        );
        assert!(
            devex.iterations <= dantzig.iterations,
            "devex {} vs dantzig {} iterations",
            devex.iterations,
            dantzig.iterations
        );
    }

    #[test]
    fn devex_engines_agree() {
        use crate::device_engine::DeviceEngine;
        use crate::simplex::PricingRule;
        use crate::sparse_engine::SparseDeviceEngine;
        use gmip_gpu::Accel;
        let m = gmip_problems::generators::set_cover(12, 12, 0.3, 9);
        let std = StandardLp::from_instance(&m, &[]);
        let mut cfg = LpConfig::standard();
        cfg.primal.pricing = PricingRule::Devex;
        let mut host = LpSolver::new(std.clone(), cfg.clone(), |a| HostEngine::new(a.clone()));
        let hs = host.solve().unwrap();
        let acc = Accel::gpu(1);
        let mut dev = LpSolver::new(std.clone(), cfg.clone(), |a| {
            DeviceEngine::new(acc.clone(), a).unwrap()
        });
        let ds = dev.solve().unwrap();
        let acc2 = Accel::gpu(1);
        let mut sp = LpSolver::new(std, cfg, |a| {
            SparseDeviceEngine::new(acc2.clone(), a).unwrap()
        });
        let ss = sp.solve().unwrap();
        assert_eq!(hs.status, ds.status);
        assert_eq!(hs.status, ss.status);
        assert_eq!(hs.iterations, ds.iterations, "host vs dense device");
        assert_eq!(hs.iterations, ss.iterations, "host vs sparse device");
        assert!((hs.objective - ds.objective).abs() < 1e-8);
        assert!((hs.objective - ss.objective).abs() < 1e-8);
    }

    #[test]
    fn solver_metrics_count_solves_and_iterations() {
        use gmip_trace::names;
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut solver = host_solver(std);
        let first = solver.solve().unwrap();
        assert!(first.iterations > 0);
        let m = solver.metrics();
        assert_eq!(m.counter(names::LP_SOLVES), 1.0);
        assert_eq!(m.counter(names::LP_ITERATIONS), first.iterations as f64);
        let h = m.histogram(names::LP_ITERATIONS_PER_SOLVE).unwrap();
        assert_eq!(h.count, 1);
        // A warm re-solve lands in the resolve counter, not the solve one.
        solver.set_var_bounds(0, 0.0, 2.0).unwrap();
        solver.resolve().unwrap();
        let m = solver.metrics();
        assert_eq!(m.counter(names::LP_SOLVES), 1.0);
        assert_eq!(m.counter(names::LP_RESOLVES), 1.0);
        // Draining resets the window.
        let drained = solver.take_metrics();
        assert_eq!(drained.counter(names::LP_RESOLVES), 1.0);
        assert!(solver.metrics().is_empty());
    }

    #[test]
    fn warm_basis_shape_check() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        let mut solver = host_solver(std);
        let bad = Basis::with_basic_cols(vec![0], 2);
        assert!(solver.set_warm_basis(bad).is_err());
    }
}
