//! The pluggable node-LP layer.
//!
//! Branch-and-bound drivers only ever need one thing from the LP backend:
//! "solve the relaxation of this node (instance bounds plus these branch
//! changes), ideally warm-started from the parent, and tell me status,
//! objective, structural values, and a warm handoff for the children."
//! [`NodeLpEngine`] is that contract, and the three implementations make
//! the backend genuinely pluggable per node:
//!
//! * [`SimplexNodeEngine`] — the incumbent path: a persistent
//!   [`LpSolver`] over any [`SimplexEngine`], warm-started from a parent
//!   *basis* (dual re-solve) when one is offered.
//! * [`IpmNodeEngine`] — the path-following interior-point method of
//!   [`crate::ipm`], wrapped with the per-node presolve it needs inside a
//!   tree: branch-fixed columns are substituted into the right-hand side
//!   (the IPM rejects degenerate bounds), near-bound entries of the
//!   interior iterate are snapped, and any IPM failure (iteration limit,
//!   numerics, free columns) falls back to exact host simplex so the
//!   *status* reported to the tree is always exact.
//! * [`FirstOrderNodeEngine`] — a width-1 [`FirstOrderWaveEngine`]: the
//!   restarted-PDHG lane warm-starts from parent *iterates*, states a
//!   safe dual bound (so [`NodeLpOutcome::Pruned`] can retire the node
//!   after a handful of iterations), and hands converged lanes to exact
//!   host-simplex cleanup before the tree branches on them.
//!
//! Warm information flows through [`NodeWarmStart`] / [`NodeWarmHandoff`]
//! so a driver can thread whichever artifact its engine produces — a
//! basis for simplex, averaged `(x, y)` iterates for PDHG — without
//! knowing which engine it holds.

use crate::basis::Basis;
use crate::engine::{HostEngine, SimplexEngine};
use crate::firstorder::{FirstOrderWaveEngine, FoOutcome, PdhgConfig};
use crate::ipm::{solve_ipm, IpmConfig};
use crate::problem::{BoundChange, StandardLp};
use crate::solver::{LpConfig, LpSolution, LpSolver, LpStatus};
use crate::{LpError, LpResult};
use gmip_linalg::DenseMatrix;
use gmip_trace::MetricsRegistry;

/// Warm-start information offered to an engine for one node (borrowed
/// from the parent's handoff). Engines ignore shapes they cannot use.
#[derive(Debug, Clone, Copy, Default)]
pub enum NodeWarmStart<'a> {
    /// Cold start.
    #[default]
    None,
    /// A parent simplex basis (engine layout).
    Basis(&'a Basis),
    /// Parent first-order iterates: primal `x` over all standard-form
    /// columns and dual `y` over all rows.
    Iterates {
        /// Primal iterate, length `n` of the standard form.
        x: &'a [f64],
        /// Dual iterate, length `m` of the standard form.
        y: &'a [f64],
    },
}

/// Warm-start information an engine hands back for the node's children.
#[derive(Debug, Clone, Default)]
pub enum NodeWarmHandoff {
    /// Nothing reusable.
    #[default]
    None,
    /// The optimal basis of this node.
    Basis(Basis),
    /// The (averaged) first-order iterates of this node.
    Iterates {
        /// Primal iterate, length `n` of the standard form.
        x: Vec<f64>,
        /// Dual iterate, length `m` of the standard form.
        y: Vec<f64>,
    },
}

impl NodeWarmHandoff {
    /// Borrows the handoff as a [`NodeWarmStart`] for a child solve.
    pub fn as_start(&self) -> NodeWarmStart<'_> {
        match self {
            NodeWarmHandoff::None => NodeWarmStart::None,
            NodeWarmHandoff::Basis(b) => NodeWarmStart::Basis(b),
            NodeWarmHandoff::Iterates { x, y } => NodeWarmStart::Iterates { x, y },
        }
    }
}

/// Terminal outcome of one node-LP solve.
#[derive(Debug, Clone)]
pub enum NodeLpOutcome {
    /// The relaxation solved to (exact) optimality.
    Optimal {
        /// Objective in the *source* sense.
        objective: f64,
        /// Structural variable values.
        x: Vec<f64>,
        /// Iterations spent (engine-specific unit: pivots, IPM steps, or
        /// PDHG iterations plus cleanup pivots).
        iterations: usize,
        /// Warm information for the children.
        warm: NodeWarmHandoff,
    },
    /// The node's relaxation is infeasible.
    Infeasible,
    /// The relaxation is unbounded (the root should report this; in a
    /// tree it means the instance is unbounded).
    Unbounded,
    /// The engine proved the node cannot beat the incumbent it was told
    /// about via [`NodeLpEngine::set_incumbent`] without solving to
    /// optimality. `bound` is a *safe* objective bound in the source
    /// sense (an upper bound when maximizing, a lower bound when
    /// minimizing). Only bound-stating engines (first-order) produce
    /// this.
    Pruned {
        /// Safe objective bound in the source sense.
        bound: f64,
    },
}

/// A pluggable node-LP backend: solves one node's relaxation per call,
/// reusing internal state (factorizations, device matrices) across calls.
pub trait NodeLpEngine {
    /// Human-readable backend name (for traces and experiment tables).
    fn name(&self) -> &'static str;

    /// Solves the relaxation under `bounds` (branch changes relative to
    /// the instance bounds, as [`LpSolver::apply_node_bounds`] interprets
    /// them), optionally warm-started.
    fn solve_node(
        &mut self,
        bounds: &[BoundChange],
        warm: NodeWarmStart<'_>,
    ) -> LpResult<NodeLpOutcome>;

    /// Informs the engine of the best incumbent objective so far (source
    /// sense). Bound-stating engines use it to retire dominated nodes
    /// early as [`NodeLpOutcome::Pruned`]; others may ignore it.
    fn set_incumbent(&mut self, _objective: f64) {}

    /// Takes (and resets) the engine's accumulated metrics.
    fn take_metrics(&mut self) -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

// ---------------------------------------------------------------------------
// Simplex
// ---------------------------------------------------------------------------

/// [`NodeLpEngine`] over a persistent [`LpSolver`]: warm bases trigger a
/// dual re-solve, anything else is a cold two-phase solve.
#[derive(Debug)]
pub struct SimplexNodeEngine<E: SimplexEngine> {
    lp: LpSolver<E>,
}

impl SimplexNodeEngine<HostEngine> {
    /// Host-engine convenience constructor.
    pub fn host(std: StandardLp) -> Self {
        Self::new(LpSolver::new(std, LpConfig::standard(), |a| {
            HostEngine::new(a.clone())
        }))
    }
}

impl<E: SimplexEngine> SimplexNodeEngine<E> {
    /// Wraps an existing solver (any engine: host, device, sparse).
    pub fn new(lp: LpSolver<E>) -> Self {
        Self { lp }
    }

    /// The wrapped solver.
    pub fn solver_mut(&mut self) -> &mut LpSolver<E> {
        &mut self.lp
    }
}

fn simplex_outcome<E: SimplexEngine>(lp: &LpSolver<E>, sol: LpSolution) -> NodeLpOutcome {
    match sol.status {
        LpStatus::Optimal => NodeLpOutcome::Optimal {
            objective: sol.objective,
            x: sol.x,
            iterations: sol.iterations,
            warm: lp
                .basis()
                .cloned()
                .map_or(NodeWarmHandoff::None, NodeWarmHandoff::Basis),
        },
        LpStatus::Infeasible => NodeLpOutcome::Infeasible,
        LpStatus::Unbounded => NodeLpOutcome::Unbounded,
    }
}

impl<E: SimplexEngine> NodeLpEngine for SimplexNodeEngine<E> {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn solve_node(
        &mut self,
        bounds: &[BoundChange],
        warm: NodeWarmStart<'_>,
    ) -> LpResult<NodeLpOutcome> {
        self.lp.apply_node_bounds(bounds)?;
        let sol = match warm {
            // A shape-mismatched basis (e.g. cuts were added since) just
            // degrades to a cold solve — never an error.
            NodeWarmStart::Basis(b) if self.lp.set_warm_basis(b.clone()).is_ok() => {
                self.lp.resolve()?
            }
            _ => self.lp.solve()?,
        };
        Ok(simplex_outcome(&self.lp, sol))
    }

    fn take_metrics(&mut self) -> MetricsRegistry {
        self.lp.take_metrics()
    }
}

// ---------------------------------------------------------------------------
// IPM
// ---------------------------------------------------------------------------

/// [`NodeLpEngine`] over the path-following IPM, with the per-node
/// presolve a tree context requires: branch-fixed columns (the IPM
/// rejects degenerate bounds) are substituted into `b`, and IPM failures
/// fall back to exact host simplex so the reported *status* is exact.
#[derive(Debug)]
pub struct IpmNodeEngine {
    std: StandardLp,
    cfg: IpmConfig,
    metrics: MetricsRegistry,
}

/// Bound width below which a column counts as branch-fixed.
const FIX_TOL: f64 = 1e-9;
/// Distance within which an interior iterate snaps to its bound.
const SNAP_TOL: f64 = 1e-5;

impl IpmNodeEngine {
    /// Creates the engine over a standard form.
    pub fn new(std: StandardLp, cfg: IpmConfig) -> Self {
        Self {
            std,
            cfg,
            metrics: MetricsRegistry::new(),
        }
    }

    /// Node bounds in full standard-form layout.
    fn node_bounds(&self, bounds: &[BoundChange]) -> LpResult<(Vec<f64>, Vec<f64>)> {
        let mut lb = self.std.lb.clone();
        let mut ub = self.std.ub.clone();
        for bc in bounds {
            if bc.var >= self.std.n_structural {
                return Err(LpError::Shape(format!(
                    "bound change on non-structural column {}",
                    bc.var
                )));
            }
            lb[bc.var] = bc.lb;
            ub[bc.var] = bc.ub;
        }
        Ok((lb, ub))
    }

    /// Substitutes fixed structural columns into `b`, returning the
    /// reduced problem, the kept→original column map, the fixed values
    /// (by original index), and the fixed objective contribution in the
    /// *internal* (maximize) sense. Slack columns (`ub = +∞`) are never
    /// fixed, so only structural indices shift.
    fn reduce(&self, lb: &[f64], ub: &[f64]) -> (StandardLp, Vec<usize>, Vec<(usize, f64)>, f64) {
        let (m, n) = (self.std.m(), self.std.n());
        let mut kept = Vec::with_capacity(n);
        let mut fixed = Vec::new();
        let mut fixed_internal = 0.0;
        let mut b = self.std.b.clone();
        for j in 0..n {
            if ub[j] - lb[j] < FIX_TOL {
                let v = lb[j];
                for i in 0..m {
                    b[i] -= self.std.a.get(i, j) * v;
                }
                fixed_internal += self.std.c[j] * v;
                fixed.push((j, v));
            } else {
                kept.push(j);
            }
        }
        let mut a = DenseMatrix::zeros(m, kept.len());
        for (jj, &j) in kept.iter().enumerate() {
            for i in 0..m {
                a.set(i, jj, self.std.a.get(i, j));
            }
        }
        let n_fixed_structural = fixed
            .iter()
            .filter(|&&(j, _)| j < self.std.n_structural)
            .count();
        let reduced = StandardLp {
            a,
            b,
            c: kept.iter().map(|&j| self.std.c[j]).collect(),
            lb: kept.iter().map(|&j| lb[j]).collect(),
            ub: kept.iter().map(|&j| ub[j]).collect(),
            n_structural: self.std.n_structural - n_fixed_structural,
            negated: self.std.negated,
            slacks: self
                .std
                .slacks
                .iter()
                .map(|&(col, row, coef)| (col - n_fixed_structural, row, coef))
                .collect(),
        };
        (reduced, kept, fixed, fixed_internal)
    }

    /// Exact fallback for nodes the IPM cannot finish.
    fn simplex_fallback(&mut self, bounds: &[BoundChange]) -> LpResult<NodeLpOutcome> {
        self.metrics.incr("ipm.simplex_fallbacks", 1.0);
        let mut lp = LpSolver::new(self.std.clone(), LpConfig::standard(), |a| {
            HostEngine::new(a.clone())
        });
        lp.apply_node_bounds(bounds)?;
        let sol = lp.solve()?;
        // IPM hands off nothing reusable; neither does its fallback.
        Ok(match simplex_outcome(&lp, sol) {
            NodeLpOutcome::Optimal {
                objective,
                x,
                iterations,
                ..
            } => NodeLpOutcome::Optimal {
                objective,
                x,
                iterations,
                warm: NodeWarmHandoff::None,
            },
            other => other,
        })
    }
}

impl NodeLpEngine for IpmNodeEngine {
    fn name(&self) -> &'static str {
        "ipm"
    }

    fn solve_node(
        &mut self,
        bounds: &[BoundChange],
        _warm: NodeWarmStart<'_>,
    ) -> LpResult<NodeLpOutcome> {
        let (lb, ub) = self.node_bounds(bounds)?;
        let (reduced, kept, fixed, fixed_internal) = self.reduce(&lb, &ub);
        let src_sign = if self.std.negated { -1.0 } else { 1.0 };

        if reduced.c.is_empty() {
            // Every column fixed: the node is a point; feasibility is a
            // direct residual check.
            let feasible = reduced.b.iter().all(|&r| r.abs() <= 1e-7);
            return Ok(if feasible {
                let mut x = vec![0.0; self.std.n_structural];
                for &(j, v) in &fixed {
                    if j < self.std.n_structural {
                        x[j] = v;
                    }
                }
                NodeLpOutcome::Optimal {
                    objective: src_sign * fixed_internal,
                    x,
                    iterations: 0,
                    warm: NodeWarmHandoff::None,
                }
            } else {
                NodeLpOutcome::Infeasible
            });
        }

        match solve_ipm(&reduced, &self.cfg, None) {
            Ok(sol) => {
                self.metrics.incr("ipm.node_solves", 1.0);
                self.metrics.incr("ipm.iterations", sol.iterations as f64);
                // Re-inflate the structural vector and snap interior
                // values that hug a bound (crossover-lite, so branching
                // sees clean integral values).
                let mut x = vec![0.0; self.std.n_structural];
                for &(j, v) in &fixed {
                    if j < self.std.n_structural {
                        x[j] = v;
                    }
                }
                for (jj, &j) in kept.iter().enumerate() {
                    if j < self.std.n_structural {
                        let mut v = sol.x[reduced_structural_index(&reduced, jj)];
                        if (v - lb[j]).abs() <= SNAP_TOL {
                            v = lb[j];
                        } else if (ub[j] - v).abs() <= SNAP_TOL {
                            v = ub[j];
                        }
                        x[j] = v;
                    }
                }
                Ok(NodeLpOutcome::Optimal {
                    objective: sol.objective + src_sign * fixed_internal,
                    x,
                    iterations: sol.iterations,
                    warm: NodeWarmHandoff::None,
                })
            }
            // Infeasible nodes surface as iteration limits; degenerate or
            // free columns as shape errors. All get the exact answer from
            // the simplex fallback rather than a guess.
            Err(
                LpError::IterationLimit { .. }
                | LpError::Numerics(_)
                | LpError::Shape(_)
                | LpError::FreeVariable(_),
            ) => self.simplex_fallback(bounds),
            Err(e) => Err(e),
        }
    }

    fn take_metrics(&mut self) -> MetricsRegistry {
        std::mem::replace(&mut self.metrics, MetricsRegistry::new())
    }
}

/// Index of reduced column `jj` within the reduced solution's structural
/// vector (the IPM returns structural values only; kept structural
/// columns precede kept slacks, so the index is identity for them).
fn reduced_structural_index(reduced: &StandardLp, jj: usize) -> usize {
    debug_assert!(jj < reduced.n_structural);
    jj
}

// ---------------------------------------------------------------------------
// First-order
// ---------------------------------------------------------------------------

/// [`NodeLpEngine`] over a width-1 [`FirstOrderWaveEngine`]: PDHG states
/// the node's safe bound (so incumbent-dominated nodes retire early as
/// [`NodeLpOutcome::Pruned`]) and converged or iteration-capped lanes are
/// finished by exact host-simplex cleanup before the outcome is reported.
#[derive(Debug)]
pub struct FirstOrderNodeEngine {
    std: StandardLp,
    fo: FirstOrderWaveEngine,
    cleanup: LpSolver<HostEngine>,
    next_token: u64,
}

impl FirstOrderNodeEngine {
    /// Creates the engine; `accel` hosts the shared CSR matrix and the
    /// single lane's state.
    pub fn new(accel: gmip_gpu::Accel, std: StandardLp, cfg: PdhgConfig) -> LpResult<Self> {
        let fo = FirstOrderWaveEngine::new(accel, &std, 1, cfg)?;
        let cleanup = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
            HostEngine::new(a.clone())
        });
        Ok(Self {
            std,
            fo,
            cleanup,
            next_token: 0,
        })
    }
}

impl NodeLpEngine for FirstOrderNodeEngine {
    fn name(&self) -> &'static str {
        "firstorder"
    }

    fn solve_node(
        &mut self,
        bounds: &[BoundChange],
        warm: NodeWarmStart<'_>,
    ) -> LpResult<NodeLpOutcome> {
        let mut lb = self.std.lb.clone();
        let mut ub = self.std.ub.clone();
        for bc in bounds {
            if bc.var >= self.std.n_structural {
                return Err(LpError::Shape(format!(
                    "bound change on non-structural column {}",
                    bc.var
                )));
            }
            lb[bc.var] = bc.lb;
            ub[bc.var] = bc.ub;
        }
        let warm_iter = match warm {
            NodeWarmStart::Iterates { x, y } => Some((x, y)),
            _ => None,
        };
        let token = self.next_token;
        self.next_token += 1;
        self.fo.load_lane(0, token, &lb, &ub, warm_iter)?;
        self.fo.run_to_retire();
        let report = self.fo.take_lane(0)?;
        match report.outcome {
            FoOutcome::Infeasible => Ok(NodeLpOutcome::Infeasible),
            FoOutcome::BoundPruned => {
                let sign = if self.std.negated { -1.0 } else { 1.0 };
                Ok(NodeLpOutcome::Pruned {
                    bound: sign * report.safe_bound,
                })
            }
            FoOutcome::Converged | FoOutcome::IterLimit => {
                // Exact cleanup before the tree acts on the node, as the
                // paper prescribes for first-order node LPs.
                self.cleanup.apply_node_bounds(bounds)?;
                let sol = self.cleanup.solve()?;
                Ok(match sol.status {
                    LpStatus::Optimal => NodeLpOutcome::Optimal {
                        objective: sol.objective,
                        x: sol.x,
                        iterations: report.iterations + sol.iterations,
                        warm: NodeWarmHandoff::Iterates {
                            x: report.x,
                            y: report.y,
                        },
                    },
                    LpStatus::Infeasible => NodeLpOutcome::Infeasible,
                    LpStatus::Unbounded => NodeLpOutcome::Unbounded,
                })
            }
        }
    }

    fn set_incumbent(&mut self, objective: f64) {
        // Internal maximize sense for the lane's safe-bound cutoff.
        let internal = if self.std.negated {
            -objective
        } else {
            objective
        };
        self.fo.set_cutoff(internal);
    }

    fn take_metrics(&mut self) -> MetricsRegistry {
        let mut m = self.fo.take_metrics();
        m.merge(&self.cleanup.take_metrics());
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_relaxation_host;
    use gmip_gpu::Accel;
    use gmip_problems::catalog::{textbook_lp, textbook_mip};

    fn engines(std: &StandardLp) -> Vec<Box<dyn NodeLpEngine>> {
        vec![
            Box::new(SimplexNodeEngine::host(std.clone())),
            Box::new(IpmNodeEngine::new(std.clone(), IpmConfig::default())),
            Box::new(
                FirstOrderNodeEngine::new(Accel::gpu(1), std.clone(), PdhgConfig::default())
                    .unwrap(),
            ),
        ]
    }

    #[test]
    fn all_engines_agree_on_root_relaxation() {
        let mip = textbook_mip();
        let std = StandardLp::from_instance(&mip, &[]);
        let reference = solve_relaxation_host(&mip, &[]).unwrap();
        for mut e in engines(&std) {
            match e.solve_node(&[], NodeWarmStart::None).unwrap() {
                NodeLpOutcome::Optimal { objective, x, .. } => {
                    assert!(
                        (objective - reference.objective).abs() <= 1e-5,
                        "{}: {objective} vs {}",
                        e.name(),
                        reference.objective
                    );
                    assert_eq!(x.len(), std.n_structural, "{}", e.name());
                }
                other => panic!("{}: unexpected {:?}", e.name(), other),
            }
        }
    }

    #[test]
    fn all_engines_agree_on_branched_node_with_fixed_binary() {
        let mip = textbook_mip();
        // Fixing a variable exercises the IPM's substitution presolve.
        let fix = vec![BoundChange {
            var: 0,
            lb: 1.0,
            ub: 1.0,
        }];
        let std = StandardLp::from_instance(&mip, &[]);
        let reference = solve_relaxation_host(&mip, &fix).unwrap();
        for mut e in engines(&std) {
            match e.solve_node(&fix, NodeWarmStart::None).unwrap() {
                NodeLpOutcome::Optimal { objective, x, .. } => {
                    assert!(
                        (objective - reference.objective).abs() <= 1e-5,
                        "{}: {objective} vs {}",
                        e.name(),
                        reference.objective
                    );
                    assert!((x[0] - 1.0).abs() <= 1e-6, "{}: x0={}", e.name(), x[0]);
                }
                other => panic!("{}: unexpected {:?}", e.name(), other),
            }
        }
    }

    #[test]
    fn all_engines_detect_infeasible_node() {
        let mip = textbook_mip();
        let std = StandardLp::from_instance(&mip, &[]);
        // An activity-impossible fixing.
        let fix = vec![BoundChange {
            var: 0,
            lb: 1e6,
            ub: 1e6,
        }];
        for mut e in engines(&std) {
            match e.solve_node(&fix, NodeWarmStart::None).unwrap() {
                NodeLpOutcome::Infeasible => {}
                other => panic!("{}: unexpected {:?}", e.name(), other),
            }
        }
    }

    #[test]
    fn warm_handoffs_round_trip_through_their_engines() {
        let std = StandardLp::from_instance(&textbook_lp(), &[]);
        // Simplex hands back a basis; re-solving warm is not slower.
        let mut sx = SimplexNodeEngine::host(std.clone());
        let NodeLpOutcome::Optimal {
            warm, iterations, ..
        } = sx.solve_node(&[], NodeWarmStart::None).unwrap()
        else {
            panic!("optimal expected")
        };
        assert!(matches!(warm, NodeWarmHandoff::Basis(_)));
        let NodeLpOutcome::Optimal {
            iterations: warm_iters,
            ..
        } = sx.solve_node(&[], warm.as_start()).unwrap()
        else {
            panic!("optimal expected")
        };
        assert!(warm_iters <= iterations, "{warm_iters} vs {iterations}");

        // First-order hands back iterates; the warm solve converges in
        // fewer PDHG iterations.
        let mut fo =
            FirstOrderNodeEngine::new(Accel::gpu(1), std.clone(), PdhgConfig::default()).unwrap();
        let NodeLpOutcome::Optimal {
            warm, iterations, ..
        } = fo.solve_node(&[], NodeWarmStart::None).unwrap()
        else {
            panic!("optimal expected")
        };
        assert!(matches!(warm, NodeWarmHandoff::Iterates { .. }));
        let NodeLpOutcome::Optimal {
            iterations: warm_iters,
            ..
        } = fo.solve_node(&[], warm.as_start()).unwrap()
        else {
            panic!("optimal expected")
        };
        assert!(warm_iters <= iterations, "{warm_iters} vs {iterations}");
    }

    #[test]
    fn first_order_engine_prunes_against_incumbent() {
        let mip = textbook_mip();
        let std = StandardLp::from_instance(&mip, &[]);
        let reference = solve_relaxation_host(&mip, &[]).unwrap();
        let mut fo =
            FirstOrderNodeEngine::new(Accel::gpu(1), std.clone(), PdhgConfig::default()).unwrap();
        // An (artificial) incumbent far above the relaxation bound
        // dominates the node outright.
        fo.set_incumbent(reference.objective + 1e3);
        match fo.solve_node(&[], NodeWarmStart::None).unwrap() {
            NodeLpOutcome::Pruned { bound } => {
                // The safe bound must not cut off the true optimum.
                assert!(bound >= reference.objective - 1e-6, "{bound}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
