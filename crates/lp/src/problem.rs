//! Lowering a MIP's linear relaxation to bounded-variable equality standard
//! form.
//!
//! The paper (Section 2.1): "the inequality of Ax ≤ b can be replaced with
//! equality ... with the introduction of variables y ≥ 0 to capture the
//! inequality slack. Also, upper and lower bounds, if any, on x are implicit".
//! [`StandardLp`] is that form: maximize `cᵀx` s.t. `Ax = b`, `l ≤ x ≤ u`,
//! with one slack column per inequality row, plus per-node bound overrides
//! (Section 5.3's "new bounds added for a subset of variables") and appended
//! cut rows (Section 5.2).

use gmip_linalg::DenseMatrix;
use gmip_problems::{MipInstance, Sense};

/// Bounded-variable equality-form LP: maximize `cᵀx`, `Ax = b`, `lb ≤ x ≤ ub`.
///
/// Columns are ordered: structural variables (matching the source
/// [`MipInstance`]), then one slack per inequality row, then any cut slacks
/// appended later. Equality rows get no slack.
#[derive(Debug, Clone)]
pub struct StandardLp {
    /// Equality-form constraint matrix, `m × n`.
    pub a: DenseMatrix,
    /// Right-hand side, length `m`.
    pub b: Vec<f64>,
    /// Objective (maximize), length `n`.
    pub c: Vec<f64>,
    /// Lower bounds, length `n` (may be `-inf`).
    pub lb: Vec<f64>,
    /// Upper bounds, length `n` (may be `+inf`).
    pub ub: Vec<f64>,
    /// Number of structural columns (prefix of the column order).
    pub n_structural: usize,
    /// Whether the source objective was a minimization (the lowering negates
    /// `c`, and solution objectives are negated back).
    pub negated: bool,
    /// Slack bookkeeping: `(column, row, coefficient)` for each inequality
    /// slack, in row order — used by cut generators to substitute slacks
    /// back out of tableau-derived cuts.
    pub slacks: Vec<(usize, usize, f64)>,
}

/// A per-node bound override on a structural variable — how branch decisions
/// reach the LP without touching the matrix (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundChange {
    /// Structural variable index.
    pub var: usize,
    /// New lower bound.
    pub lb: f64,
    /// New upper bound.
    pub ub: f64,
}

impl StandardLp {
    /// Lowers the LP relaxation of `mip` (integrality dropped), applying
    /// `bound_changes` on top of the instance bounds.
    pub fn from_instance(mip: &MipInstance, bound_changes: &[BoundChange]) -> Self {
        let n_structural = mip.num_vars();
        let m = mip.num_cons();
        let n_slack = mip.cons.iter().filter(|c| c.sense != Sense::Eq).count();
        let n = n_structural + n_slack;

        let mut a = DenseMatrix::zeros(m, n);
        let mut b = Vec::with_capacity(m);
        let mut c = vec![0.0; n];
        let mut lb = vec![0.0; n];
        let mut ub = vec![f64::INFINITY; n];

        let sign = if mip.objective == gmip_problems::Objective::Minimize {
            -1.0
        } else {
            1.0
        };
        for (j, v) in mip.vars.iter().enumerate() {
            c[j] = sign * v.obj;
            lb[j] = v.lb;
            ub[j] = v.ub;
        }
        for bc in bound_changes {
            debug_assert!(bc.var < n_structural);
            lb[bc.var] = bc.lb;
            ub[bc.var] = bc.ub;
        }

        let mut slack = n_structural;
        let mut slacks = Vec::new();
        for (i, con) in mip.cons.iter().enumerate() {
            for &(j, v) in &con.coeffs {
                a.set(i, j, v);
            }
            b.push(con.rhs);
            match con.sense {
                Sense::Le => {
                    // aᵀx + s = rhs, s ≥ 0.
                    a.set(i, slack, 1.0);
                    slacks.push((slack, i, 1.0));
                    slack += 1;
                }
                Sense::Ge => {
                    // aᵀx − s = rhs, s ≥ 0.
                    a.set(i, slack, -1.0);
                    slacks.push((slack, i, -1.0));
                    slack += 1;
                }
                Sense::Eq => {}
            }
        }
        debug_assert_eq!(slack, n);

        Self {
            a,
            b,
            c,
            lb,
            ub,
            n_structural,
            negated: sign < 0.0,
            slacks,
        }
    }

    /// Number of rows.
    pub fn m(&self) -> usize {
        self.b.len()
    }

    /// Number of columns (structural + slacks + cut slacks).
    pub fn n(&self) -> usize {
        self.c.len()
    }

    /// Appends a cut row `coeffsᵀ x_structural ≤ rhs`: adds the row (padded
    /// with zeros over non-structural columns), a fresh slack column, and the
    /// corresponding `b`/`c`/bound entries. Returns the new slack's column
    /// index.
    pub fn add_cut_row(&mut self, coeffs: &[(usize, f64)], rhs: f64) -> usize {
        let n_before = self.n();
        let mut row = vec![0.0; n_before];
        for &(j, v) in coeffs {
            debug_assert!(j < self.n_structural, "cuts are over structural vars");
            row[j] = v;
        }
        self.a.push_row(&row).expect("row width matches");
        let m_now = self.a.rows();
        let mut slack_col = vec![0.0; m_now];
        slack_col[m_now - 1] = 1.0;
        self.a.push_col(&slack_col).expect("col height matches");
        self.b.push(rhs);
        self.c.push(0.0);
        self.lb.push(0.0);
        self.ub.push(f64::INFINITY);
        n_before
    }

    /// Objective value in the *source instance's* sense for a structural
    /// point (undoes the internal negation for minimize problems).
    pub fn source_objective(&self, structural_x: &[f64]) -> f64 {
        let raw: f64 = self.c[..self.n_structural]
            .iter()
            .zip(structural_x)
            .map(|(ci, xi)| ci * xi)
            .sum();
        if self.negated {
            -raw
        } else {
            raw
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmip_problems::catalog::{textbook_lp, textbook_mip};
    use gmip_problems::generators::unit_commitment;
    use gmip_problems::{Constraint, MipInstance, Objective, Sense as S, Variable};

    #[test]
    fn textbook_lowering() {
        let lp = StandardLp::from_instance(&textbook_lp(), &[]);
        // 2 structural + 2 slacks.
        assert_eq!(lp.n(), 4);
        assert_eq!(lp.m(), 2);
        assert_eq!(lp.n_structural, 2);
        assert!(!lp.negated);
        // Row 0: 6x + 4y + s0 = 24.
        assert_eq!(lp.a.get(0, 0), 6.0);
        assert_eq!(lp.a.get(0, 2), 1.0);
        assert_eq!(lp.a.get(0, 3), 0.0);
        assert_eq!(lp.b, vec![24.0, 6.0]);
        assert_eq!(lp.c, vec![5.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn minimize_is_negated() {
        let mut m = MipInstance::new("min", Objective::Minimize);
        m.add_var(Variable::continuous("x", 0.0, 10.0, 3.0));
        m.add_con(Constraint::new("c", vec![(0, 1.0)], S::Ge, 2.0));
        let lp = StandardLp::from_instance(&m, &[]);
        assert!(lp.negated);
        assert_eq!(lp.c[0], -3.0);
        // Ge slack has coefficient −1.
        assert_eq!(lp.a.get(0, 1), -1.0);
        // source_objective undoes negation.
        assert_eq!(lp.source_objective(&[2.0]), 6.0);
    }

    #[test]
    fn equality_rows_get_no_slack() {
        let mut m = MipInstance::new("eq", Objective::Maximize);
        m.add_var(Variable::continuous("x", 0.0, 5.0, 1.0));
        m.add_var(Variable::continuous("y", 0.0, 5.0, 1.0));
        m.add_con(Constraint::new("e", vec![(0, 1.0), (1, 1.0)], S::Eq, 3.0));
        m.add_con(Constraint::new("l", vec![(0, 2.0)], S::Le, 4.0));
        let lp = StandardLp::from_instance(&m, &[]);
        assert_eq!(lp.n(), 3); // 2 structural + 1 slack (only the Le row)
        assert_eq!(lp.a.get(0, 2), 0.0);
        assert_eq!(lp.a.get(1, 2), 1.0);
    }

    #[test]
    fn bound_changes_apply() {
        let lp = StandardLp::from_instance(
            &textbook_mip(),
            &[BoundChange {
                var: 0,
                lb: 2.0,
                ub: 3.0,
            }],
        );
        assert_eq!(lp.lb[0], 2.0);
        assert_eq!(lp.ub[0], 3.0);
        // Other bounds untouched.
        assert_eq!(lp.lb[1], 0.0);
        assert_eq!(lp.ub[1], 10.0);
    }

    #[test]
    fn add_cut_grows_both_dimensions() {
        let mut lp = StandardLp::from_instance(&textbook_lp(), &[]);
        let (m0, n0) = (lp.m(), lp.n());
        let slack = lp.add_cut_row(&[(0, 1.0), (1, 1.0)], 4.0);
        assert_eq!(slack, n0);
        assert_eq!(lp.m(), m0 + 1);
        assert_eq!(lp.n(), n0 + 1);
        // Cut row: x + y + s_cut = 4, zeros elsewhere.
        assert_eq!(lp.a.get(m0, 0), 1.0);
        assert_eq!(lp.a.get(m0, 1), 1.0);
        assert_eq!(lp.a.get(m0, n0), 1.0);
        assert_eq!(lp.b[m0], 4.0);
        // Older rows have a zero in the new column.
        assert_eq!(lp.a.get(0, n0), 0.0);
    }

    #[test]
    fn mixed_instance_lowering_shape() {
        let m = unit_commitment(2, 2, 1);
        let lp = StandardLp::from_instance(&m, &[]);
        assert_eq!(lp.n_structural, m.num_vars());
        assert_eq!(lp.m(), m.num_cons());
        // All rows here are inequalities → one slack each.
        assert_eq!(lp.n(), m.num_vars() + m.num_cons());
    }
}
