//! The dual simplex driver.
//!
//! This is the warm-start workhorse of branch-and-cut (Sections 5.2, 5.3):
//! after a branching bound change or an appended cut, the parent's optimal
//! basis stays *dual* feasible while the primal point may violate a bound.
//! The dual simplex repairs primal feasibility in a handful of pivots
//! instead of re-solving from scratch — on the device engine this reuses
//! the device-resident matrix with zero matrix transfer, which is exactly
//! the reuse pattern the paper prescribes.

use crate::basis::{Basis, VarStatus};
use crate::engine::{PivotPlan, ProblemView, SimplexEngine};
use crate::simplex::{note_refactorization, PrimalConfig};
use crate::{LpError, LpResult};
use gmip_trace::{names, MetricsRegistry};

/// Terminal outcome of a dual run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DualOutcome {
    /// All basic variables are within bounds — the point is primal feasible
    /// (and optimal, if dual feasibility was maintained).
    PrimalFeasible,
    /// The dual is unbounded ⇒ the primal LP is infeasible. The payload
    /// identifies the certifying pivot row so a Farkas witness can be
    /// extracted: `row` is the leaving row whose dual ratio test found no
    /// entering column, `below` whether its basic variable violated its
    /// lower (vs upper) bound.
    Infeasible {
        /// Leaving row of the terminal dual iteration.
        row: usize,
        /// `true` if the row's basic variable was below its lower bound.
        below: bool,
    },
}

/// Tuning knobs of the dual driver (reuses the primal's tolerances).
#[derive(Debug, Clone, Default)]
pub struct DualConfig {
    /// Shared tolerances and limits.
    pub base: PrimalConfig,
    /// Bound-violation tolerance for selecting the leaving row.
    pub feas_tol: f64,
}

impl DualConfig {
    /// Default configuration (feasibility tolerance 1e-7).
    pub fn standard() -> Self {
        Self {
            base: PrimalConfig::default(),
            feas_tol: 1e-7,
        }
    }
}

/// Runs the dual simplex from `basis`, which must be dual feasible (e.g. a
/// previously optimal basis after bound changes or cut rows). Mutates
/// `basis`; returns the outcome and iteration count.
pub fn dual_solve<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &mut Basis,
    cfg: &DualConfig,
) -> LpResult<(DualOutcome, usize)> {
    dual_solve_traced(engine, view, basis, cfg, &mut MetricsRegistry::new())
}

/// [`dual_solve`] with instrumentation mirroring
/// [`crate::simplex::primal_solve_traced`]: iteration and refactorization
/// counts accumulate into `metrics`.
pub fn dual_solve_traced<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &mut Basis,
    cfg: &DualConfig,
    metrics: &mut MetricsRegistry,
) -> LpResult<(DualOutcome, usize)> {
    let out = dual_loop(engine, view, basis, cfg, metrics);
    match &out {
        Ok((_, iters)) => metrics.incr(names::LP_ITERATIONS, *iters as f64),
        Err(LpError::IterationLimit { iterations }) => {
            metrics.incr(names::LP_ITERATIONS, *iterations as f64)
        }
        Err(_) => {}
    }
    out
}

fn dual_loop<E: SimplexEngine>(
    engine: &mut E,
    view: ProblemView<'_>,
    basis: &mut Basis,
    cfg: &DualConfig,
    metrics: &mut MetricsRegistry,
) -> LpResult<(DualOutcome, usize)> {
    engine.install(view, basis)?;
    for iter in 0..cfg.base.max_iters {
        if engine.eta_count() >= cfg.base.refactor_every {
            engine.install(view, basis)?;
            note_refactorization(engine, metrics);
        }
        // --- leaving row: the worst bound violation ---
        let Some((r, _viol, below)) = engine.primal_infeas(cfg.feas_tol)? else {
            return Ok((DualOutcome::PrimalFeasible, iter));
        };
        // --- entering column via the dual ratio test on the BTRAN row ---
        engine.btran_row(r)?;
        let Some((q, _ratio)) = engine.dual_ratio(below, cfg.base.ratio_tol)? else {
            return Ok((DualOutcome::Infeasible { row: r, below }, iter));
        };
        let alpha_rq = engine.alpha_r_entry(q)?;
        if alpha_rq.abs() < cfg.base.ratio_tol {
            return Err(LpError::Shape(format!(
                "dual pivot on numerically zero alpha_r[{q}]"
            )));
        }

        // --- pivot geometry ---
        let leaving_j = basis.cols[r];
        let target = if below {
            view.lb[leaving_j]
        } else {
            view.ub[leaving_j]
        };
        let xbr = engine.basic_entry(r)?;
        let delta = (xbr - target) / alpha_rq;
        let xq_old = basis.nonbasic_value(q, view.lb, view.ub);
        let entering_val = xq_old + delta;

        engine.ftran_column(q)?;
        let leaving_to = if below {
            VarStatus::AtLower
        } else {
            VarStatus::AtUpper
        };
        engine.apply_pivot(&PivotPlan {
            r,
            q,
            leaving_j,
            dir: 1.0,
            t: delta,
            entering_val,
            leaving_sigma: leaving_to.sigma(),
            c_q: view.c[q],
            lb_q: view.lb[q],
            ub_q: view.ub[q],
        })?;
        basis.pivot(r, q, leaving_to);
    }
    Err(LpError::IterationLimit {
        iterations: cfg.base.max_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use crate::simplex::{assemble_point, primal_solve, PrimalOutcome};
    use gmip_linalg::DenseMatrix;

    /// Solve the textbook LP to optimality, then tighten a bound and repair
    /// with the dual simplex; the result must match a from-scratch solve.
    #[test]
    fn dual_repairs_bound_tightening() {
        let a =
            DenseMatrix::from_rows(&[vec![6.0, 4.0, 1.0, 0.0], vec![1.0, 2.0, 0.0, 1.0]]).unwrap();
        let c = [5.0, 4.0, 0.0, 0.0];
        let b = [24.0, 6.0];
        let lb = [0.0; 4];
        let ub = [f64::INFINITY; 4];

        let mut engine = HostEngine::new(a.clone());
        let mut basis = Basis::with_basic_cols(vec![2, 3], 4);
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        // Optimum (3, 1.5). Tighten x0 ≤ 2 (a "branch down" on x0).
        let ub2 = [2.0, f64::INFINITY, f64::INFINITY, f64::INFINITY];
        let view2 = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub2,
            b: &b,
        };
        let (outcome, iters) =
            dual_solve(&mut engine, view2, &mut basis, &DualConfig::standard()).unwrap();
        assert_eq!(outcome, DualOutcome::PrimalFeasible);
        assert!(iters >= 1, "must have repaired at least one violation");
        let x = assemble_point(&mut engine, view2, &basis).unwrap();
        // New optimum: x0 = 2, then x1 = min((24-12)/4, (6-2)/2) = 2 → obj 18.
        assert!((x[0] - 2.0).abs() < 1e-9, "x = {x:?}");
        assert!((x[1] - 2.0).abs() < 1e-9);
        // Verify optimality by a primal pass: zero further iterations.
        let (o2, i2) = primal_solve(&mut engine, view2, &mut basis, &Default::default()).unwrap();
        assert_eq!(o2, PrimalOutcome::Optimal);
        assert_eq!(i2, 0);
    }

    /// Branching to an empty box: x0 ≥ 5 with 6x0 ≤ 24 → x0 ≤ 4 <
    /// 5 ⇒ infeasible, detected by dual unboundedness.
    #[test]
    fn dual_detects_infeasibility() {
        let a = DenseMatrix::from_rows(&[vec![6.0, 1.0]]).unwrap();
        let c = [5.0, 0.0];
        let b = [24.0];
        let lb = [0.0, 0.0];
        let ub = [f64::INFINITY, f64::INFINITY];
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![1], 2);
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        primal_solve(&mut engine, view, &mut basis, &Default::default()).unwrap();
        // Force x0 ∈ [5, 10]: impossible.
        let lb2 = [5.0, 0.0];
        let ub2 = [10.0, f64::INFINITY];
        let view2 = ProblemView {
            c: &c,
            lb: &lb2,
            ub: &ub2,
            b: &b,
        };
        let (outcome, _) =
            dual_solve(&mut engine, view2, &mut basis, &DualConfig::standard()).unwrap();
        assert!(matches!(outcome, DualOutcome::Infeasible { .. }));
    }

    /// A dual start that is already primal feasible terminates immediately.
    #[test]
    fn feasible_start_is_no_op() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let c = [1.0, 0.0];
        let b = [4.0];
        let lb = [0.0, 0.0];
        let ub = [f64::INFINITY, f64::INFINITY];
        let mut engine = HostEngine::new(a);
        let mut basis = Basis::with_basic_cols(vec![1], 2);
        let view = ProblemView {
            c: &c,
            lb: &lb,
            ub: &ub,
            b: &b,
        };
        let (outcome, iters) =
            dual_solve(&mut engine, view, &mut basis, &DualConfig::standard()).unwrap();
        assert_eq!(outcome, DualOutcome::PrimalFeasible);
        assert_eq!(iters, 0);
    }
}
