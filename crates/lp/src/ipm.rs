//! A primal-dual path-following interior-point method (IPM) for LP.
//!
//! The paper's related work (Section 2.3): "Linear programming solvers using
//! an interior point method is the preferred method for solving sparse
//! problems, which are prevalent in real-world scenarios. GPU based
//! implementations of interior point methods have been proposed in
//! [10, 17, 23]." This module provides that alternative algorithm next to
//! the simplex engines: each iteration forms the normal-equations matrix
//! `A D Aᵀ` and solves it with the Cholesky factorization of
//! [`gmip_linalg::cholesky`] — exactly the dense-factorization workload
//! Section 4.1 says GPUs are good at. When an accelerator is supplied, the
//! per-iteration kernels (scaling, the `A D Aᵀ` product, `potrf`, solves)
//! are charged to its cost ledger.
//!
//! Scope: solves bounded-feasible LPs in the [`StandardLp`] equality form
//! with finite lower bounds (all instances produced by `gmip-problems`
//! qualify). Unlike the simplex path it needs no basis and no phase 1 — an
//! interior point is synthesized directly — but it yields no warm-startable
//! basis, which is why branch and cut keeps simplex for node re-solves and
//! IPM serves as an alternative root solver.

use crate::problem::StandardLp;
use crate::{LpError, LpResult};
use gmip_gpu::{Accel, DEFAULT_STREAM};
use gmip_linalg::cholesky::CholeskyFactors;
use gmip_linalg::DenseMatrix;

/// IPM tuning parameters.
#[derive(Debug, Clone)]
pub struct IpmConfig {
    /// Convergence tolerance on (relative) primal/dual residuals and the
    /// complementarity measure µ.
    pub tol: f64,
    /// Centering parameter σ ∈ (0, 1).
    pub sigma: f64,
    /// Fraction-to-boundary step damping.
    pub step_frac: f64,
    /// Iteration cap.
    pub max_iters: usize,
}

impl Default for IpmConfig {
    fn default() -> Self {
        Self {
            tol: 1e-8,
            sigma: 0.1,
            step_frac: 0.9995,
            max_iters: 200,
        }
    }
}

/// Result of an IPM solve.
#[derive(Debug, Clone)]
pub struct IpmSolution {
    /// Objective in the source sense.
    pub objective: f64,
    /// Structural variable values.
    pub x: Vec<f64>,
    /// Interior-point iterations performed.
    pub iterations: usize,
    /// Final complementarity measure µ.
    pub mu: f64,
}

/// Solves the LP with a primal-dual path-following IPM. If `accel` is
/// given, per-iteration kernel costs are charged to it.
pub fn solve_ipm(lp: &StandardLp, cfg: &IpmConfig, accel: Option<&Accel>) -> LpResult<IpmSolution> {
    let m = lp.m();
    let n = lp.n();
    // Shift to x̃ = x − lb ∈ [0, ũ]; internal sense: minimize −c.
    for (j, &l) in lp.lb.iter().enumerate() {
        if !l.is_finite() {
            return Err(LpError::FreeVariable(j));
        }
    }
    let u_shift: Vec<f64> = lp
        .ub
        .iter()
        .zip(&lp.lb)
        .map(|(&u, &l)| if u.is_finite() { u - l } else { f64::INFINITY })
        .collect();
    for (j, &u) in u_shift.iter().enumerate() {
        if u < 1e-12 {
            return Err(LpError::Shape(format!(
                "IPM requires non-degenerate bounds; variable {j} is fixed"
            )));
        }
    }
    let c_min: Vec<f64> = lp.c.iter().map(|&c| -c).collect();
    let a_lb = lp.a.matvec(&lp.lb)?;
    let b_shift: Vec<f64> = lp.b.iter().zip(&a_lb).map(|(&b, &al)| b - al).collect();

    // Interior start.
    let mut x: Vec<f64> = u_shift
        .iter()
        .map(|&u| {
            if u.is_finite() {
                (u / 2.0).clamp(1e-3, 1.0)
            } else {
                1.0
            }
        })
        .collect();
    let mut y = vec![0.0; m];
    let mut z = vec![1.0; n];
    let mut w: Vec<f64> = u_shift
        .iter()
        .map(|&u| if u.is_finite() { 1.0 } else { 0.0 })
        .collect();
    let n_upper = u_shift.iter().filter(|u| u.is_finite()).count();

    let norm_b = 1.0 + b_shift.iter().fold(0.0f64, |a, &v| a.max(v.abs()));
    let norm_c = 1.0 + c_min.iter().fold(0.0f64, |a, &v| a.max(v.abs()));

    let charge = |fl: f64, bytes: f64| {
        if let Some(acc) = accel {
            acc.with(|d| d.charge_custom(fl, bytes, false, DEFAULT_STREAM));
        }
    };

    let mut mu;
    for iter in 0..cfg.max_iters {
        // Residuals.
        let ax = lp.a.matvec(&x)?;
        let rp: Vec<f64> = b_shift.iter().zip(&ax).map(|(&b, &v)| b - v).collect();
        let aty = lp.a.matvec_transposed(&y)?;
        let rd: Vec<f64> = (0..n).map(|j| c_min[j] - aty[j] - z[j] + w[j]).collect();
        // Complementarity.
        let mut comp = 0.0;
        for j in 0..n {
            comp += x[j] * z[j];
            if u_shift[j].is_finite() {
                comp += (u_shift[j] - x[j]) * w[j];
            }
        }
        mu = comp / (n + n_upper) as f64;
        let rp_norm = rp.iter().fold(0.0f64, |a, &v| a.max(v.abs())) / norm_b;
        let rd_norm = rd.iter().fold(0.0f64, |a, &v| a.max(v.abs())) / norm_c;
        if rp_norm < cfg.tol && rd_norm < cfg.tol && mu < cfg.tol {
            let x_orig: Vec<f64> = x.iter().zip(&lp.lb).map(|(&xt, &l)| xt + l).collect();
            let structural = x_orig[..lp.n_structural].to_vec();
            let objective = lp.source_objective(&structural);
            return Ok(IpmSolution {
                objective,
                x: structural,
                iterations: iter,
                mu,
            });
        }

        // Scaling D and the reduced dual residual r̂.
        let target = cfg.sigma * mu;
        let mut d = vec![0.0; n];
        let mut r_hat = vec![0.0; n];
        for j in 0..n {
            let mut dinv = z[j] / x[j];
            let mut rh = rd[j] - target / x[j] + z[j];
            if u_shift[j].is_finite() {
                let s = u_shift[j] - x[j];
                dinv += w[j] / s;
                rh += target / s - w[j];
            }
            d[j] = 1.0 / dinv;
            r_hat[j] = rh;
        }

        // Normal equations: (A D Aᵀ) Δy = rp + A D r̂.
        let mut adat = DenseMatrix::zeros(m, m);
        for i in 0..m {
            for k in i..m {
                let mut acc = 0.0;
                for j in 0..n {
                    acc += lp.a.get(i, j) * d[j] * lp.a.get(k, j);
                }
                adat.set(i, k, acc);
                adat.set(k, i, acc);
            }
        }
        // Primal regularization: A D Aᵀ is SPD in exact arithmetic, but as
        // iterates approach the boundary the scaling D spans many orders of
        // magnitude and a Cholesky pivot can go nonpositive in floating
        // point. A diagonal shift proportional to the largest diagonal
        // entry keeps the factorization alive without disturbing the
        // converged residuals (which are measured exactly above).
        let max_diag = (0..m).fold(0.0f64, |a, i| a.max(adat.get(i, i)));
        let delta = 1e-12 * (1.0 + max_diag);
        for i in 0..m {
            adat.set(i, i, adat.get(i, i) + delta);
        }
        let mut rhs = rp.clone();
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..n {
                acc += lp.a.get(i, j) * d[j] * r_hat[j];
            }
            rhs[i] += acc;
        }
        // Device charging: scaling + ADAᵀ assembly + Cholesky + 2 solves.
        charge(
            (m * m) as f64 * n as f64
                + (m * n) as f64 * 3.0
                + (m as f64).powi(3) / 3.0
                + 2.0 * (m * m) as f64,
            (m * n * 8) as f64,
        );
        let chol = CholeskyFactors::factorize(&adat).map_err(LpError::Numerics)?;
        let dy = chol.solve(&rhs).map_err(LpError::Numerics)?;

        // Recover Δx, Δz, Δw.
        let at_dy = lp.a.matvec_transposed(&dy)?;
        let mut dx = vec![0.0; n];
        let mut dz = vec![0.0; n];
        let mut dw = vec![0.0; n];
        for j in 0..n {
            dx[j] = d[j] * (at_dy[j] - r_hat[j]);
            dz[j] = (target - x[j] * z[j] - z[j] * dx[j]) / x[j];
            if u_shift[j].is_finite() {
                let s = u_shift[j] - x[j];
                dw[j] = (target - s * w[j] + w[j] * dx[j]) / s;
            }
        }

        // Fraction-to-boundary step lengths.
        let mut alpha_p = 1.0f64;
        let mut alpha_d = 1.0f64;
        for j in 0..n {
            if dx[j] < 0.0 {
                alpha_p = alpha_p.min(-x[j] / dx[j]);
            }
            if u_shift[j].is_finite() && dx[j] > 0.0 {
                alpha_p = alpha_p.min((u_shift[j] - x[j]) / dx[j]);
            }
            if dz[j] < 0.0 {
                alpha_d = alpha_d.min(-z[j] / dz[j]);
            }
            if u_shift[j].is_finite() && dw[j] < 0.0 {
                alpha_d = alpha_d.min(-w[j] / dw[j]);
            }
        }
        let alpha_p = (cfg.step_frac * alpha_p).min(1.0);
        let alpha_d = (cfg.step_frac * alpha_d).min(1.0);

        for j in 0..n {
            x[j] += alpha_p * dx[j];
            z[j] += alpha_d * dz[j];
            if u_shift[j].is_finite() {
                w[j] += alpha_d * dw[j];
            }
        }
        for i in 0..m {
            y[i] += alpha_d * dy[i];
        }
    }
    Err(LpError::IterationLimit {
        iterations: cfg.max_iters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::HostEngine;
    use crate::solver::{LpConfig, LpSolver, LpStatus};
    use gmip_problems::catalog::textbook_lp;
    use gmip_problems::generators::{random_mip, set_cover, RandomMipConfig};

    fn simplex_objective(inst: &gmip_problems::MipInstance) -> f64 {
        let std = StandardLp::from_instance(inst, &[]);
        let mut lp = LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()));
        let sol = lp.solve().expect("simplex");
        assert_eq!(sol.status, LpStatus::Optimal);
        sol.objective
    }

    #[test]
    fn ipm_matches_simplex_on_textbook_lp() {
        let inst = textbook_lp();
        let std = StandardLp::from_instance(&inst, &[]);
        let sol = solve_ipm(&std, &IpmConfig::default(), None).expect("ipm");
        assert!(
            (sol.objective - 21.0).abs() < 1e-5,
            "obj = {}",
            sol.objective
        );
        assert!((sol.x[0] - 3.0).abs() < 1e-4);
        assert!((sol.x[1] - 1.5).abs() < 1e-4);
        assert!(sol.mu < 1e-7);
    }

    #[test]
    fn ipm_matches_simplex_on_random_lps() {
        for seed in 0..5 {
            let inst = random_mip(&RandomMipConfig {
                rows: 6,
                cols: 12,
                density: 0.6,
                integral_fraction: 0.0,
                seed,
            });
            let expected = simplex_objective(&inst);
            let std = StandardLp::from_instance(&inst, &[]);
            let sol = solve_ipm(&std, &IpmConfig::default(), None).expect("ipm");
            assert!(
                (sol.objective - expected).abs() < 1e-4 * (1.0 + expected.abs()),
                "seed {seed}: ipm {} vs simplex {expected}",
                sol.objective
            );
        }
    }

    #[test]
    fn ipm_handles_minimize_and_sparse_rows() {
        let inst = set_cover(8, 8, 0.4, 2);
        let expected = simplex_objective(&inst);
        let std = StandardLp::from_instance(&inst, &[]);
        let sol = solve_ipm(&std, &IpmConfig::default(), None).expect("ipm");
        assert!(
            (sol.objective - expected).abs() < 1e-4 * (1.0 + expected.abs()),
            "ipm {} vs simplex {expected}",
            sol.objective
        );
    }

    #[test]
    fn ipm_charges_device_when_given() {
        let inst = textbook_lp();
        let std = StandardLp::from_instance(&inst, &[]);
        let accel = Accel::gpu(1);
        let sol = solve_ipm(&std, &IpmConfig::default(), Some(&accel)).expect("ipm");
        assert!((sol.objective - 21.0).abs() < 1e-5);
        let s = accel.stats();
        assert_eq!(s.kernel_launches as usize, sol.iterations);
        assert!(s.flops > 0.0);
    }

    #[test]
    fn fixed_variable_rejected() {
        let inst = textbook_lp();
        let mut std = StandardLp::from_instance(&inst, &[]);
        std.ub[0] = std.lb[0]; // degenerate
        assert!(solve_ipm(&std, &IpmConfig::default(), None).is_err());
    }
}
