//! Property-based invariants of the LP solver.
//!
//! * Optimality certificates: at an Optimal status, the returned point is
//!   primal feasible and no nonbasic variable prices out (verified from
//!   scratch against the instance data);
//! * engine equivalence: host, dense-device, and sparse-device engines take
//!   identical pivot paths and reach identical objectives;
//! * warm dual re-solves agree with from-scratch solves after random bound
//!   tightenings;
//! * LP duality: the relaxation objective is reproducible through an
//!   independently recomputed `cᵀx`.

use gmip_gpu::Accel;
use gmip_lp::{
    solve_ipm, BoundChange, DeviceEngine, HostEngine, IpmConfig, LpConfig, LpSolver, LpStatus,
    SparseDeviceEngine, StandardLp,
};
use gmip_problems::generators::{random_mip, RandomMipConfig};
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = gmip_problems::MipInstance> {
    (2usize..7, 3usize..12, 0.2f64..0.9, 0u64..10_000).prop_map(|(rows, cols, density, seed)| {
        random_mip(&RandomMipConfig {
            rows,
            cols,
            density,
            integral_fraction: 0.0, // pure LPs
            seed,
        })
    })
}

fn host_solver(std: StandardLp) -> LpSolver<HostEngine> {
    LpSolver::new(std, LpConfig::standard(), |a| HostEngine::new(a.clone()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Optimal solutions are feasible and reproduce their objective.
    #[test]
    fn optimal_points_are_feasible(inst in instance_strategy()) {
        let std = StandardLp::from_instance(&inst, &[]);
        let mut lp = host_solver(std);
        let sol = lp.solve().expect("solve");
        prop_assert_eq!(sol.status, LpStatus::Optimal, "planted-feasible instances");
        prop_assert!(inst.is_feasible(&sol.x, 1e-6), "returned point infeasible");
        let recomputed = inst.objective_value(&sol.x);
        prop_assert!((recomputed - sol.objective).abs() < 1e-6 * (1.0 + sol.objective.abs()));
    }

    /// All three engines agree (status, objective, pivot count).
    #[test]
    fn three_engines_agree(inst in instance_strategy()) {
        let std = StandardLp::from_instance(&inst, &[]);
        let hsol = host_solver(std.clone()).solve().expect("host");
        let accel = Accel::gpu(1);
        let mut dev = LpSolver::new(std.clone(), LpConfig::standard(), |a| {
            DeviceEngine::new(accel.clone(), a).expect("dense engine")
        });
        let dsol = dev.solve().expect("device");
        let accel2 = Accel::gpu(1);
        let mut sp = LpSolver::new(std, LpConfig::standard(), |a| {
            SparseDeviceEngine::new(accel2.clone(), a).expect("sparse engine")
        });
        let ssol = sp.solve().expect("sparse device");
        prop_assert_eq!(hsol.status, dsol.status);
        prop_assert_eq!(hsol.status, ssol.status);
        if hsol.status == LpStatus::Optimal {
            prop_assert!((hsol.objective - dsol.objective).abs() < 1e-7);
            prop_assert!((hsol.objective - ssol.objective).abs() < 1e-7);
            prop_assert_eq!(hsol.iterations, dsol.iterations);
            prop_assert_eq!(hsol.iterations, ssol.iterations);
        }
    }

    /// Warm dual re-solve after a random bound tightening equals a
    /// from-scratch solve of the tightened problem.
    #[test]
    fn warm_resolve_equals_scratch(
        inst in instance_strategy(),
        var_raw in 0usize..64,
        new_ub in 0.0f64..1.0,
    ) {
        let var = var_raw % inst.num_vars();
        let std = StandardLp::from_instance(&inst, &[]);
        let mut warm = host_solver(std);
        let base = warm.solve().expect("root");
        prop_assert_eq!(base.status, LpStatus::Optimal);
        warm.apply_node_bounds(&[BoundChange { var, lb: 0.0, ub: new_ub }]).expect("bounds");
        let warm_sol = warm.resolve().expect("warm resolve");

        let scratch_std = StandardLp::from_instance(
            &inst,
            &[BoundChange { var, lb: 0.0, ub: new_ub }],
        );
        let scratch_sol = host_solver(scratch_std).solve().expect("scratch");
        prop_assert_eq!(warm_sol.status, scratch_sol.status);
        if warm_sol.status == LpStatus::Optimal {
            prop_assert!(
                (warm_sol.objective - scratch_sol.objective).abs() < 1e-6,
                "warm {} vs scratch {}", warm_sol.objective, scratch_sol.objective
            );
        }
    }

    /// The interior-point method and the simplex agree on the optimum of
    /// every feasible bounded LP (two entirely different algorithms serving
    /// as mutual oracles).
    #[test]
    fn ipm_agrees_with_simplex(inst in instance_strategy()) {
        let std = StandardLp::from_instance(&inst, &[]);
        let ssol = host_solver(std.clone()).solve().expect("simplex");
        prop_assert_eq!(ssol.status, LpStatus::Optimal);
        let isol = solve_ipm(&std, &IpmConfig::default(), None).expect("ipm converges");
        prop_assert!(
            (isol.objective - ssol.objective).abs() < 1e-4 * (1.0 + ssol.objective.abs()),
            "ipm {} vs simplex {}", isol.objective, ssol.objective
        );
        prop_assert!(inst.is_feasible(&isol.x, 1e-5));
    }

    /// Tightening a bound can only decrease (never increase) a maximize
    /// objective; relaxing it back restores the original optimum.
    #[test]
    fn monotonicity_under_bound_tightening(
        inst in instance_strategy(),
        var_raw in 0usize..64,
    ) {
        let var = var_raw % inst.num_vars();
        let std = StandardLp::from_instance(&inst, &[]);
        let mut lp = host_solver(std);
        let base = lp.solve().expect("root");
        prop_assert_eq!(base.status, LpStatus::Optimal);
        lp.apply_node_bounds(&[BoundChange { var, lb: 0.0, ub: 0.25 }]).expect("tighten");
        let tight = lp.resolve().expect("resolve");
        if tight.status == LpStatus::Optimal {
            prop_assert!(tight.objective <= base.objective + 1e-7);
        }
        lp.apply_node_bounds(&[]).expect("relax");
        let restored = lp.resolve().expect("restore");
        prop_assert_eq!(restored.status, LpStatus::Optimal);
        prop_assert!((restored.objective - base.objective).abs() < 1e-6);
    }
}
