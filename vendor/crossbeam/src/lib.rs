//! Offline stand-in for `crossbeam`: the [`channel`] module over
//! `std::sync::mpsc`. The gmip threaded cluster only needs multi-producer
//! single-consumer semantics (many workers report to one supervisor; each
//! worker owns its private work queue), which mpsc provides directly.

#![warn(missing_docs)]

/// Multi-producer channels with the crossbeam API shape.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    pub type SendError<T> = mpsc::SendError<T>;
    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub type RecvError = mpsc::RecvError;
    /// Error returned by [`Receiver::try_recv`].
    pub type TryRecvError = mpsc::TryRecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub type RecvTimeoutError = mpsc::RecvTimeoutError;

    /// Sending half of an unbounded channel (clonable).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives, all senders are dropped, or the
        /// timeout elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator over incoming messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert!(rx.recv().is_err(), "recv fails after all senders drop");
        }
    }
}
