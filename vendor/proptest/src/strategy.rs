//! Strategies: value generators and their combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// draws one concrete value from the seeded [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.gen_range(0..self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn ranges_and_combinators_generate_in_bounds() {
        let mut rng = rng_for_case("strategy::tests", 0);
        for _ in 0..200 {
            let v = (1usize..5).generate(&mut rng);
            assert!((1..5).contains(&v));
            let (a, b) = (0u64..3, 0.0f64..1.0).generate(&mut rng);
            assert!(a < 3 && (0.0..1.0).contains(&b));
            let m = (0usize..4).prop_map(|x| x * 10).generate(&mut rng);
            assert!(m % 10 == 0 && m < 40);
            let fm = (1usize..4)
                .prop_flat_map(|n| (0usize..n,))
                .generate(&mut rng);
            assert!(fm.0 < 3);
        }
    }

    #[test]
    fn union_picks_every_arm() {
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut rng = rng_for_case("strategy::union", 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
