//! Test-runner configuration and the per-case RNG.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Upper bound on shrink iterations (accepted for API compatibility;
    /// this implementation does not shrink).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The generator handed to strategies: a seeded ChaCha8 stream.
pub type TestRng = ChaCha8Rng;

/// The error type a property body may return (`return Ok(())` early-exits
/// a case; `Err` fails it). Upstream carries reject/fail variants; the
/// stand-in only needs a printable message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl From<String> for TestCaseError {
    fn from(e: String) -> Self {
        TestCaseError(e)
    }
}

impl From<&str> for TestCaseError {
    fn from(e: &str) -> Self {
        TestCaseError(e.to_string())
    }
}

/// Builds the RNG for `(test identity, case index)` — used by the
/// `proptest!` expansion to derive a deterministic per-case seed.
pub fn rng_for_case(test_path: &str, case: u32) -> TestRng {
    // FNV-1a over the test path, mixed with the case index: stable
    // across runs and platforms, distinct across tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(h ^ (((case as u64) << 32) | case as u64))
}
