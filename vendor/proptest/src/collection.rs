//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Size bounds for generated collections (half-open).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn vec_respects_size_bounds() {
        let s = vec(0usize..10, 2..5);
        let mut rng = rng_for_case("collection::vec", 0);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = vec(0usize..10, 3usize);
        assert_eq!(fixed.generate(&mut rng).len(), 3);
    }
}
