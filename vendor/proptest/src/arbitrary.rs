//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::distributions::{Distribution, Standard};

/// Marker strategy for "any value of `T`".
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the canonical strategy for `T` (full-width integers, unit-range
/// floats, fair bools — whatever [`Standard`] samples).
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(std::marker::PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        Standard.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_case;

    #[test]
    fn any_bool_hits_both_values() {
        let s = any::<bool>();
        let mut rng = rng_for_case("arbitrary::bool", 0);
        let trues = (0..100).filter(|_| s.generate(&mut rng)).count();
        assert!(trues > 20 && trues < 80, "bool should be fair: {trues}/100");
    }
}
