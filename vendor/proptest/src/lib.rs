//! Offline stand-in for `proptest`: a randomized property-testing core with
//! the strategy/combinator/macro surface the gmip test suite uses.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs printed), and generation is **deterministically seeded**
//! per test case, so CI failures reproduce exactly.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `proptest::prelude` — the usual wildcard import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Namespace mirror (`prop::collection::vec` style paths).
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a property, reporting the failed expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks one of several strategies uniformly per generated value.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @config($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`] — one test fn per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config($config:expr)) => {};
    (@config($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut runner_rng = $crate::test_runner::rng_for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                // Each case body runs in a closure returning
                // `Result<(), TestCaseError>` (the upstream contract), so
                // `prop_assume!` and explicit `return Ok(())` both skip the
                // case; assertion macros panic with the case number.
                let run = |rng: &mut $crate::test_runner::TestRng|
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strategy, rng);)*
                    let _ = $body;
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run(&mut runner_rng) {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
}
