//! Offline stand-in for `parking_lot`: [`Mutex`] and [`RwLock`] with the
//! non-poisoning `lock()`/`read()`/`write()` API, implemented over
//! `std::sync`. A poisoned std lock (a panicked holder) is recovered by
//! taking the inner value — matching parking_lot's "no poisoning" contract.

#![warn(missing_docs)]

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// Guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// Guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock usable after a panicked holder");
    }
}
