//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no registry access, so the workspace vendors the
//! trait surface it actually uses: [`RngCore`], [`SeedableRng`], [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), and the [`distributions::Standard`]
//! distribution. Sampling is deterministic and platform-independent — every
//! value derives from `next_u64` with fixed integer arithmetic — which is
//! exactly the reproducibility contract the gmip experiments rely on.
//!
//! This is **not** a drop-in for the real crate's value streams: a given
//! seed produces a different (but equally deterministic) sequence.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

use distributions::{Distribution, SampleRange, Standard};

/// Core random-number-generator interface: raw integer output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction of an RNG from a byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The byte-seed type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through SplitMix64
    /// (the same seed always yields the same generator).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        sm.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: the seed-expansion generator (also usable directly).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a state word.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        // 53-bit uniform in [0,1) compared against p.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1..=5u64);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64::new(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SplitMix64::new(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
