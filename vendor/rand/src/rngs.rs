//! Named generators. `StdRng` aliases the SplitMix64 stream — deterministic
//! and seedable, which is all the workspace requires of it.

use crate::{RngCore, SeedableRng, SplitMix64};

/// The "standard" RNG: a deterministic SplitMix64 stream.
#[derive(Debug, Clone)]
pub struct StdRng(SplitMix64);

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut word = [0u8; 8];
        word.copy_from_slice(&seed[..8]);
        Self(SplitMix64::new(u64::from_le_bytes(word)))
    }
}
