//! Distributions: [`Standard`] sampling and uniform range sampling.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full-width integers, `[0,1)`
/// floats, fair bools.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A type that supports uniform sampling over a bounded range.
///
/// The single blanket [`SampleRange`] impl over `T: SampleUniform` (rather
/// than one impl per concrete range type) is what lets
/// `rng.gen_range(0.2..0.7)` infer `f64` through the float-literal
/// fallback, matching the real crate's inference behavior.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                // Work modulo 2^128 so signed bounds and full-width spans
                // are handled uniformly.
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(inclusive as u128);
                assert!(span != 0, "empty gen_range");
                (lo as u128).wrapping_add(rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(lo < hi, "empty gen_range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// A range that can be sampled uniformly (the `gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty gen_range");
        T::sample_range(lo, hi, true, rng)
    }
}
