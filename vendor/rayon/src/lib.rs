//! Offline stand-in for `rayon`: `par_iter`/`into_par_iter` return the
//! ordinary sequential iterators, so downstream combinator chains
//! (`map`, `zip`, `collect`) compile and run unchanged.
//!
//! Sequential execution keeps results bit-identical to the parallel
//! version for the pure functions gmip maps (LU factorizations, solves) —
//! rayon was a throughput optimization, never a semantic one.

#![warn(missing_docs)]

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    /// `.par_iter()` on a borrowed collection.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced (here: the sequential borrow iterator).
        type Iter: Iterator;
        /// Returns a "parallel" (sequential) iterator over references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on a borrowed collection.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Returns a "parallel" (sequential) iterator over mutable refs.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` on an owned collection.
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Consumes the collection into a "parallel" (sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Runs the two closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let zipped: Vec<i32> = v.par_iter().zip(v.par_iter()).map(|(a, b)| a + b).collect();
        assert_eq!(zipped, vec![2, 4, 6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }
}
