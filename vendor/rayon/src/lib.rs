//! Offline stand-in for `rayon`: `par_iter`/`into_par_iter` return the
//! ordinary sequential iterators, so downstream combinator chains
//! (`map`, `zip`, `collect`) compile and run unchanged.
//!
//! Sequential execution keeps results bit-identical to the parallel
//! version for the pure functions gmip maps (LU factorizations, solves) —
//! rayon was a throughput optimization, never a semantic one.

#![warn(missing_docs)]

/// The rayon prelude: parallel-iterator entry points.
pub mod prelude {
    /// `.par_iter()` on a borrowed collection.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced (here: the sequential borrow iterator).
        type Iter: Iterator;
        /// Returns a "parallel" (sequential) iterator over references.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `.par_iter_mut()` on a borrowed collection.
    pub trait IntoParallelRefMutIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Returns a "parallel" (sequential) iterator over mutable refs.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// `.into_par_iter()` on an owned collection.
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Consumes the collection into a "parallel" (sequential) iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Iter = std::ops::Range<usize>;
        fn into_par_iter(self) -> Self::Iter {
            self
        }
    }
}

/// Runs the two closures (sequentially here) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of threads a default-sized pool would use: `RAYON_NUM_THREADS`
/// if set to a positive integer, else the host's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

mod pool {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::JoinHandle;

    /// An index-fan-out job: workers call it with every index in
    /// `0..len` exactly once, partitioned by contiguous chunks.
    type Job = *const (dyn Fn(usize) + Sync);

    struct Shared {
        state: Mutex<State>,
        /// Workers wait here for a new epoch (or shutdown).
        work_cv: Condvar,
        /// The dispatching caller waits here for all chunks to finish.
        done_cv: Condvar,
        pending: AtomicUsize,
    }

    struct State {
        /// Incremented per dispatch; workers run one chunk per epoch.
        epoch: u64,
        job: Option<SendJob>,
        len: usize,
        shutdown: bool,
    }

    /// Raw pointer to the borrowed job closure. The dispatching thread
    /// blocks inside `dispatch` until every worker has finished its chunk,
    /// so the pointee outlives all uses; `Sync` on the pointee makes the
    /// shared calls sound.
    struct SendJob(Job);
    unsafe impl Send for SendJob {}

    /// A fixed-size pool of parked worker threads for fused lane
    /// dispatches. Unlike real rayon there is no work stealing: each
    /// dispatch splits `0..len` into one contiguous chunk per thread
    /// (the caller's thread runs chunk 0), which keeps the assignment
    /// deterministic.
    pub struct ThreadPool {
        shared: Arc<Shared>,
        workers: Vec<JoinHandle<()>>,
        threads: usize,
    }

    impl std::fmt::Debug for ThreadPool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ThreadPool")
                .field("threads", &self.threads)
                .finish()
        }
    }

    fn chunk_bounds(len: usize, threads: usize, slot: usize) -> (usize, usize) {
        let per = len.div_ceil(threads);
        let lo = (slot * per).min(len);
        let hi = ((slot + 1) * per).min(len);
        (lo, hi)
    }

    impl ThreadPool {
        /// Builds a pool that fans dispatches across `threads` threads
        /// (clamped to at least 1). `threads == 1` spawns no workers and
        /// runs dispatches inline on the caller.
        pub fn new(threads: usize) -> Self {
            let threads = threads.max(1);
            let shared = Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    len: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                pending: AtomicUsize::new(0),
            });
            let workers = (1..threads)
                .map(|slot| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("gmip-lane-{slot}"))
                        .spawn(move || worker_loop(&shared, slot, threads))
                        .expect("spawn lane worker")
                })
                .collect();
            Self {
                shared,
                workers,
                threads,
            }
        }

        /// The pool's thread count (including the dispatching caller).
        pub fn num_threads(&self) -> usize {
            self.threads
        }

        /// Calls `job(i)` for every `i in 0..len`, fanned across the pool.
        /// Blocks until all indices have been processed. Each index is
        /// visited by exactly one thread, so `job` may hand out disjoint
        /// `&mut` state per index.
        pub fn dispatch(&self, len: usize, job: &(dyn Fn(usize) + Sync)) {
            if len == 0 {
                return;
            }
            if self.threads == 1 {
                for i in 0..len {
                    job(i);
                }
                return;
            }
            let workers = self.workers.len();
            {
                let mut st = self.shared.state.lock().expect("pool lock");
                self.shared.pending.store(workers, Ordering::Release);
                // Erase the borrow lifetime: workers only touch the job
                // between this store and the pending==0 wait below, while
                // the reference is provably live.
                let erased: &'static (dyn Fn(usize) + Sync) =
                    unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };
                st.job = Some(SendJob(erased as Job));
                st.len = len;
                st.epoch += 1;
                self.shared.work_cv.notify_all();
            }
            // Chunk 0 runs on the caller while workers run the rest.
            let (lo, hi) = chunk_bounds(len, self.threads, 0);
            for i in lo..hi {
                job(i);
            }
            let mut st = self.shared.state.lock().expect("pool lock");
            while self.shared.pending.load(Ordering::Acquire) != 0 {
                st = self.shared.done_cv.wait(st).expect("pool wait");
            }
            st.job = None;
        }
    }

    impl Drop for ThreadPool {
        fn drop(&mut self) {
            {
                let mut st = self.shared.state.lock().expect("pool lock");
                st.shutdown = true;
                self.shared.work_cv.notify_all();
            }
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }

    fn worker_loop(shared: &Shared, slot: usize, threads: usize) {
        let mut seen = 0u64;
        loop {
            let (job, len, epoch) = {
                let mut st = shared.state.lock().expect("pool lock");
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.epoch > seen {
                        break;
                    }
                    st = shared.work_cv.wait(st).expect("pool wait");
                }
                let job = st.job.as_ref().expect("job set for epoch").0;
                (job, st.len, st.epoch)
            };
            seen = epoch;
            let (lo, hi) = chunk_bounds(len, threads, slot);
            for i in lo..hi {
                // Safety: the dispatcher keeps the pointee alive until
                // `pending` drains back to zero (below).
                unsafe { (*job)(i) };
            }
            if shared.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _st = shared.state.lock().expect("pool lock");
                shared.done_cv.notify_all();
            }
        }
    }
}

pub use pool::ThreadPool;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let zipped: Vec<i32> = v.par_iter().zip(v.par_iter()).map(|(a, b)| a + b).collect();
        assert_eq!(zipped, vec![2, 4, 6]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1, || "x");
        assert_eq!((a, b), (1, "x"));
    }

    #[test]
    fn pool_visits_every_index_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 2, 3, 8] {
            let pool = super::ThreadPool::new(threads);
            assert_eq!(pool.num_threads(), threads);
            for len in [0, 1, 5, 64, 1000] {
                let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
                pool.dispatch(len, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            }
        }
    }

    #[test]
    fn pool_reuses_workers_across_dispatches() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let pool = super::ThreadPool::new(4);
        let sum = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.dispatch(16, &|i| {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * (0..16).sum::<usize>());
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
