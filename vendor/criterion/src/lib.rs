//! Offline stand-in for `criterion`: the group/bench/iter API surface over
//! a simple wall-clock measurement loop. Each benchmark runs a short warmup
//! and a fixed number of timed samples, printing mean and min times —
//! adequate for the regression eyeballing gmip's benches are used for.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u32,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup (untimed).
        black_box(routine());
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u32).max(1);
        self
    }

    /// Sets the per-benchmark measurement budget (accepted for API
    /// compatibility; the stub's cost is governed by `sample_size`).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run(&mut self, label: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            // Keep the stub cheap: a handful of samples regardless of the
            // configured size (criterion's statistics don't exist here).
            iters: self.sample_size.min(10),
        };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let total: Duration = b.samples.iter().sum();
        let min = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {}/{label}: mean {:?} min {:?} ({} samples)",
            self.name,
            total / n,
            min,
            n
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run(&id.label, f);
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run(&id.label, |b| f(b, input));
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry object.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Applies command-line configuration (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        self.benchmark_group(name)
            .bench_function(BenchmarkId::from_parameter("default"), f);
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion;
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function(BenchmarkId::from_parameter("x"), |b| b.iter(|| runs += 1));
        // warmup + min(3,10) timed samples
        assert_eq!(runs, 4);
        g.finish();
    }
}
