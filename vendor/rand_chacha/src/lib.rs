//! Offline stand-in for `rand_chacha`: [`ChaCha8Rng`] over a real ChaCha
//! keystream (8 double-rounds), seeded through the vendored `rand` traits.
//!
//! The word stream differs from the upstream crate's (block layout and
//! seed expansion are this workspace's own), but it has the properties the
//! gmip experiments depend on: 256-bit seeding, platform-independent
//! integer arithmetic, and bit-identical streams for identical seeds.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Number of ChaCha double-rounds (ChaCha8 ⇒ 4 double-rounds × 2 = 8 rounds).
const DOUBLE_ROUNDS: usize = 4;

/// A ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter state fed to the block function.
    state: [u32; 16],
    /// Current 64-word output block.
    block: [u32; 16],
    /// Next unread word within `block` (16 ⇒ exhausted).
    cursor: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..DOUBLE_ROUNDS {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut word = [0u8; 4];
            word.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(word);
        }
        // Counter (12/13) and nonce (14/15) start at zero.
        let mut rng = Self {
            state,
            block: [0; 16],
            cursor: 16,
        };
        rng.refill();
        rng.cursor = 0;
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn blocks_advance() {
        // Crossing the 16-word block boundary must not repeat output.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let first: Vec<u32> = (0..48).map(|_| rng.next_u32()).collect();
        let mut seen = first.clone();
        seen.sort_unstable();
        seen.dedup();
        assert!(seen.len() > 40, "keystream words should be distinct");
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let v = rng.gen_range(0..10usize);
        assert!(v < 10);
        let f: f64 = rng.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&f));
    }
}
