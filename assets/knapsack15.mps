NAME          knapsack-n15-s1
OBJSENSE
    MAX
ROWS
 N  OBJ
 L  capacity
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    x0        OBJ       66
    x0        capacity  46
    x1        OBJ       105
    x1        capacity  99
    x2        OBJ       27
    x2        capacity  17
    x3        OBJ       39
    x3        capacity  29
    x4        OBJ       70
    x4        capacity  64
    x5        OBJ       60
    x5        capacity  45
    x6        OBJ       112
    x6        capacity  93
    x7        OBJ       80
    x7        capacity  74
    x8        OBJ       57
    x8        capacity  55
    x9        OBJ       79
    x9        capacity  74
    x10       OBJ       99
    x10       capacity  89
    x11       OBJ       78
    x11       capacity  74
    x12       OBJ       13
    x12       capacity  12
    x13       OBJ       101
    x13       capacity  95
    x14       OBJ       73
    x14       capacity  62
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       capacity  464
BOUNDS
 BV BND       x0
 BV BND       x1
 BV BND       x2
 BV BND       x3
 BV BND       x4
 BV BND       x5
 BV BND       x6
 BV BND       x7
 BV BND       x8
 BV BND       x9
 BV BND       x10
 BV BND       x11
 BV BND       x12
 BV BND       x13
 BV BND       x14
ENDATA
