NAME          knapsack-n15-s1
OBJSENSE
    MAX
ROWS
 N  OBJ
 L  capacity
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    x0        OBJ       88
    x0        capacity  69
    x1        OBJ       56
    x1        capacity  48
    x2        OBJ       96
    x2        capacity  88
    x3        OBJ       27
    x3        capacity  11
    x4        OBJ       112
    x4        capacity  98
    x5        OBJ       75
    x5        capacity  58
    x6        OBJ       98
    x6        capacity  95
    x7        OBJ       70
    x7        capacity  64
    x8        OBJ       50
    x8        capacity  36
    x9        OBJ       47
    x9        capacity  31
    x10       OBJ       103
    x10       capacity  90
    x11       OBJ       97
    x11       capacity  81
    x12       OBJ       70
    x12       capacity  65
    x13       OBJ       71
    x13       capacity  60
    x14       OBJ       64
    x14       capacity  58
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       capacity  476
BOUNDS
 BV BND       x0
 BV BND       x1
 BV BND       x2
 BV BND       x3
 BV BND       x4
 BV BND       x5
 BV BND       x6
 BV BND       x7
 BV BND       x8
 BV BND       x9
 BV BND       x10
 BV BND       x11
 BV BND       x12
 BV BND       x13
 BV BND       x14
ENDATA
