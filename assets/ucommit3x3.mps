NAME          ucommit-g3-t3-s3
OBJSENSE
    MIN
ROWS
 N  OBJ
 L  max_0_0
 L  min_0_0
 L  max_0_1
 L  min_0_1
 L  max_0_2
 L  min_0_2
 L  max_1_0
 L  min_1_0
 L  max_1_1
 L  min_1_1
 L  max_1_2
 L  min_1_2
 L  max_2_0
 L  min_2_0
 L  max_2_1
 L  min_2_1
 L  max_2_2
 L  min_2_2
 G  demand0
 G  demand1
 G  demand2
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    u_0_0     OBJ       132
    u_0_0     max_0_0   -66
    u_0_0     min_0_0   13
    u_0_1     OBJ       132
    u_0_1     max_0_1   -66
    u_0_1     min_0_1   13
    u_0_2     OBJ       132
    u_0_2     max_0_2   -66
    u_0_2     min_0_2   13
    u_1_0     OBJ       467
    u_1_0     max_1_0   -144
    u_1_0     min_1_0   29
    u_1_1     OBJ       467
    u_1_1     max_1_1   -144
    u_1_1     min_1_1   29
    u_1_2     OBJ       467
    u_1_2     max_1_2   -144
    u_1_2     min_1_2   29
    u_2_0     OBJ       229
    u_2_0     max_2_0   -146
    u_2_0     min_2_0   29
    u_2_1     OBJ       229
    u_2_1     max_2_1   -146
    u_2_1     min_2_1   29
    u_2_2     OBJ       229
    u_2_2     max_2_2   -146
    u_2_2     min_2_2   29
    MARKER                 'MARKER'                 'INTEND'
    p_0_0     OBJ       25
    p_0_0     max_0_0   1
    p_0_0     min_0_0   -1
    p_0_0     demand0   1
    p_0_1     OBJ       25
    p_0_1     max_0_1   1
    p_0_1     min_0_1   -1
    p_0_1     demand1   1
    p_0_2     OBJ       25
    p_0_2     max_0_2   1
    p_0_2     min_0_2   -1
    p_0_2     demand2   1
    p_1_0     OBJ       7
    p_1_0     max_1_0   1
    p_1_0     min_1_0   -1
    p_1_0     demand0   1
    p_1_1     OBJ       7
    p_1_1     max_1_1   1
    p_1_1     min_1_1   -1
    p_1_1     demand1   1
    p_1_2     OBJ       7
    p_1_2     max_1_2   1
    p_1_2     min_1_2   -1
    p_1_2     demand2   1
    p_2_0     OBJ       25
    p_2_0     max_2_0   1
    p_2_0     min_2_0   -1
    p_2_0     demand0   1
    p_2_1     OBJ       25
    p_2_1     max_2_1   1
    p_2_1     min_2_1   -1
    p_2_1     demand1   1
    p_2_2     OBJ       25
    p_2_2     max_2_2   1
    p_2_2     min_2_2   -1
    p_2_2     demand2   1
RHS
    RHS       demand0   160
    RHS       demand1   162
    RHS       demand2   229
BOUNDS
 BV BND       u_0_0
 BV BND       u_0_1
 BV BND       u_0_2
 BV BND       u_1_0
 BV BND       u_1_1
 BV BND       u_1_2
 BV BND       u_2_0
 BV BND       u_2_1
 BV BND       u_2_2
 UP BND       p_0_0     66
 UP BND       p_0_1     66
 UP BND       p_0_2     66
 UP BND       p_1_0     144
 UP BND       p_1_1     144
 UP BND       p_1_2     144
 UP BND       p_2_0     146
 UP BND       p_2_1     146
 UP BND       p_2_2     146
ENDATA
