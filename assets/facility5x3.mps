NAME          facility-5x3-s2
OBJSENSE
    MIN
ROWS
 N  OBJ
 E  serve0
 E  serve1
 E  serve2
 E  serve3
 E  serve4
 L  link_0_0
 L  link_0_1
 L  link_0_2
 L  link_1_0
 L  link_1_1
 L  link_1_2
 L  link_2_0
 L  link_2_1
 L  link_2_2
 L  link_3_0
 L  link_3_1
 L  link_3_2
 L  link_4_0
 L  link_4_1
 L  link_4_2
COLUMNS
    MARKER                 'MARKER'                 'INTORG'
    x_0_0     OBJ       56
    x_0_0     serve0    1
    x_0_0     link_0_0  1
    x_0_1     OBJ       83
    x_0_1     serve0    1
    x_0_1     link_0_1  1
    x_0_2     OBJ       132
    x_0_2     serve0    1
    x_0_2     link_0_2  1
    x_1_0     OBJ       16
    x_1_0     serve1    1
    x_1_0     link_1_0  1
    x_1_1     OBJ       53
    x_1_1     serve1    1
    x_1_1     link_1_1  1
    x_1_2     OBJ       154
    x_1_2     serve1    1
    x_1_2     link_1_2  1
    x_2_0     OBJ       83
    x_2_0     serve2    1
    x_2_0     link_2_0  1
    x_2_1     OBJ       22
    x_2_1     serve2    1
    x_2_1     link_2_1  1
    x_2_2     OBJ       79
    x_2_2     serve2    1
    x_2_2     link_2_2  1
    x_3_0     OBJ       114
    x_3_0     serve3    1
    x_3_0     link_3_0  1
    x_3_1     OBJ       141
    x_3_1     serve3    1
    x_3_1     link_3_1  1
    x_3_2     OBJ       101
    x_3_2     serve3    1
    x_3_2     link_3_2  1
    x_4_0     OBJ       132
    x_4_0     serve4    1
    x_4_0     link_4_0  1
    x_4_1     OBJ       71
    x_4_1     serve4    1
    x_4_1     link_4_1  1
    x_4_2     OBJ       29
    x_4_2     serve4    1
    x_4_2     link_4_2  1
    y_0       OBJ       35
    y_0       link_0_0  -1
    y_0       link_1_0  -1
    y_0       link_2_0  -1
    y_0       link_3_0  -1
    y_0       link_4_0  -1
    y_1       OBJ       35
    y_1       link_0_1  -1
    y_1       link_1_1  -1
    y_1       link_2_1  -1
    y_1       link_3_1  -1
    y_1       link_4_1  -1
    y_2       OBJ       35
    y_2       link_0_2  -1
    y_2       link_1_2  -1
    y_2       link_2_2  -1
    y_2       link_3_2  -1
    y_2       link_4_2  -1
    MARKER                 'MARKER'                 'INTEND'
RHS
    RHS       serve0    1
    RHS       serve1    1
    RHS       serve2    1
    RHS       serve3    1
    RHS       serve4    1
BOUNDS
 BV BND       x_0_0
 BV BND       x_0_1
 BV BND       x_0_2
 BV BND       x_1_0
 BV BND       x_1_1
 BV BND       x_1_2
 BV BND       x_2_0
 BV BND       x_2_1
 BV BND       x_2_2
 BV BND       x_3_0
 BV BND       x_3_1
 BV BND       x_3_2
 BV BND       x_4_0
 BV BND       x_4_1
 BV BND       x_4_2
 BV BND       y_0
 BV BND       y_1
 BV BND       y_2
ENDATA
