//! Supervisor–worker parallel branch and bound on the simulated cluster
//! (the UG pattern of the paper's Section 2.3): worker-count sweep with
//! deterministic simulated makespans, plus a checkpoint/restart
//! demonstration of the consistent-snapshot machinery (Section 2.1).
//!
//! Run with: `cargo run --release --example cluster_solve`

use gmip::core::MipStatus;
use gmip::parallel::{solve_parallel, ParallelConfig, Supervisor};
use gmip::problems::generators::knapsack;

fn main() {
    let instance = knapsack(28, 0.5, 7);
    println!(
        "instance: {} ({} binaries)\n",
        instance.name,
        instance.num_vars()
    );
    println!(
        "{:>8} {:>10} {:>8} {:>12} {:>10} {:>10}",
        "workers", "objective", "nodes", "makespan ms", "speedup", "idle %"
    );
    let mut t1 = None;
    for workers in [1usize, 2, 4, 8, 16] {
        let cfg = ParallelConfig {
            workers,
            gpu_mem: 1 << 26,
            ..Default::default()
        };
        let r = solve_parallel(&instance, cfg).expect("parallel solve");
        assert_eq!(r.status, MipStatus::Optimal);
        let ms = r.stats.makespan_ns / 1e6;
        let speedup = t1.get_or_insert(ms).max(1e-12) / ms.max(1e-12);
        println!(
            "{:>8} {:>10.1} {:>8} {:>12.3} {:>10.2} {:>10.1}",
            workers,
            r.objective,
            r.stats.nodes,
            ms,
            speedup,
            100.0 * r.stats.idle_fraction
        );
    }

    // Checkpoint/restart: stop after a handful of nodes, snapshot, resume.
    println!("\ncheckpoint/restart demonstration:");
    let cfg = ParallelConfig {
        workers: 4,
        gpu_mem: 1 << 26,
        node_limit: 10,
        checkpoint_every: Some(4),
        ..Default::default()
    };
    let partial = solve_parallel(&instance, cfg.clone()).expect("partial run");
    let snap = partial.snapshots.last().expect("snapshot taken").clone();
    println!(
        "  stopped at {} nodes; snapshot carries {} open subproblems ({} B)",
        partial.stats.nodes,
        snap.len(),
        snap.bytes()
    );
    let resumed = Supervisor::restore(
        instance.clone(),
        ParallelConfig {
            node_limit: 1_000_000,
            checkpoint_every: None,
            ..cfg
        },
        &snap,
    )
    .expect("restore")
    .run()
    .expect("resumed run");
    println!(
        "  resumed → {:?}, objective {}",
        resumed.status, resumed.objective
    );
    assert_eq!(resumed.status, MipStatus::Optimal);
}
