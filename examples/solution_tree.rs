//! Figure 1 reproduction: solve a small knapsack by branch and bound and
//! render the resulting solution tree with its feasible / infeasible /
//! pruned / branched tags, verifying the paper's completion invariant
//! ("no nodes remain tagged as active").
//!
//! Run with: `cargo run --release --example solution_tree`

use gmip::core::{MipConfig, MipSolver, PolicyKind};
use gmip::problems::catalog::figure1_knapsack;
use gmip::tree::{completion_invariant, render};

fn main() {
    let instance = figure1_knapsack();
    println!("instance: {}", instance.name);
    println!("maximize 10x0 + 6x1 + 4x2 + 3x3   s.t. 5x0 + 4x1 + 3x2 + 2x3 <= 9, x binary\n");

    // Depth-first with heuristics/cuts off grows a tree with all leaf kinds.
    let mut cfg = MipConfig::default();
    cfg.policy = PolicyKind::DepthFirst;
    cfg.cuts.enabled = false;
    cfg.heuristics.rounding = false;
    let mut solver = MipSolver::host_baseline(instance, cfg);
    let result = solver.solve().expect("solve");

    println!(
        "status: {:?}   optimum: {}",
        result.status, result.objective
    );
    println!("incumbent x = {:?}\n", result.x);
    println!("{}", render::render(&result.tree));
    println!("{}", render::LEGEND);
    println!("({})", render::state_summary(&result.tree));

    assert!(
        completion_invariant(&result.tree),
        "Figure 1 invariant: every node settled by completion"
    );
    assert!(result.tree.all_settled());
    println!("\ncompletion invariant holds: no active nodes remain");
}
