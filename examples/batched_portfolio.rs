//! Section 5.5 in action: many branch-and-cut node LPs solved concurrently
//! on one device, through the solver's real `batched:<lanes>` strategy.
//!
//! The same MIP is solved two ways on the simulated GPU:
//!
//! * **per-lane** ([`gmip::core::solve_concurrent`]): one engine and one
//!   private matrix copy per lane, one kernel launch per simplex operation
//!   per lane per pivot;
//! * **batched wave** ([`gmip::core::solve_batched_wave`]): one shared
//!   device-resident matrix for every lane and one *fused* batched launch
//!   per kernel class per lockstep superstep, with finished lanes retiring
//!   mid-flight and refilling from the best-bound frontier.
//!
//! Both reach the same optimum; the ledgers show the batching win ("dozens
//! of branch-and-cut nodes could be solved simultaneously"), and the wave
//! width is sized against device memory as the paper prescribes.
//!
//! Run with: `cargo run --release --example batched_portfolio`

use gmip::core::{
    solve_batched_wave, solve_concurrent, BatchedWaveConfig, ConcurrentConfig, MipStatus,
};
use gmip::gpu::Accel;
use gmip::problems::generators::knapsack;

fn main() {
    let instance = knapsack(18, 0.5, 11);
    println!(
        "portfolio of node LPs from: {} ({} vars, {} cons)\n",
        instance.name,
        instance.num_vars(),
        instance.num_cons()
    );

    let lanes = 8;

    // Per-lane evaluator: `lanes` engines, `lanes` matrix copies, a
    // device-wide synchronize joining every wave.
    let per_lane = solve_concurrent(
        &instance,
        &ConcurrentConfig {
            lanes,
            ..Default::default()
        },
        Accel::gpu(1),
    )
    .expect("per-lane solve");
    assert_eq!(per_lane.status, MipStatus::Optimal);

    // Batched wave: one shared matrix, fused launches, retire-and-refill.
    let batched = solve_batched_wave(
        &instance,
        &BatchedWaveConfig {
            lanes,
            ..Default::default()
        },
        Accel::gpu(1),
    )
    .expect("batched wave solve");
    assert_eq!(batched.status, MipStatus::Optimal);
    assert!(
        (batched.objective - per_lane.objective).abs() < 1e-6,
        "strategies must agree on the optimum"
    );
    println!("optimum (both strategies): {}\n", batched.objective);

    println!(
        "{:<14} {:>7} {:>10} {:>14} {:>12}",
        "mode", "nodes", "launches", "sim time (µs)", "peak mem (B)"
    );
    println!(
        "{:<14} {:>7} {:>10} {:>14.1} {:>12}",
        "per-lane",
        per_lane.nodes,
        per_lane.device.kernel_launches,
        per_lane.makespan_ns / 1e3,
        per_lane.peak_device_bytes
    );
    println!(
        "{:<14} {:>7} {:>10} {:>14.1} {:>12}",
        "batched wave",
        batched.nodes,
        batched.device.kernel_launches,
        batched.makespan_ns / 1e3,
        batched.peak_device_bytes
    );

    println!(
        "\nbatched wave: width {} (memory-sized), {} supersteps, \
         {} retires, {} refills",
        batched.width, batched.supersteps, batched.retires, batched.refills
    );
    println!(
        "speedup: {:.1}x in simulated time, {:.1}x fewer kernel launches \
         (one fused launch per kernel class per superstep)",
        per_lane.makespan_ns / batched.makespan_ns,
        per_lane.device.kernel_launches as f64 / batched.device.kernel_launches as f64
    );
    assert!(
        batched.device.kernel_launches < per_lane.device.kernel_launches,
        "fused launches must undercut per-lane launches"
    );
    assert!(
        batched.makespan_ns < per_lane.makespan_ns,
        "batching must win at this size"
    );
}
