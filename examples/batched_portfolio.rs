//! Section 5.5 in action: many small independent subproblems solved
//! concurrently on one device. A "portfolio" of small linear systems (the
//! size of branch-and-cut node LP bases) is solved two ways — one kernel
//! launch per system vs. a single batched launch — and the simulated times
//! show the batching win, sized against device memory as the paper
//! prescribes ("dozens of branch-and-cut nodes could be solved
//! simultaneously").
//!
//! Run with: `cargo run --release --example batched_portfolio`

use gmip::gpu::{Accel, DEFAULT_STREAM as S};
use gmip::linalg::DenseMatrix;
use rand::{Rng, SeedableRng};

fn make_system(n: usize, rng: &mut impl Rng) -> (DenseMatrix, Vec<f64>) {
    // Diagonally dominant → always solvable.
    let mut a = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let v = if i == j {
                n as f64 + rng.gen_range(1.0..4.0)
            } else {
                rng.gen_range(-1.0..1.0)
            };
            a.set(i, j, v);
        }
    }
    let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
    (a, b)
}

fn main() {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let n = 24; // small per-problem basis
    let batch = 64;
    let systems: Vec<(DenseMatrix, Vec<f64>)> =
        (0..batch).map(|_| make_system(n, &mut rng)).collect();
    let per_mat = systems[0].0.size_bytes();
    println!("portfolio: {batch} systems of {n}x{n} ({per_mat} B each)\n");

    // Serial: one launch per factor+solve.
    let serial = Accel::gpu(1);
    serial
        .with(|d| -> Result<(), gmip::gpu::GpuError> {
            for (a, b) in &systems {
                let ah = d.upload_matrix(a, S)?;
                let bh = d.upload_vector(b, S)?;
                let f = d.lu_factor(ah, S)?;
                let x = d.lu_solve(f, bh, S)?;
                d.download_vector(x, S)?;
            }
            Ok(())
        })
        .expect("serial path");
    let serial_ns = serial.elapsed_ns();
    let serial_launches = serial.stats().kernel_launches;

    // Batched: upload all, one batched factor+solve launch.
    let batched = Accel::gpu(1);
    let results = batched
        .with(|d| -> Result<Vec<Vec<f64>>, gmip::gpu::GpuError> {
            let mut handles = Vec::new();
            for (a, b) in &systems {
                let ah = d.upload_matrix(a, S)?;
                let bh = d.upload_vector(b, S)?;
                handles.push((ah, bh));
            }
            let xs = d.batched_lu_solve(&handles, S)?;
            xs.into_iter().map(|x| d.download_vector(x, S)).collect()
        })
        .expect("batched path");
    let batched_ns = batched.elapsed_ns();
    let batched_launches = batched.stats().kernel_launches;

    // Verify both paths solve correctly.
    for ((a, b), x) in systems.iter().zip(&results) {
        let ax = a.matvec(x).expect("dims");
        for (got, want) in ax.iter().zip(b) {
            assert!((got - want).abs() < 1e-8, "batched solve wrong");
        }
    }

    println!("{:<10} {:>10} {:>14}", "mode", "launches", "sim time (µs)");
    println!(
        "{:<10} {:>10} {:>14.1}",
        "serial",
        serial_launches,
        serial_ns / 1e3
    );
    println!(
        "{:<10} {:>10} {:>14.1}",
        "batched",
        batched_launches,
        batched_ns / 1e3
    );
    println!(
        "\nbatched speedup: {:.1}x (launch latency amortized over the batch)",
        serial_ns / batched_ns
    );
    // Paper's sizing rule: how many such problems fit in device memory.
    let capacity = batched.mem_capacity();
    println!(
        "device could hold ~{} such matrices at once ({} GiB / {} B)",
        capacity / per_mat,
        capacity >> 30,
        per_mat
    );
    assert!(batched_ns < serial_ns, "batching must win at this size");
}
