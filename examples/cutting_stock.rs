//! Column generation on the cutting-stock problem — the Section 3
//! host-side technique list ("probing, cut generation, column generation")
//! dogfooding the whole stack: the restricted master LP runs on the
//! crate's simplex (its dual prices drive pricing), and each pricing
//! subproblem is a bounded-knapsack IP solved by the crate's own
//! branch and cut.
//!
//! Run with: `cargo run --release --example cutting_stock`

use gmip::core::solve_cutting_stock;

fn main() {
    // Cut 100-unit rolls into ordered widths.
    let widths = [45u32, 36, 31, 14];
    let demands = [24u32, 31, 18, 25];
    let roll = 100u32;
    println!("roll width {roll}; orders:");
    for (w, d) in widths.iter().zip(&demands) {
        println!("   {d:>3} pieces of width {w}");
    }

    let r = solve_cutting_stock(&widths, &demands, roll).expect("column generation");
    println!(
        "\ncolumn generation: {} pricing rounds, {} patterns ({} singletons + {} generated)",
        r.iterations,
        r.patterns.len(),
        widths.len(),
        r.patterns.len() - widths.len()
    );
    println!("LP lower bound: {:.3} rolls", r.lp_bound);
    println!("integer plan:   {} rolls\n", r.rolls_used);
    println!("{:<20} {:>8}  waste", "pattern (counts)", "x rolls");
    for (a, &count) in r.patterns.iter().zip(&r.pattern_counts) {
        if count == 0 {
            continue;
        }
        let used: u32 = a.iter().zip(&widths).map(|(&ai, &wi)| ai * wi).sum();
        println!("{:<20} {:>8}  {:>5}", format!("{a:?}"), count, roll - used);
    }
    assert!(r.rolls_used >= r.lp_bound.ceil() - 1e-6);
    println!(
        "\nplan is within {:.2} rolls of the LP bound (integrality gap).",
        r.rolls_used - r.lp_bound
    );
}
