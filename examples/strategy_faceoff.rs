//! The four execution strategies of the paper's Section 3 head to head on
//! one instance: simulated time, transfer traffic, and (for Strategy 1) the
//! device-memory spills that set in when the tree outgrows GPU memory.
//!
//! Run with: `cargo run --release --example strategy_faceoff`

use gmip::core::{plan, MipConfig, MipSolver, Strategy};
use gmip::gpu::CostModel;
use gmip::problems::generators::knapsack;

fn main() {
    let instance = knapsack(26, 0.5, 42);
    println!(
        "instance: {} ({} vars, {} cons)\n",
        instance.name,
        instance.num_vars(),
        instance.num_cons()
    );
    println!(
        "{:<18} {:>10} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "strategy", "objective", "nodes", "kernels", "H2D bytes", "sim ms", "spills"
    );

    // A deliberately small device (256 KiB) so Strategy 1's on-device tree
    // hits the wall, per the paper's critique.
    let small_dev = 256 << 10;
    let big_dev = 1 << 30;

    let runs = [
        (Strategy::GpuOnly, small_dev),
        (Strategy::CpuOrchestrated, big_dev),
        (Strategy::Hybrid, big_dev),
        (Strategy::BigMip { devices: 4 }, big_dev),
    ];
    let mut objectives = Vec::new();
    for (strategy, mem) in runs {
        let p = plan(strategy, MipConfig::default(), CostModel::gpu_pcie(), mem);
        let mut solver = MipSolver::with_plan(instance.clone(), p);
        let r = solver.solve().expect("strategy solve");
        println!(
            "{:<18} {:>10.1} {:>8} {:>10} {:>12} {:>12.3} {:>8}",
            r.stats.strategy,
            r.objective,
            r.stats.nodes,
            r.stats.device.kernel_launches,
            r.stats.device.h2d_bytes,
            r.stats.sim_time_ns / 1e6,
            r.stats.gpu_spills
        );
        objectives.push(r.objective);
    }
    // All strategies must agree on the optimum.
    for w in objectives.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-6,
            "strategies disagree: {objectives:?}"
        );
    }
    println!("\nall strategies agree on the optimum: {}", objectives[0]);
}
