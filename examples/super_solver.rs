//! The Section 5.4 "super-MIP solver": presolve the input, inspect its
//! density at runtime, and dispatch to the dense-device, sparse-device, or
//! host code path.
//!
//! Run with: `cargo run --release --example super_solver`

use gmip::core::{choose_path, presolve, solve_with_dispatch, MipConfig};
use gmip::gpu::{Accel, CostModel};
use gmip::problems::generators::{knapsack, set_cover};

fn main() {
    let gpu_cost = CostModel::gpu_pcie();
    let cases = vec![
        ("dense knapsack (density 1.0)", knapsack(22, 0.5, 8)),
        (
            "large sparse cover (density ~0.03)",
            set_cover(400, 420, 0.03, 8),
        ),
        (
            "small sparse cover (density ~0.05)",
            set_cover(25, 30, 0.05, 8),
        ),
    ];

    for (label, instance) in cases {
        println!("== {label}: {} ==", instance.name);
        // 1. Presolve: shrink before anything ships to a device.
        let pre = presolve(&instance, 5);
        println!(
            "   presolve: {} vars fixed, {} rows dropped, {} bounds tightened",
            pre.vars_fixed(),
            pre.rows_dropped,
            pre.bounds_tightened
        );
        if pre.infeasible {
            println!("   presolve proved infeasibility\n");
            continue;
        }
        // 2. Runtime dispatch on the (reduced) input's characteristics.
        let path = choose_path(&pre.reduced, &gpu_cost);
        println!(
            "   density {:.3} → dispatch: {:?}",
            pre.reduced.density(),
            path
        );
        // 3. Solve through the chosen path.
        let mut cfg = MipConfig::default();
        cfg.node_limit = 2_000;
        let (taken, result) =
            solve_with_dispatch(pre.reduced.clone(), cfg, Accel::gpu(1)).expect("solve");
        assert_eq!(taken, path);
        if result.x.is_empty() {
            println!(
                "   {:?} after {} nodes (no incumbent yet; gap {:.2})",
                result.status, result.stats.nodes, result.stats.gap
            );
        } else {
            let x_full = pre.postsolve(&result.x);
            assert!(
                instance.is_integer_feasible(&x_full, 1e-5),
                "postsolved point must be feasible for the original instance"
            );
            println!(
                "   {:?}: objective {:.1} ({} nodes, {} LP iterations)",
                result.status,
                instance.objective_value(&x_full),
                result.stats.nodes,
                result.stats.lp_iterations
            );
        }
        println!();
    }
    println!("super-solver: one entry point, three code paths, chosen at runtime.");
}
