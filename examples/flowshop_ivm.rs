//! The related-work deep cut (paper Section 2.3): Gmys et al.'s
//! Integer-Vector-Matrix (IVM) tree encoding for GPU branch and bound.
//!
//! "The key principle of their approach is the use of an Integer Vector
//! Matrix (IVM) representation of the branch-and-bound problem tree rather
//! than the linked list used in previous implementations. The IVM
//! representation is well-suited for the GPU programming due to its memory
//! structure."
//!
//! This example solves permutation flow-shop instances exactly with an
//! IVM-driven depth-first branch and bound and contrasts the **constant**
//! IVM search-state footprint against what a pointer-based tree of the same
//! search would occupy — the property that lets the whole state live in GPU
//! memory (Strategy 1's missing piece for permutation problems).
//!
//! Run with: `cargo run --release --example flowshop_ivm`

use gmip::tree::{solve_flowshop_ivm, FlowShop};

fn main() {
    println!(
        "{:>6} {:>9} {:>10} {:>9} {:>12} {:>16} {:>9}",
        "jobs", "machines", "makespan", "nodes", "pruned", "pointer-tree B", "IVM B"
    );
    for jobs in [6usize, 7, 8, 9, 10] {
        let fs = FlowShop::random(jobs, 4, 42);
        let (best, seq, stats) = solve_flowshop_ivm(&fs);
        assert_eq!(fs.makespan(&seq), best, "sequence must reproduce makespan");
        // A pointer/arena tree stores every visited node (~48 B of id,
        // parent, depth, bound, child links each) — the paper's "linked
        // list" baseline. The IVM state is n² + n integers, full stop.
        let pointer_bytes = stats.nodes * 48;
        println!(
            "{:>6} {:>9} {:>10} {:>9} {:>12} {:>16} {:>9}",
            jobs,
            fs.machines(),
            best,
            stats.nodes,
            stats.pruned,
            pointer_bytes,
            stats.state_bytes
        );
    }
    println!(
        "\nthe IVM search state stays a few hundred bytes while the pointer tree grows \
         with every visited node — the memory structure that makes GPU-resident \
         branch and bound viable for permutation problems."
    );
}
