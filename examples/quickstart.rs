//! Quickstart: build a small MIP, solve it on the host baseline and on the
//! simulated GPU platform, and inspect the device cost ledger.
//!
//! Run with: `cargo run --release --example quickstart`

use gmip::core::{plan, MipConfig, MipSolver, Strategy};
use gmip::gpu::CostModel;
use gmip::problems::{Constraint, MipInstance, Objective, Sense, Variable};

fn main() {
    // A tiny facility-style MIP:
    //   maximize 8a + 11b + 6c + 4d
    //   s.t. 5a + 7b + 4c + 3d ≤ 14,  a..d binary.
    let mut m = MipInstance::new("quickstart", Objective::Maximize);
    m.add_var(Variable::binary("a", 8.0));
    m.add_var(Variable::binary("b", 11.0));
    m.add_var(Variable::binary("c", 6.0));
    m.add_var(Variable::binary("d", 4.0));
    m.add_con(Constraint::new(
        "budget",
        vec![(0, 5.0), (1, 7.0), (2, 4.0), (3, 3.0)],
        Sense::Le,
        14.0,
    ));

    // 1. Pure host baseline.
    let mut host = MipSolver::host_baseline(m.clone(), MipConfig::default());
    let hr = host.solve().expect("host solve");
    println!(
        "host    : {:?} objective={} x={:?}",
        hr.status, hr.objective, hr.x
    );
    println!(
        "          nodes={} lp_iters={} cuts={}",
        hr.stats.nodes, hr.stats.lp_iterations, hr.stats.cuts
    );

    // 2. The paper's recommended Strategy 2: CPU-orchestrated GPU execution.
    let p = plan(
        Strategy::CpuOrchestrated,
        MipConfig::default(),
        CostModel::gpu_pcie(),
        1 << 30, // 1 GiB device
    );
    let mut dev = MipSolver::with_plan(m, p);
    let dr = dev.solve().expect("device solve");
    println!(
        "device  : {:?} objective={} x={:?}",
        dr.status, dr.objective, dr.x
    );
    let s = &dr.stats.device;
    println!(
        "          kernels={} h2d={} ({} B) d2h={} ({} B) sim_time={:.1} µs",
        s.kernel_launches,
        s.h2d_transfers,
        s.h2d_bytes,
        s.d2h_transfers,
        s.d2h_bytes,
        dr.stats.sim_time_ns / 1e3
    );

    assert_eq!(hr.status, dr.status);
    assert!((hr.objective - dr.objective).abs() < 1e-6);
    println!("\nhost and device paths agree: objective {}", hr.objective);
}
