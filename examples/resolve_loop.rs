//! The rolling re-solve loop the serving tier exists for: a planner
//! re-submits the same packing model every period with slightly relaxed
//! capacities (new trucks, updated forecasts). The solution pool turns
//! that stream into exact cache hits (duplicates are answered without
//! touching the cluster) and warm starts (perturbed models ride the
//! pooled incumbent and root basis to a cheaper proof).
//!
//! Run with: `cargo run --release --example resolve_loop`

use gmip::parallel::{solve_parallel, ParallelConfig};
use gmip::problems::generators::bin_packing;
use gmip::serve::{Disposition, JobSpec, ServeConfig, Service, TenantSpec};
use gmip::trace::names;

fn main() {
    // Ten planning periods: period 0 solves cold, even periods re-submit
    // the previous model verbatim, odd periods relax every bin capacity
    // by 2% (coefficients are negative on the bin-open variables).
    let base = bin_packing(6, 10.0, 1);
    println!("instance: {} ({} vars)\n", base.name, base.num_vars());
    let mut model = base.clone();
    let mut jobs = Vec::new();
    for period in 0..10u64 {
        if period > 0 && period % 2 == 1 {
            for c in &mut model.cons {
                for (_, v) in &mut c.coeffs {
                    if *v < 0.0 {
                        *v *= 1.02;
                    }
                }
            }
        }
        jobs.push(JobSpec {
            id: period,
            tenant: 0,
            arrival_ns: period as f64 * 1.0e9,
            width: 2,
            instance: model.clone(),
        });
    }

    // What each odd period would cost without the pool.
    let cold_nodes: Vec<usize> = jobs
        .iter()
        .map(|j| {
            solve_parallel(
                &j.instance,
                ParallelConfig {
                    workers: 2,
                    ..Default::default()
                },
            )
            .expect("cold solve")
            .stats
            .nodes
        })
        .collect();

    let report = Service::new(
        ServeConfig {
            ranks: 2,
            ..ServeConfig::default()
        },
        vec![TenantSpec::new("planner", 1)],
    )
    .run(jobs);

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>12} {:>8}",
        "period", "disposition", "objective", "served nodes", "cold nodes", "saved"
    );
    for r in &report.records {
        let cold = cold_nodes[r.id as usize];
        let saved = if cold > 0 && r.nodes <= cold {
            format!("{:.0}%", 100.0 * (cold - r.nodes) as f64 / cold as f64)
        } else {
            "-".into()
        };
        println!(
            "{:>6} {:>12} {:>10.1} {:>12} {:>12} {:>8}",
            r.id,
            format!("{:?}", r.disposition),
            r.objective,
            r.nodes,
            cold,
            saved
        );
    }

    let exact = report.metrics.counter(names::SERVE_CACHE_EXACT_HITS);
    let warm = report.metrics.counter(names::SERVE_CACHE_WARM_HITS);
    println!("\nexact cache hits: {exact}  warm starts: {warm}");
    assert!(exact > 0.0, "duplicate periods should hit the exact cache");
    assert!(warm > 0.0, "relaxed periods should warm-start");
    assert!(
        report.records.iter().any(
            |r| r.disposition == Disposition::SolvedWarm && r.nodes < cold_nodes[r.id as usize]
        ),
        "at least one warm re-solve should beat its cold node count"
    );
}
